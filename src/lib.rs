//! # fcma — Full Correlation Matrix Analysis in Rust
//!
//! A from-scratch reproduction of *"Full correlation matrix analysis of
//! fMRI data on Intel® Xeon Phi™ coprocessors"* (SC '15): the three-stage
//! FCMA pipeline (correlation computation → within-subject normalization
//! → per-voxel SVM cross validation), both the paper's baseline and its
//! optimized implementation, and every substrate the evaluation needs —
//! dense tall-skinny linear algebra, a LibSVM replica and the PhiSVM
//! solver, a synthetic fMRI generator with planted ground truth, a Xeon
//! Phi machine/cache simulator, and a master–worker cluster framework.
//!
//! ## Quick start
//!
//! ```
//! use fcma::prelude::*;
//!
//! // Generate a small synthetic dataset with a planted informative
//! // network (stands in for the paper's human fMRI data).
//! let (dataset, truth) = fcma::fmri::presets::tiny().generate();
//!
//! // Run the optimized FCMA pipeline over every voxel.
//! let ctx = TaskContext::full(&dataset);
//! let exec = OptimizedExecutor::default();
//! let scores = score_all_voxels(&ctx, &exec, 32, None);
//!
//! // The top-ranked voxels recover the planted network.
//! let selected = select_top_k(&scores, truth.informative.len());
//! let recovered = recovery_rate(&selected, &truth.informative);
//! assert!(recovered > 0.5);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`fmri`] | datasets, epochs, synthetic generation, I/O |
//! | [`linalg`] | Mat, GEMM/SYRK kernels (reference, blocked, tall-skinny) |
//! | [`svm`] | LibSVM replica, PhiSVM, kernel precompute, LOSO CV |
//! | [`core`] | the three-stage pipeline, executors, analyses |
//! | [`cluster`] | threaded master–worker + discrete-event scaling model |
//! | [`sim`] | Phi/Xeon machine models, cache simulator, counter models |
//! | [`trace`] | runtime spans/counters/histograms + Chrome-trace export |

pub use fcma_cluster as cluster;
pub use fcma_core as core;
pub use fcma_fmri as fmri;
pub use fcma_linalg as linalg;
pub use fcma_sim as sim;
pub use fcma_svm as svm;
pub use fcma_trace as trace;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use fcma_cluster::{
        run_cluster, run_cluster_with, ChaosExecutor, Checkpoint, ClusterConfig, ClusterError,
        ClusterModel, ClusterRun, FaultKind, FaultPlan, FaultSpec, NodeFailure,
    };
    pub use fcma_core::{
        offline_analysis, online_voxel_selection, recovery_rate, score_all_voxels, select_top_k,
        AnalysisConfig, BaselineExecutor, OptimizedExecutor, TaskContext, TaskExecutor, VoxelScore,
        VoxelTask,
    };
    pub use fcma_fmri::{Condition, Dataset, EpochSpec, GroundTruth, SynthConfig};
    pub use fcma_linalg::Mat;
    pub use fcma_svm::{KernelMatrix, SmoParams, SolverKind, WssMode};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = SmoParams::default();
        let _ = AnalysisConfig::default();
        let _ = ClusterModel::default();
        let _ = Mat::zeros(1, 1);
    }
}
