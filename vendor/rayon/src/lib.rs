//! Offline stand-in for `rayon`, covering the workspace's usage: turning
//! a `Range<usize>` into a parallel iterator and running `for_each` /
//! `map().collect()` over it.
//!
//! Real threads are used (`std::thread::scope`), with one contiguous
//! chunk of the range per available core — appropriate for the
//! workspace's workloads, which are uniform-cost loops over voxel blocks
//! and SYRK panel groups. There is no work stealing; a task that takes
//! much longer than its peers will straggle, which the paper's own
//! static-chunking baseline also accepts.

use std::num::NonZeroUsize;
use std::ops::Range;

pub mod prelude {
    //! Single-import surface, mirroring `rayon::prelude`.
    pub use crate::IntoParallelIterator;
}

/// How many worker threads a parallel loop may use.
fn thread_budget() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Conversion into a parallel iterator (implemented for `Range<usize>`).
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item;
    /// The concrete parallel iterator.
    type Iter;

    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// A parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

/// Split `range` into at most `parts` non-empty contiguous chunks.
fn chunks_of(range: &Range<usize>, parts: usize) -> Vec<Range<usize>> {
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = range.start;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

impl ParRange {
    /// Run `f` on every index, distributed over the thread budget.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let chunks = chunks_of(&self.range, thread_budget());
        match chunks.len() {
            0 => {}
            1 => self.range.for_each(f),
            _ => std::thread::scope(|scope| {
                for chunk in chunks {
                    let f = &f;
                    scope.spawn(move || chunk.for_each(f));
                }
            }),
        }
    }

    /// Lazily map every index through `f`.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParMap { range: self.range, f }
    }

    /// Lazily map every index through `f`, handing each worker thread
    /// its own mutable state built by `init` — one `init` call per
    /// contiguous chunk, reused across that chunk's indices (mirrors
    /// `rayon`'s `map_init`, which the kernels use for per-thread
    /// scratch buffers).
    pub fn map_init<S, T, I, F>(self, init: I, f: F) -> ParMapInit<I, F>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        ParMapInit { range: self.range, init, f }
    }
}

/// A mapped parallel iterator; consume it with [`ParMap::collect`].
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Evaluate the map in parallel, preserving index order.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: From<Vec<T>>,
    {
        let chunks = chunks_of(&self.range, thread_budget());
        let items: Vec<T> = match chunks.len() {
            0 => Vec::new(),
            1 => self.range.map(self.f).collect(),
            _ => {
                let f = &self.f;
                let mut parts: Vec<Vec<T>> = Vec::new();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|chunk| scope.spawn(move || chunk.map(f).collect::<Vec<T>>()))
                        .collect();
                    parts = handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(v) => v,
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect();
                });
                let mut items = Vec::with_capacity(self.range.len());
                for part in parts {
                    items.extend(part);
                }
                items
            }
        };
        C::from(items)
    }
}

/// A mapped parallel iterator with per-thread state; consume it with
/// [`ParMapInit::collect`].
pub struct ParMapInit<I, F> {
    range: Range<usize>,
    init: I,
    f: F,
}

impl<I, F> ParMapInit<I, F> {
    /// Evaluate the map in parallel, preserving index order. Each worker
    /// chunk builds its state once and threads it through its indices.
    pub fn collect<S, T, C>(self) -> C
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
        C: From<Vec<T>>,
    {
        let chunks = chunks_of(&self.range, thread_budget());
        let items: Vec<T> = match chunks.len() {
            0 => Vec::new(),
            1 => {
                let mut state = (self.init)();
                self.range.map(|i| (self.f)(&mut state, i)).collect()
            }
            _ => {
                let init = &self.init;
                let f = &self.f;
                let mut parts: Vec<Vec<T>> = Vec::new();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|chunk| {
                            scope.spawn(move || {
                                let mut state = init();
                                chunk.map(|i| f(&mut state, i)).collect::<Vec<T>>()
                            })
                        })
                        .collect();
                    parts = handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(v) => v,
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect();
                });
                let mut items = Vec::with_capacity(self.range.len());
                for part in parts {
                    items.extend(part);
                }
                items
            }
        };
        C::from(items)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn for_each_visits_every_index_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        (0..1000).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..257).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..257).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_state_within_a_chunk() {
        // Each worker's counter state must persist across its own chunk;
        // values stay index-ordered regardless of the chunking.
        let v: Vec<(usize, usize)> = (0..64)
            .into_par_iter()
            .map_init(
                || 0usize,
                |calls, i| {
                    *calls += 1;
                    (i, *calls)
                },
            )
            .collect();
        assert_eq!(v.len(), 64);
        assert!(v.iter().enumerate().all(|(idx, &(i, _))| i == idx));
        // State threads through: within any chunk the call counter climbs
        // 1, 2, 3, ... so some index beyond the first must see calls > 1
        // whenever a chunk holds more than one index.
        let max_calls = v.iter().map(|&(_, c)| c).max().unwrap();
        assert!(max_calls >= 64 / super::thread_budget().max(1));
    }

    #[test]
    fn empty_range_is_fine() {
        let v: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        (3..3).into_par_iter().for_each(|_| panic!("must not run"));
    }
}
