//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] wrapping
//! the std primitives but exposing parking_lot's non-poisoning guard API
//! (`lock()` returns the guard directly). Poison errors are swallowed by
//! taking the inner value — matching parking_lot semantics, where a
//! panicking holder simply releases the lock.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Borrow the inner value without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
