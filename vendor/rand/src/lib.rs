//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the handful of `rand` APIs it actually uses:
//! [`RngCore`], [`SeedableRng`] (with `seed_from_u64`), the [`Rng`]
//! extension trait (`random`, `random_range`) and
//! [`seq::SliceRandom::shuffle`]. Distributions are uniform; there is no
//! claim of bit-compatibility with upstream `rand`, only determinism for
//! a fixed seed and adequate statistical quality (the workspace's own
//! tests assert the statistical properties they rely on).

use std::ops::Range;

/// Core random number generation: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for the generators used here).
    type Seed: AsMut<[u8]> + Default;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it with SplitMix64
    /// exactly as upstream `rand` does conceptually: a short seed is
    /// stretched over the full seed buffer so distinct `u64`s give
    /// uncorrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1), matching upstream precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges a generator can sample from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo reduction: negligible bias for the spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Extension methods for random value generation (the `rand::Rng` role).
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f32`/`f64` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A random boolean that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related randomization (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Extension methods on slices (the `rand::seq::SliceRandom` role).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 33) as u32
        }
    }

    #[test]
    fn random_f32_in_unit_interval() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let v: f32 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
