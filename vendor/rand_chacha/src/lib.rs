//! Offline stand-in for `rand_chacha`: a real ChaCha stream cipher core
//! (8/12/20-round variants) exposed as seedable generators.
//!
//! Unlike the rest of the vendored shims this is a faithful ChaCha
//! implementation — the workspace's synthetic-data generators depend on
//! its statistical quality, and its determinism-under-fixed-seed is what
//! the repo's reproducibility tests exercise. No bit-compatibility with
//! upstream `rand_chacha` streams is claimed.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even; writes 16 output words.
fn chacha_block(input: &[u32; 16], rounds: u32, out: &mut [u32; 16]) {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, (xi, si)) in out.iter_mut().zip(x.iter().zip(input.iter())) {
        *o = xi.wrapping_add(*si);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            /// Cipher input block: constants, 8 key words, counter, nonce.
            state: [u32; 16],
            /// Current keystream block.
            buffer: [u32; 16],
            /// Next unread word in `buffer`; 16 means exhausted.
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                chacha_block(&self.state, $rounds, &mut self.buffer);
                // 64-bit block counter in words 12..14.
                let (lo, carry) = self.state[12].overflowing_add(1);
                self.state[12] = lo;
                if carry {
                    self.state[13] = self.state[13].wrapping_add(1);
                }
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CHACHA_CONSTANTS);
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
                // Counter and nonce start at zero.
                $name { state, buffer: [0; 16], index: 16 }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let w = self.buffer[self.index];
                self.index += 1;
                w
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds: the fast statistical generator.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds: the conservative variant.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be uncorrelated, {same}/64 equal");
    }

    #[test]
    fn rfc7539_chacha20_block_core() {
        // RFC 7539 §2.3.2 test vector (key 00..1f, counter 1, nonce
        // 000000090000004a00000000), checked against the raw block
        // function with the reference input layout.
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, w) in input[4..12].iter_mut().enumerate() {
            let b = (i * 4) as u32;
            *w = u32::from_le_bytes([b as u8, b as u8 + 1, b as u8 + 2, b as u8 + 3]);
        }
        input[12] = 1;
        input[13] = 0x0900_0000;
        input[14] = 0x4a00_0000;
        input[15] = 0;
        let mut out = [0u32; 16];
        chacha_block(&input, 20, &mut out);
        assert_eq!(out[0], 0xe4e7_f110);
        assert_eq!(out[15], 0x4e3c_50a2);
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| f64::from(rng.random::<f32>())).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
