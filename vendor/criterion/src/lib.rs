//! Offline stand-in for `criterion`, keeping the workspace's benches
//! compiling and runnable with no external dependencies.
//!
//! Measurement model: per benchmark, a short calibration pass picks an
//! iteration count targeting ~20 ms per sample, then `sample_size`
//! samples are timed and the median per-iteration wall time is printed.
//! No outlier analysis, no plots, no saved baselines — run the real
//! criterion offline at your peril, or read `EXPERIMENTS.md` for the
//! methodology used in reported numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (the `criterion::Criterion` role).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        eprintln!("group {name}");
        BenchmarkGroup { criterion: self, name, sample_size }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_bench(&id.into(), self.sample_size, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.label), self.sample_size, f);
        self
    }

    /// Benchmark `f` with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.label), self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (a no-op here; criterion renders summaries).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", name.into()) }
    }

    /// An identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; `iter` times one measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrate then time one benchmark; print the median per-iteration time.
fn run_bench(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibration: grow the iteration count until one sample costs ~20 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    eprintln!("  {label}: median {} ({} iters x {} samples)", fmt_time(median), iters, sample_size);
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main()` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("k", 7).label, "k/7");
        assert_eq!(BenchmarkId::from_parameter(3).label, "3");
    }
}
