//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: an exact size or an
/// (inclusive-low, exclusive-high) range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

/// The result of [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo;
        let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::new(4);
        let exact = vec(0u8..10, 7);
        assert_eq!(exact.sample(&mut rng).len(), 7);
        let ranged = vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = ranged.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }
}
