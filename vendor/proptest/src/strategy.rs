//! Strategies: composable uniform samplers over input spaces.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type (the `proptest::Strategy` role).
///
/// Unlike upstream, a strategy here is just a sampler: there is no value
/// tree and no shrinking.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one arm.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.f64_unit() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.f64_unit() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A0)
    (A0, A1)
    (A0, A1, A2)
    (A0, A1, A2, A3)
    (A0, A1, A2, A3, A4)
    (A0, A1, A2, A3, A4, A5)
    (A0, A1, A2, A3, A4, A5, A6)
    (A0, A1, A2, A3, A4, A5, A6, A7)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9)
}

/// Whole-type uniform generation (the `any::<T>()` entry point).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, sign-balanced, moderate magnitude: the workspace uses
        // `any::<f32>()` for data values, never for NaN/Inf edge cases.
        (rng.f64_unit() as f32 - 0.5) * 2.0e3
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.f64_unit() - 0.5) * 2.0e3
    }
}

/// Strategy for an entire type: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { marker: PhantomData }
}

/// The result of [`any`].
pub struct Any<T> {
    marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::new(2);
        let s = (1usize..5, 0.0f32..1.0).prop_map(|(n, x)| n as f32 + x);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1.0..5.0).contains(&v));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::new(3);
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
