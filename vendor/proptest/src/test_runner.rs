//! The deterministic case runner behind the `proptest!` macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Configuration for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64: a small, fast, well-distributed generator. Each test case
/// gets an independent stream derived from the test name and case index,
/// so runs are reproducible without any persisted state.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `config.cases` deterministic cases of `case`. On panic, report the
/// case index and seed (there is no shrinking), then re-panic so the test
/// harness records the failure.
pub fn run(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut TestRng)) {
    let base = name_seed(name);
    for i in 0..config.cases {
        let seed = base ^ u64::from(i).wrapping_mul(0xA24B_AED4_963E_E407);
        let mut rng = TestRng::new(seed);
        let result = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest '{name}': case {i}/{} failed (rng seed {seed:#018x}); \
                 no shrinking in the vendored runner",
                config.cases
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn runner_runs_exact_case_count() {
        let mut count = 0;
        run("counter", &ProptestConfig::with_cases(13), |_| count += 1);
        assert_eq!(count, 13);
    }

    #[test]
    fn failures_propagate() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run("boom", &ProptestConfig::with_cases(3), |_| panic!("bad case"));
        }));
        assert!(r.is_err());
    }
}
