//! Offline stand-in for `proptest`, covering the API surface this
//! workspace uses: the [`proptest!`] macro, range/tuple/`Just`/mapped
//! strategies, [`collection::vec`], `any::<T>()`, `prop_oneof!`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic cases
//! (seeded from the test name, so failures reproduce run-to-run). There
//! is **no shrinking** — a failing case reports its case index and RNG
//! seed instead. That trades debuggability for zero dependencies; the
//! strategies themselves are uniform samplers.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(stringify!($name), &config, |__proptest_rng| {
                $(let $p = $crate::strategy::Strategy::sample(&($s), __proptest_rng);)+
                $body
            });
        }
    )*};
}

/// Assert a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert two values differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}
