//! Offline stand-in for `crossbeam-channel`, implemented over
//! `std::sync::mpsc`. Covers the master–worker driver's needs: unbounded
//! channels, cloneable senders, and blocking/timeout receives. The
//! receiver is additionally `Sync`-shareable via an internal mutex so
//! crossbeam's multi-consumer `recv` keeps working if callers adopt it.

use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// Create an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
}

/// The sending half of a channel.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Sender<T> {
    /// Send `value`, failing only if all receivers have been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value)
    }
}

/// The receiving half of a channel (cloneable; receivers compete).
#[derive(Debug)]
pub struct Receiver<T> {
    inner: Arc<Mutex<mpsc::Receiver<T>>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders are dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).recv()
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).try_recv()
    }

    /// Block until a message arrives, the deadline passes, or the channel
    /// disconnects.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).expect("open");
        tx.send(2).expect("open");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_fails_when_senders_dropped() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(10).expect("open"));
            s.spawn(move || tx2.send(20).expect("open"));
            let a = rx.recv().expect("first");
            let b = rx.recv().expect("second");
            assert_eq!(a + b, 30);
        });
    }
}
