//! Cluster execution and scaling (paper §3.1.1, §5.3).
//!
//! Part 1 runs the *real* threaded master–worker framework (the MPI
//! stand-in) and shows the dynamic load balancing at work.
//!
//! Part 2 feeds measured per-task times into the discrete-event scaling
//! model to project elapsed time and speedup out to the paper's 96
//! coprocessors (Fig. 8's experiment at laptop scale).
//!
//! ```sh
//! cargo run --release --example cluster_scaling
//! ```

use fcma::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut config = fcma::fmri::presets::tiny();
    config.n_voxels = 192;
    config.n_informative = 16;
    let (dataset, _) = config.generate();
    let ctx = TaskContext::full(&dataset);
    let task_size = 16;

    // ---- Part 1: real threaded master-worker run ----
    println!("== threaded master-worker framework ==");
    let exec: Arc<dyn TaskExecutor> = Arc::new(OptimizedExecutor::default());
    for workers in [1usize, 2, 4] {
        let t0 = Instant::now();
        let run = run_cluster(&ctx, Arc::clone(&exec), workers, task_size, None)
            .expect("healthy cluster run");
        println!(
            "{} workers: {:>8.2?}  tasks/worker {:?}",
            workers,
            t0.elapsed(),
            run.tasks_per_worker
        );
        assert_eq!(run.scores.len(), ctx.n_voxels());
    }

    // Same sweep under injected faults: two workers crash mid-task (the
    // second twice in a row) and the master requeues and re-dispatches
    // their work to the survivors.
    println!("\n== fault-injected run (chaos plan) ==");
    let plan = FaultPlan::none()
        .with_fault(0, 0, FaultKind::panic_now())
        .with_fault(64, 0, FaultKind::panic_now())
        .with_fault(64, 1, FaultKind::panic_now());
    let chaos: Arc<dyn TaskExecutor> =
        Arc::new(ChaosExecutor::new(Arc::new(OptimizedExecutor::default()), plan));
    let cfg = ClusterConfig { n_workers: 4, task_size, retry_budget: 4, ..Default::default() };
    let run = run_cluster_with(&ctx, chaos, &cfg).expect("chaos run recovers");
    println!(
        "4 workers under chaos: requeued {} task(s), lost {} worker(s), all {} voxels scored",
        run.requeued_tasks,
        run.failed_workers.len(),
        run.scores.len()
    );
    assert_eq!(run.scores.len(), ctx.n_voxels());

    // ---- Part 2: discrete-event projection to cluster scale ----
    println!("\n== discrete-event scaling model (Fig. 8 shape) ==");
    // Measure one task's wall time, then project it to the paper's
    // full-brain width (34,470 voxels): stage-1/3 work per task scales
    // linearly with the brain size.
    let t0 = Instant::now();
    let _ = exec.process(&ctx, VoxelTask { start: 0, count: task_size });
    let full_brain = 34_470.0;
    let scale = full_brain / dataset.n_voxels() as f64;
    let task_secs = t0.elapsed().as_secs_f64() * scale;
    // Full-brain partition at the paper's 240-voxel tasks, 18 folds of
    // the offline analysis, like the face-scene run.
    let n_tasks = (full_brain / 240.0).ceil() as usize;
    let tasks: Vec<f64> = vec![task_secs; n_tasks * 18];
    let data_bytes = full_brain * dataset.n_timepoints() as f64 * 4.0;
    let model = ClusterModel { data_bytes, ..Default::default() };
    println!("projected full-brain task time: {:.2}s x {} tasks x 18 folds", task_secs, n_tasks);

    println!("nodes  elapsed(s)  speedup  efficiency");
    let t1 = model.simulate(&tasks, 1);
    for nodes in [1usize, 8, 16, 32, 64, 96] {
        let t = model.simulate(&tasks, nodes);
        let speedup = t1 / t;
        println!(
            "{:>5}  {:>10.2}  {:>7.1}  {:>9.0}%",
            nodes,
            t,
            speedup,
            speedup / nodes as f64 * 100.0
        );
    }
    println!("\nNear-linear speedup with efficiency tapering at high node counts,");
    println!("matching the shape of the paper's Fig. 8.");
}
