//! Emulated closed-loop real-time fMRI session (paper §5.2.2, Fig. 1).
//!
//! Phase 1 — *online voxel selection*: one subject is scanned; FCMA
//! selects the voxels whose whole-brain correlation patterns discriminate
//! the two conditions (k-fold CV over the session's epochs, no nested
//! CV).
//!
//! Phase 2 — *neurofeedback*: a classifier trained on the selected
//! voxels' correlation patterns scores each subsequent epoch as it
//! "arrives", emulating the feedback signal sent back to the subject.
//!
//! ```sh
//! cargo run --release --example realtime_feedback
//! ```

use fcma::core::stage2::corr_normalized_merged;
use fcma::linalg::tall_skinny::TallSkinnyOpts;
use fcma::prelude::*;
use fcma::svm::{train_phisvm, PlattScaling};

fn main() {
    // One subject, 24 epochs: the first 16 train the online classifier,
    // the last 8 emulate the live feedback phase.
    let mut config = fcma::fmri::presets::tiny();
    config.n_subjects = 1;
    config.epochs_per_subject = 24;
    config.n_voxels = 128;
    config.n_informative = 16;
    config.coupling = 1.8;
    let (dataset, truth) = config.generate();
    println!(
        "Session: {} voxels, {} epochs of {} time points",
        dataset.n_voxels(),
        dataset.n_epochs(),
        config.epoch_len
    );

    // ---- Phase 1: online voxel selection on the training epochs ----
    let train_epochs: Vec<usize> = (0..16).collect();
    let train_ctx = TaskContext::subset(&dataset, &train_epochs);
    let exec = OptimizedExecutor::default();
    let cfg = AnalysisConfig { task_size: 64, top_k: 16 };
    let groups = fcma::core::analysis::stratified_folds(&train_ctx.y, 4);
    let t0 = std::time::Instant::now();
    let scores = score_all_voxels(&train_ctx, &exec, cfg.task_size, Some(&groups));
    let selected = select_top_k(&scores, cfg.top_k);
    println!(
        "Selected {} voxels in {:.2?} ({}/{} planted)",
        selected.len(),
        t0.elapsed(),
        selected.iter().filter(|v| truth.informative.contains(v)).count(),
        truth.informative.len()
    );

    // ---- Phase 2: train the feedback classifier, stream the rest ----
    // Samples: each epoch's correlation patterns of the selected voxels
    // against the whole brain, computed with the merged pipeline.
    let full_ctx = TaskContext::full(&dataset);
    let m = full_ctx.n_epochs();
    let n = full_ctx.n_voxels();
    let mut samples = Mat::zeros(m, selected.len() * n);
    for (si, &v) in selected.iter().enumerate() {
        let corr = corr_normalized_merged(
            &full_ctx,
            VoxelTask { start: v, count: 1 },
            TallSkinnyOpts::default(),
        );
        for e in 0..m {
            samples.row_mut(e)[si * n..(si + 1) * n].copy_from_slice(corr.row(0, e));
        }
    }
    let kernel = KernelMatrix::precompute(&samples);
    let train_idx: Vec<usize> = (0..16).collect();
    let train_y: Vec<f32> = train_idx.iter().map(|&e| full_ctx.y[e]).collect();
    let model = train_phisvm(&kernel, &train_idx, &train_y, &SmoParams::default());
    println!(
        "Feedback classifier: {} support vectors, {} SMO iterations\n",
        model.n_support(),
        model.iterations
    );

    // Calibrate a graded feedback signal: neurofeedback shows the subject
    // P(condition A), not a binary label (Platt scaling on the training
    // decisions).
    let train_decisions: Vec<f64> =
        train_idx.iter().map(|&e| model.decision(&kernel, e) as f64).collect();
    let platt = PlattScaling::fit(&train_decisions, &train_y);

    // Stream the held-out epochs as if they were arriving live.
    println!("epoch  condition  decision  P(A)   feedback");
    let mut correct = 0;
    for e in 16..m {
        let d = model.decision(&kernel, e);
        let p_a = platt.probability(d as f64);
        let predicted = if d >= 0.0 { "A" } else { "B" };
        let actual = if full_ctx.y[e] > 0.0 { "A" } else { "B" };
        if predicted == actual {
            correct += 1;
        }
        println!(
            "{:>5}  {:>9}  {:>8.3}  {:>5.2}  predict {} {}",
            e,
            actual,
            d,
            p_a,
            predicted,
            if predicted == actual { "✓" } else { "✗" }
        );
    }
    let acc = correct as f64 / (m - 16) as f64;
    println!("\nOnline feedback accuracy: {:.0}%", acc * 100.0);
    assert!(acc > 0.5, "feedback classifier at or below chance");
    println!("OK");
}
