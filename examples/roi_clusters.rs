//! From voxel scores to regions of interest (paper §3.1.2: "the brain
//! regions constituted by top voxels are identified as ROIs").
//!
//! Generates a dataset whose informative network is two spatially compact
//! blobs, runs FCMA, selects top voxels, extracts 6-connected clusters,
//! and checks the recovered regions against the planted ones — then runs
//! a permutation test on the best cluster's peak voxel.
//!
//! ```sh
//! cargo run --release --example roi_clusters
//! ```

use fcma::core::stage2::corr_normalized_merged;
use fcma::core::{benjamini_hochberg, voxel_permutation_test};
use fcma::fmri::geometry::{extract_clusters, Grid3};
use fcma::fmri::Placement;
use fcma::prelude::*;
use fcma::svm::SolverKind;

fn main() {
    // 512 voxels = an 8x8x8 grid; the informative network is two compact
    // spherical blobs on opposite sides of the volume.
    let mut config = fcma::fmri::presets::tiny();
    config.n_voxels = 512;
    config.n_informative = 24;
    config.coupling = 1.8;
    config.placement = Placement::SphericalBlobs;
    let (dataset, truth) = config.generate();
    let grid = Grid3::cube_for(dataset.n_voxels());
    println!(
        "Dataset: {} voxels on a {}x{}x{} grid; planted network: two {}-voxel blobs",
        dataset.n_voxels(),
        grid.nx,
        grid.ny,
        grid.nz,
        truth.informative.len() / 2
    );

    // Score all voxels and select the top set.
    let ctx = TaskContext::full(&dataset);
    let exec = OptimizedExecutor::default();
    let scores = score_all_voxels(&ctx, &exec, 64, None);
    let selected = select_top_k(&scores, truth.informative.len());

    // Extract spatial clusters from the selection.
    let clusters = extract_clusters(&grid, &selected);
    println!("\ncluster  size  centroid        planted-members");
    for (i, c) in clusters.iter().enumerate() {
        let (x, y, z) = c.centroid(&grid);
        let planted = c.voxels.iter().filter(|v| truth.informative.contains(v)).count();
        println!(
            "{:>7}  {:>4}  ({:>4.1},{:>4.1},{:>4.1})  {:>3}/{}",
            i,
            c.len(),
            x,
            y,
            z,
            planted,
            c.len()
        );
    }
    let big: Vec<_> = clusters.iter().filter(|c| c.len() >= 3).collect();
    println!("\n{} clusters of size >= 3 (the planted network forms 2 blobs)", big.len());

    // Permutation-test the peak voxel of the largest cluster.
    let peak = clusters[0]
        .voxels
        .iter()
        .copied()
        .max_by(|&a, &b| scores[a].accuracy.partial_cmp(&scores[b].accuracy).unwrap())
        .unwrap();
    let corr =
        corr_normalized_merged(&ctx, VoxelTask { start: peak, count: 1 }, Default::default());
    let (acc, p) = voxel_permutation_test(
        &corr,
        0,
        &ctx.y,
        &ctx.subjects,
        &SolverKind::PhiSvm(SmoParams::default()),
        99,
        7,
    );
    println!("\npeak voxel {peak}: CV accuracy {acc:.3}, permutation p = {p:.3} (99 perms)");

    // FDR across the whole selection (cheap demonstration on the top set).
    let ps: Vec<f64> = selected
        .iter()
        .map(|&v| {
            // Approximate p from the accuracy rank against all voxels — a
            // fast screen; the permutation test above is the exact version.
            let better = scores.iter().filter(|s| s.accuracy >= scores[v].accuracy).count();
            better as f64 / scores.len() as f64
        })
        .collect();
    let surviving = benjamini_hochberg(&ps, 0.05);
    println!(
        "{} of {} selected voxels survive rank-based FDR at q=0.05",
        surviving.len(),
        selected.len()
    );
    assert!(p <= 0.05, "peak voxel should be significant");
    println!("OK");
}
