//! Quickstart: generate a synthetic fMRI dataset, run the optimized FCMA
//! pipeline, and check that the planted informative network is recovered.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fcma::prelude::*;

fn main() {
    // A small dataset: 96 voxels, 4 subjects, 8 epochs each, with a
    // 12-voxel network whose correlations flip with the task condition.
    let config = fcma::fmri::presets::tiny();
    println!(
        "Generating synthetic dataset: {} voxels, {} subjects, {} epochs of {} time points",
        config.n_voxels,
        config.n_subjects,
        config.n_epochs(),
        config.epoch_len
    );
    let (dataset, truth) = config.generate();

    // The task context holds the per-epoch-normalized data (paper Eq. 2)
    // shared by all workers.
    let ctx = TaskContext::full(&dataset);

    // Run the paper's optimized pipeline (merged stage 1+2, panel SYRK,
    // PhiSVM) over every voxel, 32 voxels per task.
    let exec = OptimizedExecutor::default();
    let t0 = std::time::Instant::now();
    let scores = score_all_voxels(&ctx, &exec, 32, None);
    println!(
        "Scored {} voxels in {:.2?} (leave-one-subject-out SVM accuracy per voxel)",
        scores.len(),
        t0.elapsed()
    );

    // Rank and select.
    let selected = select_top_k(&scores, truth.informative.len());
    let recovered = recovery_rate(&selected, &truth.informative);
    println!("\nTop {} voxels by classification accuracy:", selected.len());
    for &v in &selected {
        let s = &scores[v];
        let marker = if truth.informative.contains(&v) { "  <- planted" } else { "" };
        println!("  voxel {:3}  accuracy {:.3}{}", s.voxel, s.accuracy, marker);
    }
    println!("\nRecovered {:.0}% of the planted informative network.", recovered * 100.0);
    assert!(recovered > 0.5, "FCMA failed to recover the planted network");
    println!("OK");
}
