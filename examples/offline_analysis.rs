//! Offline analysis: nested leave-one-subject-out cross validation on a
//! scaled-down *face-scene*-shaped dataset (paper §5.2.1).
//!
//! For every outer fold, voxels are selected on the training subjects,
//! a final classifier is trained on the selected voxels' correlation
//! patterns, and its accuracy on the held-out subject verifies the
//! selection. Voxels selected across a majority of folds form the
//! reliable ROI.
//!
//! ```sh
//! cargo run --release --example offline_analysis
//! ```

use fcma::prelude::*;

fn main() {
    // face-scene epoch structure (18 subjects x 12 epochs of 12 tp) at a
    // laptop-sized voxel count. Fewer subjects keep the demo brisk.
    let mut config = fcma::fmri::presets::face_scene_scaled(256);
    config.n_subjects = 6;
    config.coupling = 1.5;
    println!(
        "Dataset: {} voxels, {} subjects, {} epochs (face-scene shape, scaled)",
        config.n_voxels,
        config.n_subjects,
        config.n_epochs()
    );
    let (dataset, truth) = config.generate();

    let exec = OptimizedExecutor::default();
    let cfg = AnalysisConfig { task_size: 64, top_k: truth.informative.len() };

    let t0 = std::time::Instant::now();
    let result = offline_analysis(&dataset, &exec, &cfg);
    println!("Nested LOSO over {} folds finished in {:.2?}\n", result.folds.len(), t0.elapsed());

    println!("fold  held-out  test-accuracy  planted-in-selection");
    for f in &result.folds {
        let hits = f.selected.iter().filter(|v| truth.informative.contains(v)).count();
        println!(
            "{:>4}  {:>8}  {:>13.3}  {:>3}/{}",
            f.held_out,
            f.held_out,
            f.test_accuracy,
            hits,
            f.selected.len()
        );
    }
    println!("\nMean held-out accuracy: {:.3}", result.mean_test_accuracy);

    let recovered = recovery_rate(&result.stable, &truth.informative);
    println!(
        "Stable ROI: {} voxels; {:.0}% of the planted network recovered",
        result.stable.len(),
        recovered * 100.0
    );
    assert!(result.mean_test_accuracy > 0.6, "held-out accuracy at chance");
    println!("OK");
}
