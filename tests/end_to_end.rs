//! Cross-crate integration tests: the full FCMA pipeline from synthetic
//! data generation through voxel selection, exercising both executors and
//! the cluster driver.

use fcma::prelude::*;
use std::sync::Arc;

fn planted(coupling: f32, n_voxels: usize) -> (Dataset, GroundTruth) {
    let mut cfg = fcma::fmri::presets::tiny();
    cfg.n_voxels = n_voxels;
    cfg.n_informative = (n_voxels / 8).max(4) & !1;
    cfg.coupling = coupling;
    cfg.generate()
}

#[test]
fn optimized_pipeline_recovers_planted_network() {
    let (dataset, truth) = planted(1.8, 96);
    let ctx = TaskContext::full(&dataset);
    let scores = score_all_voxels(&ctx, &OptimizedExecutor::default(), 32, None);
    let selected = select_top_k(&scores, truth.informative.len());
    let rec = recovery_rate(&selected, &truth.informative);
    assert!(rec >= 0.75, "optimized pipeline recovered only {rec:.2}");
}

#[test]
fn baseline_pipeline_recovers_planted_network() {
    let (dataset, truth) = planted(1.8, 64);
    let ctx = TaskContext::full(&dataset);
    let scores = score_all_voxels(&ctx, &BaselineExecutor::default(), 32, None);
    let selected = select_top_k(&scores, truth.informative.len());
    let rec = recovery_rate(&selected, &truth.informative);
    assert!(rec >= 0.75, "baseline pipeline recovered only {rec:.2}");
}

#[test]
fn baseline_and_optimized_rank_voxels_consistently() {
    let (dataset, _) = planted(1.5, 64);
    let ctx = TaskContext::full(&dataset);
    let base = score_all_voxels(&ctx, &BaselineExecutor::default(), 16, None);
    let opt = score_all_voxels(&ctx, &OptimizedExecutor::default(), 16, None);
    // Spearman-ish check: the top-8 sets must overlap substantially.
    let top_base = select_top_k(&base, 8);
    let top_opt = select_top_k(&opt, 8);
    let overlap = top_base.iter().filter(|v| top_opt.contains(v)).count();
    assert!(overlap >= 5, "executor top-8 overlap only {overlap}/8");
}

#[test]
fn cluster_run_equals_sequential_run() {
    let (dataset, _) = planted(1.4, 80);
    let ctx = TaskContext::full(&dataset);
    let sequential = score_all_voxels(&ctx, &OptimizedExecutor::default(), 20, None);
    let cluster = run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 3, 20, None)
        .expect("healthy cluster run");
    assert_eq!(cluster.scores.len(), sequential.len());
    for (a, b) in cluster.scores.iter().zip(&sequential) {
        assert_eq!(a.voxel, b.voxel);
        assert!((a.accuracy - b.accuracy).abs() < 1e-12);
    }
}

#[test]
fn shuffled_labels_destroy_the_signal() {
    // Permuting condition labels must push informative voxels to chance:
    // the end-to-end null-hypothesis check that guards against label
    // leakage anywhere in the pipeline.
    let (dataset, truth) = planted(1.8, 64);
    let (data, mut epochs) = dataset.into_parts();
    // Swap the labels of epoch pairs *within* subjects, scrambling the
    // condition structure while keeping both classes per subject.
    for chunk in epochs.chunks_mut(2) {
        if chunk.len() == 2 && chunk[0].subject == chunk[1].subject {
            let tmp = chunk[0].label;
            chunk[0].label = chunk[1].label;
            chunk[1].label = tmp;
        }
    }
    // Rebuild with rotated labels: condition A/B assignment is now
    // uncorrelated with the planted coupling sign within each subject.
    let rotated: Vec<EpochSpec> = epochs
        .iter()
        .enumerate()
        .map(|(i, e)| EpochSpec {
            label: if i % 2 == 0 { Condition::A } else { Condition::B },
            ..*e
        })
        .collect();
    let dataset = Dataset::new(data, rotated).unwrap();
    let ctx = TaskContext::full(&dataset);
    let scores = score_all_voxels(&ctx, &OptimizedExecutor::default(), 32, None);
    let mean_inf: f64 = truth.informative.iter().map(|&v| scores[v].accuracy).sum::<f64>()
        / truth.informative.len() as f64;
    assert!(mean_inf < 0.72, "label-scrambled informative voxels still score {mean_inf:.3}");
}

#[test]
fn analysis_config_defaults_work_end_to_end() {
    let (dataset, _) = planted(1.6, 64);
    let r = fcma::core::offline_analysis(
        &dataset,
        &OptimizedExecutor::default(),
        &AnalysisConfig { task_size: 32, top_k: 8 },
    );
    assert_eq!(r.folds.len(), dataset.n_subjects());
    assert!(r.mean_test_accuracy >= 0.5, "below chance: {}", r.mean_test_accuracy);
    for f in &r.folds {
        assert_eq!(f.selected.len(), 8);
    }
}
