//! Fault-tolerance integration tests for the cluster driver: the
//! stranded-task regression, checkpoint/resume equivalence, and
//! checkpoint validation.

use fcma::cluster::CheckpointError;
use fcma::prelude::*;
use fcma_sync::clock::VirtualClock;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn planted(n_voxels: usize) -> TaskContext {
    let mut cfg = fcma::fmri::presets::tiny();
    cfg.n_voxels = n_voxels;
    cfg.n_informative = (n_voxels / 8).max(4) & !1;
    let (dataset, _) = cfg.generate();
    TaskContext::full(&dataset)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fcma_fault_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Regression for the stranding bug in the pre-fault-tolerant driver:
/// one worker finishes the last queued task and goes idle while the
/// other is still computing; the computing worker then dies and its task
/// is requeued. The old master had already decided no work remained for
/// the idle worker (and shut it down), so the requeued task was stranded
/// and the run died on its final completeness assert. The scheduler must
/// instead hand the requeued task to the idle worker.
#[test]
fn requeued_task_reaches_an_idle_worker() {
    // The whole run sits on the facade's virtual clock: the 300 ms fuse
    // costs no wall time, and it fires only once every other thread is
    // parked — i.e. strictly after the healthy worker went idle, which
    // is exactly the ordering this regression needs. No real-time race.
    let clock = VirtualClock::install();
    let ctx = planted(64);
    // Two tasks, two workers. Task 0 panics only after a long fuse, so
    // the other worker has long since finished task 1 and sits idle when
    // the failure arrives.
    let plan =
        FaultPlan::none().with_fault(0, 0, FaultKind::Panic { after: Duration::from_millis(300) });
    let exec: Arc<dyn TaskExecutor> =
        Arc::new(ChaosExecutor::new(Arc::new(OptimizedExecutor::default()), plan));
    let cfg = ClusterConfig { n_workers: 2, task_size: 32, ..Default::default() };
    let run = run_cluster_with(&ctx, exec, &cfg)
        .expect("requeued task must be re-dispatched to the idle worker");
    assert_eq!(run.failed_workers.len(), 1);
    assert_eq!(run.requeued_tasks, 1);
    let voxels: Vec<usize> = run.scores.iter().map(|s| s.voxel).collect();
    assert_eq!(voxels, (0..64).collect::<Vec<_>>());
    assert!(
        clock.now() >= Duration::from_millis(300),
        "the panic fuse must have elapsed on the virtual clock, got {:?}",
        clock.now()
    );
}

/// Drive a checkpointed run to total failure partway through the sweep.
/// With 2 workers and a task that panics on every attempt, the surviving
/// worker must drain the other three tasks before the second fatal panic
/// kills it, so the checkpoint deterministically holds tasks 0/12/24.
fn run_until_cluster_death(ctx: &TaskContext, ckpt: &PathBuf) {
    let plan = FaultPlan::none().with_fault(36, 0, FaultKind::panic_now()).with_fault(
        36,
        1,
        FaultKind::panic_now(),
    );
    let exec: Arc<dyn TaskExecutor> =
        Arc::new(ChaosExecutor::new(Arc::new(OptimizedExecutor::default()), plan));
    let cfg = ClusterConfig {
        n_workers: 2,
        task_size: 12,
        checkpoint: Some(ckpt.clone()),
        ..Default::default()
    };
    let err = run_cluster_with(ctx, exec, &cfg).expect_err("both workers must die");
    assert!(
        matches!(err, ClusterError::AllWorkersFailed { unfinished_tasks: 1 }),
        "expected AllWorkersFailed with task 36 outstanding, got {err:?}"
    );
}

#[test]
fn killed_run_resumes_to_byte_identical_scores() {
    let ctx = planted(48);
    let ckpt = tmp("resume.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    run_until_cluster_death(&ctx, &ckpt);

    // Resume the interrupted sweep with a healthy executor.
    let cfg = ClusterConfig {
        n_workers: 2,
        task_size: 12,
        checkpoint: Some(ckpt.clone()),
        resume_from: Some(ckpt.clone()),
        ..Default::default()
    };
    let resumed =
        run_cluster_with(&ctx, Arc::new(OptimizedExecutor::default()), &cfg).expect("resume");
    assert_eq!(resumed.resumed_voxels, 36, "three of four tasks came from the checkpoint");
    assert_eq!(resumed.tasks_per_worker.iter().sum::<usize>(), 1, "only task 36 was recomputed");

    // Byte-identical to a run that was never interrupted.
    let uninterrupted =
        run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 2, 12, None).expect("healthy");
    assert_eq!(resumed.scores.len(), uninterrupted.scores.len());
    for (a, b) in resumed.scores.iter().zip(&uninterrupted.scores) {
        assert_eq!(a.voxel, b.voxel);
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits(), "voxel {}", a.voxel);
    }
}

#[test]
fn corrupted_checkpoint_is_rejected() {
    let ctx = planted(48);
    let ckpt = tmp("corrupt.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    run_until_cluster_death(&ctx, &ckpt);

    // Flip one hex digit inside a committed score record.
    let text = std::fs::read_to_string(&ckpt).unwrap();
    let tampered = text.replacen("3f", "3e", 1);
    assert_ne!(text, tampered, "fixture must contain a mantissa to corrupt");
    let bad = tmp("corrupt_tampered.ckpt");
    std::fs::write(&bad, tampered).unwrap();

    let cfg = ClusterConfig {
        n_workers: 2,
        task_size: 12,
        resume_from: Some(bad.clone()),
        ..Default::default()
    };
    let err = run_cluster_with(&ctx, Arc::new(OptimizedExecutor::default()), &cfg)
        .expect_err("tampered checkpoint must be rejected");
    assert!(
        matches!(err, ClusterError::Checkpoint(CheckpointError::Corrupt { .. })),
        "got {err:?}"
    );
}

#[test]
fn checkpoint_from_a_different_sweep_shape_is_rejected() {
    let ctx = planted(48);
    let ckpt = tmp("mismatch.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    run_until_cluster_death(&ctx, &ckpt);

    // Same file, different task partition: refuse rather than mix.
    let cfg = ClusterConfig {
        n_workers: 2,
        task_size: 16,
        resume_from: Some(ckpt.clone()),
        ..Default::default()
    };
    let err = run_cluster_with(&ctx, Arc::new(OptimizedExecutor::default()), &cfg)
        .expect_err("mismatched checkpoint must be rejected");
    assert!(
        matches!(err, ClusterError::CheckpointMismatch { found: (48, 12), expected: (48, 16) }),
        "got {err:?}"
    );
}
