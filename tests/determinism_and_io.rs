//! Integration tests for determinism and persistence: identical seeds
//! must give identical analyses, and a dataset round-tripped through the
//! on-disk formats must produce identical scores.

use fcma::prelude::*;

#[test]
fn identical_seeds_give_identical_scores() {
    let cfg = fcma::fmri::presets::tiny();
    let (d1, _) = cfg.generate();
    let (d2, _) = cfg.generate();
    let s1 = score_all_voxels(&TaskContext::full(&d1), &OptimizedExecutor::default(), 32, None);
    let s2 = score_all_voxels(&TaskContext::full(&d2), &OptimizedExecutor::default(), 32, None);
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a.voxel, b.voxel);
        assert_eq!(a.accuracy, b.accuracy, "nondeterminism at voxel {}", a.voxel);
    }
}

#[test]
fn task_partitioning_does_not_change_scores() {
    let (d, _) = fcma::fmri::presets::tiny().generate();
    let ctx = TaskContext::full(&d);
    let exec = OptimizedExecutor::default();
    let a = score_all_voxels(&ctx, &exec, 96, None); // one big task
    let b = score_all_voxels(&ctx, &exec, 7, None); // many ragged tasks
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.voxel, y.voxel);
        assert!(
            (x.accuracy - y.accuracy).abs() < 1e-9,
            "task-size dependence at voxel {}: {} vs {}",
            x.voxel,
            x.accuracy,
            y.accuracy
        );
    }
}

#[test]
fn dataset_roundtrip_preserves_scores() {
    let (d, _) = fcma::fmri::presets::tiny().generate();
    let dir = std::env::temp_dir().join("fcma_integration_io");
    std::fs::create_dir_all(&dir).unwrap();
    let stem = dir.join("roundtrip");
    fcma::fmri::io::save_dataset(&stem, &d).unwrap();
    let loaded = fcma::fmri::io::load_dataset(&stem).unwrap();

    let exec = OptimizedExecutor::default();
    let before = score_all_voxels(&TaskContext::full(&d), &exec, 32, None);
    let after = score_all_voxels(&TaskContext::full(&loaded), &exec, 32, None);
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.accuracy, b.accuracy, "I/O roundtrip changed voxel {}", a.voxel);
    }
}

#[test]
fn epoch_table_text_format_is_stable() {
    let (d, _) = fcma::fmri::presets::tiny().generate();
    let mut buf = Vec::new();
    fcma::fmri::io::write_epoch_table(&mut buf, d.epochs()).unwrap();
    let text = String::from_utf8(buf).unwrap();
    // Human-readable: one line per epoch plus the header comment.
    assert_eq!(text.lines().count(), d.n_epochs() + 1);
    assert!(text.starts_with('#'));
    let parsed =
        fcma::fmri::io::read_epoch_table(&mut std::io::Cursor::new(text.as_bytes())).unwrap();
    assert_eq!(parsed, d.epochs());
}

#[test]
fn svm_solvers_are_deterministic() {
    let (d, _) = fcma::fmri::presets::tiny().generate();
    let ctx = TaskContext::full(&d);
    let corr = fcma::core::corr_normalized_merged(
        &ctx,
        VoxelTask { start: 0, count: 1 },
        Default::default(),
    );
    let kernel = KernelMatrix::precompute_raw(ctx.n_epochs(), ctx.n_voxels(), corr.voxel_matrix(0));
    for solver in [
        SolverKind::LibSvm(Default::default()),
        SolverKind::OptimizedLibSvm(SmoParams::default()),
        SolverKind::PhiSvm(SmoParams::default()),
    ] {
        let a = fcma::svm::loso_cross_validate(&kernel, &ctx.y, &ctx.subjects, &solver);
        let b = fcma::svm::loso_cross_validate(&kernel, &ctx.y, &ctx.subjects, &solver);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.total_iterations, b.total_iterations);
    }
}
