//! Bench regression gate over the committed `BENCH_stage1.json`
//! (DESIGN.md §15).
//!
//! Absolute milliseconds are meaningless across hosts, so the gate
//! compares **ratios**: the merged/baseline serial ratio measured here
//! and now must not be more than `gates.max_serial_regression` worse
//! than the committed ratio, and on a host with ≥4 cores the pooled
//! merged kernel must reach `gates.min_speedup_4t`. The JSON has no
//! serde on purpose (the workspace carries no serde dependency); the
//! tiny extractor below leans on the emitter's deterministic shape.

use fcma_bench::autotune::{GRID_KC, GRID_MC, GRID_NC, GRID_PANEL_K, GRID_TILE_COLS};
use fcma_bench::measure::{measure_stage12, measure_stage12_parallel};
use fcma_bench::workloads::DatasetKind;
use std::path::Path;

fn committed_json() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_stage1.json");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("BENCH_stage1.json must be committed at {path:?}: {e}"))
}

/// Extract the number after the first `"key":` occurrence. The emitter
/// (`bench-stage1`) writes every scalar as `"key": <number>`, keys are
/// chosen to be unambiguous as substrings, and the first dataset in the
/// array is always face-scene.
fn num(json: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\":");
    let at =
        json.find(&tag).unwrap_or_else(|| panic!("BENCH_stage1.json is missing field `{key}`"));
    let rest = json[at + tag.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("field `{key}` is not a number ({:?}): {e}", &rest[..end]))
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

#[test]
fn committed_bench_json_has_gate_schema() {
    let json = committed_json();

    // Gate thresholds exist and are sane.
    let min_speedup = num(&json, "min_speedup_4t");
    assert!((1.0..10.0).contains(&min_speedup), "min_speedup_4t out of range: {min_speedup}");
    let max_reg = num(&json, "max_serial_regression");
    assert!((0.0..1.0).contains(&max_reg), "max_serial_regression out of range: {max_reg}");

    // The recording host described itself, so ratio consumers can tell
    // a 1-core overhead measurement from a real speedup.
    let parallelism = num(&json, "parallelism");
    assert!(parallelism >= 1.0, "host.parallelism must be recorded");

    // Autotune chose shapes from the documented §15 grids.
    assert!(GRID_MC.contains(&(num(&json, "mc") as usize)), "autotune.mc not in grid");
    assert!(GRID_KC.contains(&(num(&json, "kc") as usize)), "autotune.kc not in grid");
    assert!(GRID_NC.contains(&(num(&json, "nc") as usize)), "autotune.nc not in grid");
    assert!(GRID_PANEL_K.contains(&(num(&json, "panel_k") as usize)), "panel_k not in grid");
    assert!(GRID_TILE_COLS.contains(&(num(&json, "tile_cols") as usize)), "tile_cols not in grid");
    let candidates = num(&json, "candidates") as usize;
    assert_eq!(
        candidates,
        GRID_MC.len() * GRID_KC.len() * GRID_NC.len() + GRID_PANEL_K.len() + GRID_TILE_COLS.len(),
        "autotune must sweep the full grid"
    );

    // Parallel section: an 8-thread run with positive times.
    assert!(num(&json, "threads") >= 4.0, "parallel run must use >= 4 workers");
    assert!(num(&json, "merged_serial_ms") > 0.0);
    assert!(num(&json, "merged_parallel_ms") > 0.0);
    assert!(num(&json, "merged_speedup") > 0.0);
}

#[test]
fn serial_merged_ratio_has_not_regressed() {
    let json = committed_json();
    let committed_ratio = num(&json, "merged") / num(&json, "corr_baseline");
    assert!(
        committed_ratio > 0.0 && committed_ratio.is_finite(),
        "committed merged/baseline ratio is degenerate: {committed_ratio}"
    );
    let max_reg = num(&json, "max_serial_regression");

    // The committed numbers come from the release binary; an unoptimized
    // build skews the merged/baseline ratio (the hand-tiled kernel loses
    // more to missing inlining than the naive GEMM does), so the debug
    // run keeps the gate armed but with wide slack — the release CI job
    // is the authoritative enforcement.
    let (reps, slack) = if cfg!(debug_assertions) { (1, 3.0) } else { (3, 1.0) };

    // Same workload shape the committed numbers used; best-of reps damps
    // scheduler noise.
    let t = measure_stage12(DatasetKind::FaceScene, 256, 32, reps);
    let measured_ratio = t.merged_ms / t.corr_baseline_ms;

    assert!(
        measured_ratio <= committed_ratio * (1.0 + max_reg) * slack,
        "merged stage-1+2 regressed vs baseline GEMM: measured ratio {measured_ratio:.3} \
         vs committed {committed_ratio:.3} (allowed +{:.0}%, slack x{slack})",
        max_reg * 100.0
    );
}

#[test]
fn parallel_speedup_meets_gate_on_multicore_hosts() {
    let cores = host_parallelism();
    if cores < 4 {
        // A <4-core host cannot show the gated speedup; the committed
        // JSON records `host.parallelism` for the same reason.
        eprintln!("bench_gate: host has {cores} core(s); speedup gate skipped");
        return;
    }
    let json = committed_json();
    let min_speedup = num(&json, "min_speedup_4t");
    let threads = cores.min(8);
    let par = measure_stage12_parallel(DatasetKind::FaceScene, 256, 32, 3, threads);
    let speedup = par.merged_serial_ms / par.merged_parallel_ms;
    assert!(
        speedup >= min_speedup,
        "pooled merged kernel too slow at {threads} threads: {speedup:.2}x < gate {min_speedup}"
    );
}
