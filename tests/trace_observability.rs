//! Observability integration tests: chaos-seeded cluster sweeps run
//! under an installed trace collector must account for every dispatch
//! outcome exactly — the trace counters are cross-checked against the
//! injected `FaultPlan`, the per-task `TaskStat`s, and the exported
//! Chrome-trace JSON round trip.

use fcma::prelude::*;
use fcma::trace::export::{from_chrome_json, to_chrome_json};
use fcma::trace::Collector;
use fcma_sync::clock::VirtualClock;
use fcma_sync::thread::now_virtual_nanos;
use std::sync::Arc;
use std::time::Duration;

fn planted(n_voxels: usize) -> TaskContext {
    let mut cfg = fcma::fmri::presets::tiny();
    cfg.n_voxels = n_voxels;
    cfg.n_informative = (n_voxels / 8).max(4) & !1;
    let (dataset, _) = cfg.generate();
    TaskContext::full(&dataset)
}

fn chaos_exec(plan: FaultPlan) -> Arc<dyn TaskExecutor> {
    Arc::new(ChaosExecutor::new(Arc::new(OptimizedExecutor::default()), plan))
}

/// One panic and one stall: the trace must show exactly one failed and
/// one condemned dispatch, every other outcome zero, and the per-task
/// stats must attribute exactly two attempts to each faulted task.
#[test]
fn chaos_counters_match_an_explicit_fault_plan() {
    // Virtual clock: the stalled task's 500 ms deadline elapses in zero
    // wall time, and the condemnation becomes deterministic instead of
    // racing the real scheduler.
    let _clock = VirtualClock::install();
    let ctx = planted(96); // 6 tasks of 16 voxels
    let plan = FaultPlan::none().with_fault(0, 0, FaultKind::panic_now()).with_fault(
        48,
        0,
        FaultKind::Stall,
    );
    let cfg = ClusterConfig {
        n_workers: 3,
        task_size: 16,
        task_deadline: Some(Duration::from_millis(500)),
        ..Default::default()
    };

    let collector = Collector::new();
    let scoped = collector.install_scoped();
    let run = run_cluster_with(&ctx, chaos_exec(plan), &cfg).expect("chaos run must recover");
    let report = scoped.drain();
    drop(scoped);

    // Exact dispatch arithmetic: tasks 0 and 48 cost two dispatches
    // (panic + retry, condemn + retry), the other four cost one.
    assert_eq!(report.counter("cluster.tasks.total"), 6);
    assert_eq!(report.counter("cluster.tasks.dispatched"), 8);
    assert_eq!(report.counter("cluster.tasks.completed"), 6);
    assert_eq!(report.counter("cluster.tasks.failed"), 1);
    assert_eq!(report.counter("cluster.tasks.condemned"), 1);
    assert_eq!(report.counter("cluster.tasks.requeued"), 2);
    assert_eq!(report.counter("cluster.tasks.speculative"), 0);
    assert_eq!(report.counter("cluster.tasks.resumed"), 0);
    assert_eq!(report.event_count("cluster.condemn"), 1);
    assert_eq!(report.event_count("cluster.speculate"), 0);
    assert_eq!(report.span_count("cluster.run"), 1);
    assert_eq!(report.span_count("cluster.dispatch"), 8);
    assert!(
        report.check_consistency().is_empty(),
        "invariants must hold: {:?}",
        report.check_consistency()
    );

    // Pipeline spans made it out of the worker threads too (the
    // optimized executor runs the merged stage-1+2 path).
    assert!(report.span_count("task.process") >= 6);
    assert!(report.span_count("stage12.fused") >= 6);
    assert!(report.counter("svm.smo.solves") > 0);

    // Satellite: ClusterRun exposes per-task attempt counts and walls.
    assert_eq!(run.task_stats.len(), 6);
    for stat in &run.task_stats {
        assert!(!stat.resumed);
        assert!(stat.worker.is_some(), "task {} has no accepted worker", stat.task.start);
        let want_attempts = if stat.task.start == 0 || stat.task.start == 48 { 2 } else { 1 };
        assert_eq!(stat.attempts, want_attempts, "task {}", stat.task.start);
        // On the virtual clock a healthy task's wall can be exactly
        // zero (compute burns no virtual time); only the stalled task
        // is guaranteed a nonzero — and exact — wall below.
    }
    // The condemned task was outstanding at least one full deadline,
    // measured on the virtual clock the whole run shares.
    let stalled = run.task_stats.iter().find(|s| s.task.start == 48).unwrap();
    assert!(stalled.wall >= Duration::from_millis(500), "stalled wall {:?}", stalled.wall);
    assert!(
        now_virtual_nanos() >= 500_000_000,
        "virtual time must have advanced past the deadline"
    );

    // The exported Chrome JSON carries the same accounting.
    let json = to_chrome_json(&report);
    let parsed = from_chrome_json(&json).expect("exported trace must parse back");
    assert_eq!(parsed.counters, report.counters);
    assert_eq!(parsed.spans.len(), report.spans.len());
    assert!(parsed.check_consistency().is_empty());
}

/// A seeded plan: derive the expected dispatch/panic tallies from the
/// plan itself (a panic at attempt `n` fires only if attempts `0..n`
/// all panicked) and require the traced counters to match exactly.
#[test]
fn chaos_counters_match_a_seeded_fault_plan() {
    let (n_voxels, task_size) = (96usize, 16usize);
    let plan = FaultPlan::seeded(0xFC4A, n_voxels, task_size, 350, 500, 300);
    assert!(!plan.is_empty(), "seed must inject at least one fault");

    let mut expected_panics = 0u64;
    let mut expected_dispatches = 0u64;
    for start in (0..n_voxels).step_by(task_size) {
        let mut attempt = 0usize;
        loop {
            expected_dispatches += 1;
            match plan.fault_for(start, attempt) {
                Some(FaultKind::Panic { .. }) => {
                    expected_panics += 1;
                    attempt += 1;
                }
                // Delays complete (slowly); no fault completes cleanly.
                _ => break,
            }
        }
    }
    assert!(expected_panics > 0, "seed must inject at least one panic");

    // Every panic permanently kills one worker; keep two spares.
    // cast is exact here: expected_panics is a handful of tasks
    let n_workers = expected_panics as usize + 2;
    let cfg = ClusterConfig { n_workers, task_size, retry_budget: 3, ..Default::default() };

    let ctx = planted(n_voxels);
    let collector = Collector::new();
    let scoped = collector.install_scoped();
    let run = run_cluster_with(&ctx, chaos_exec(plan), &cfg).expect("seeded chaos must recover");
    let report = scoped.drain();
    drop(scoped);

    assert_eq!(report.counter("cluster.tasks.total"), 6);
    assert_eq!(report.counter("cluster.tasks.completed"), 6);
    assert_eq!(report.counter("cluster.tasks.failed"), expected_panics);
    assert_eq!(report.counter("cluster.tasks.dispatched"), expected_dispatches);
    assert_eq!(report.counter("cluster.tasks.condemned"), 0);
    assert_eq!(report.counter("cluster.tasks.speculative"), 0);
    assert_eq!(report.span_count("cluster.dispatch"), expected_dispatches);
    assert_eq!(run.failed_workers.len() as u64, expected_panics);
    assert!(report.check_consistency().is_empty(), "{:?}", report.check_consistency());
}

/// Speculation: a delayed straggler gets a traced duplicate; exactly one
/// of the two copies is accepted and the other is discarded (if its
/// result arrives) or cancelled at shutdown (if it does not).
#[test]
fn speculative_duplicate_is_traced_and_accounted() {
    // Virtual clock: the 800 ms straggler sleep and the 80 ms
    // speculation trigger both elapse instantly and in a fixed order
    // (the duplicate always launches while the straggler still sleeps).
    let _clock = VirtualClock::install();
    let ctx = planted(64); // 4 tasks of 16 voxels
    let plan = FaultPlan::none().with_fault(16, 0, FaultKind::Delay(Duration::from_millis(800)));
    let cfg = ClusterConfig {
        n_workers: 2,
        task_size: 16,
        speculate_after: Some(Duration::from_millis(80)),
        ..Default::default()
    };

    let collector = Collector::new();
    let scoped = collector.install_scoped();
    let run = run_cluster_with(&ctx, chaos_exec(plan), &cfg).expect("speculative run");
    let report = scoped.drain();
    drop(scoped);

    assert_eq!(run.speculative_launches, 1);
    assert_eq!(report.counter("cluster.tasks.speculative"), 1);
    assert_eq!(report.event_count("cluster.speculate"), 1);
    assert_eq!(report.counter("cluster.tasks.dispatched"), 5);
    assert_eq!(report.counter("cluster.tasks.completed"), 4);
    // The losing copy either reported late (discarded) or was still
    // sleeping at shutdown (cancelled) — never both, never neither.
    let loser =
        report.counter("cluster.tasks.discarded") + report.counter("cluster.tasks.cancelled");
    assert_eq!(loser, 1);
    assert!(report.check_consistency().is_empty(), "{:?}", report.check_consistency());

    // The straggler's stat reflects one non-speculative attempt but a
    // wall time at least as long as the speculation trigger.
    let straggler = run.task_stats.iter().find(|s| s.task.start == 16).unwrap();
    assert_eq!(straggler.attempts, 1);
    assert!(straggler.wall >= Duration::from_millis(80), "wall {:?}", straggler.wall);
}

/// Causal tracing end to end: a chaos run with a panic and a retry must
/// stamp every worker-side span with the ctx of a live dispatch, mark
/// the retry's spans with origin `retry`, bridge the flight recorder's
/// events into the drained report, and drop a validating postmortem
/// artifact for the panicking task — all under the causality invariants
/// of `check_consistency`.
#[test]
fn causal_context_recorder_bridge_and_postmortem() {
    use fcma::trace::AttrValue;

    let _clock = VirtualClock::install();
    let ctx = planted(48); // 3 tasks of 16 voxels
    let plan = FaultPlan::none().with_fault(16, 0, FaultKind::panic_now());
    let pm_dir = std::env::temp_dir().join("fcma-obs-postmortem");
    let _ = std::fs::remove_dir_all(&pm_dir);
    let cfg = ClusterConfig {
        n_workers: 3,
        task_size: 16,
        postmortem_dir: Some(pm_dir.clone()),
        ..Default::default()
    };

    let collector = Collector::new();
    let scoped = collector.install_scoped();
    let run = run_cluster_with(&ctx, chaos_exec(plan), &cfg).expect("chaos run must recover");
    let report = scoped.drain_with_recorder();
    drop(scoped);
    assert_eq!(run.scores.len(), 48);

    // Every ctx-stamped record names a dispatch that really happened.
    let live: Vec<(u64, u64)> = report
        .spans
        .iter()
        .filter(|s| s.name == "cluster.dispatch")
        .map(|s| {
            let get = |k: &str| match s.attr(k) {
                Some(&AttrValue::U64(v)) => v,
                other => panic!("dispatch span missing {k}: {other:?}"),
            };
            (get("task"), get("attempt"))
        })
        .collect();
    assert_eq!(live.len(), 4, "3 first dispatches + 1 retry: {live:?}");
    assert!(live.contains(&(16, 1)) && live.contains(&(16, 2)), "{live:?}");

    let procs: Vec<_> = report.spans.iter().filter(|s| s.name == "task.process").collect();
    assert!(!procs.is_empty(), "worker spans must be present");
    let mut saw_retry = false;
    for s in &procs {
        let (Some(&AttrValue::U64(t)), Some(&AttrValue::U64(a))) =
            (s.attr("ctx_task"), s.attr("ctx_attempt"))
        else {
            panic!("task.process span missing causal ctx: {:?}", s.attrs);
        };
        assert!(live.contains(&(t, a)), "ctx ({t},{a}) has no parent dispatch");
        if s.attr("ctx_origin") == Some(&AttrValue::Str("retry".to_string())) {
            assert_eq!((t, a), (16, 2), "only task 16's second attempt is a retry");
            saw_retry = true;
        }
    }
    assert!(saw_retry, "the retried attempt's span must carry origin=retry");
    assert!(report.check_consistency().is_empty(), "{:?}", report.check_consistency());
    assert!(report.check_causality().is_empty(), "{:?}", report.check_causality());

    // The derived per-family latency histograms behave like quantile
    // summaries: task.process is present and its quantiles are ordered.
    let hists = report.span_duration_histograms();
    let hist = hists.get("task.process").expect("task.process family in the histograms");
    assert!(hist.quantile(0.99) >= hist.quantile(0.5), "quantiles must be monotone");

    // The live recorder agrees with the bridged view: a merged snapshot
    // still carries the panicking task's causal chain.
    let snap: fcma::trace::recorder::RecorderSnapshot = fcma::trace::recorder::snapshot();
    assert!(!snap.causal_chain(16).is_empty(), "recorder snapshot lost task 16's chain");

    // Flight-recorder events were bridged into the drained report and
    // survive the Chrome JSON round trip.
    assert!(report.spans.iter().any(|s| s.name == "recorder.dispatch"));
    assert!(report.spans.iter().any(|s| s.name == "recorder.task.panic"));
    let parsed = from_chrome_json(&to_chrome_json(&report)).expect("round trip");
    assert_eq!(
        parsed.spans.iter().filter(|s| s.name.starts_with("recorder.")).count(),
        report.spans.iter().filter(|s| s.name.starts_with("recorder.")).count()
    );

    // The panic dropped a validating postmortem naming the causal chain.
    let dump = pm_dir.join("postmortem-task-panic-task16-attempt1.txt");
    let text = std::fs::read_to_string(&dump).expect("postmortem artifact must exist");
    let summary = fcma::trace::postmortem::validate(&text).expect("artifact must validate");
    assert!(summary.trigger.starts_with("task.panic task=16 attempt=1"), "{}", summary.trigger);
    assert!(summary.chain_len > 0, "causal chain of the panicking task is empty");
    let _ = std::fs::remove_dir_all(&pm_dir);
}

/// With no collector installed the same chaos run records nothing and
/// still succeeds — instrumentation must never perturb scheduling.
#[test]
fn uninstrumented_chaos_run_records_nothing() {
    let ctx = planted(48);
    let plan = FaultPlan::none().with_fault(0, 0, FaultKind::panic_now());
    let cfg = ClusterConfig { n_workers: 2, task_size: 16, ..Default::default() };
    let run = run_cluster_with(&ctx, chaos_exec(plan), &cfg).expect("run");
    assert_eq!(run.scores.len(), 48);
    assert_eq!(run.task_stats.len(), 3, "task stats work without a collector");

    // A collector installed only *after* the run sees an empty world.
    let collector = Collector::new();
    let scoped = collector.install_scoped();
    let report = scoped.drain();
    assert!(report.spans.is_empty());
    assert!(report.counters.is_empty());
}
