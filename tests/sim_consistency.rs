//! Integration tests pinning the simulator layers together: analytic
//! counter models vs trace-driven cache simulation, time-model orderings,
//! and the cluster model's asymptotics — the invariants behind every
//! modeled table in the reproduction.

use fcma::sim::analytic::{self, face_scene_task, SvmImpl};
use fcma::sim::trace;
use fcma::sim::{phi_5110p, xeon_e5_2670, CacheConfig, CorrShape, SyrkShape, TimeModel};

fn small_l2() -> CacheConfig {
    CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, associativity: 8 }
}

#[test]
fn analytic_corr_model_validated_by_trace_across_shapes() {
    let phi = phi_5110p();
    for (v, n, m) in [(8u64, 512u64, 6u64), (16, 768, 8), (24, 1024, 4)] {
        let s = CorrShape { v, n, m, k: 12 };
        let t = trace::trace_corr_optimized(&s, small_l2(), 128, 4);
        let model = analytic::corr_optimized(&s, &phi).l2_misses;
        let ratio = t.misses as f64 / model as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "corr {v}x{n}x{m}: trace {} vs model {model}",
            t.misses
        );
    }
}

#[test]
fn analytic_syrk_model_validated_by_trace_across_shapes() {
    let phi = phi_5110p();
    for (m, n) in [(16u64, 768u64), (24, 960), (32, 1920)] {
        let s = SyrkShape { m, n, voxels: 1 };
        let t = trace::trace_syrk_optimized(&s, small_l2(), 96);
        let model = analytic::syrk_optimized(&s, &phi).l2_misses;
        let ratio = t.misses as f64 / model as f64;
        assert!((0.4..2.5).contains(&ratio), "syrk {m}x{n}: trace {} vs model {model}", t.misses);
    }
}

#[test]
fn every_paper_ordering_holds_in_the_model() {
    let phi = phi_5110p();
    let tm = TimeModel::default();
    let corr_opt = analytic::corr_optimized(&face_scene_task::corr(), &phi);
    let corr_mkl = analytic::corr_mkl(&face_scene_task::corr(), &phi);
    let syrk_opt = analytic::syrk_optimized(&face_scene_task::syrk(), &phi);
    let syrk_mkl = analytic::syrk_mkl(&face_scene_task::syrk(), &phi);
    let norm_m = analytic::norm_merged(&face_scene_task::norm(), &phi);
    let norm_s = analytic::norm_separated(&face_scene_task::norm(), &phi);
    let norm_b = analytic::norm_baseline(&face_scene_task::norm(), &phi);

    // Table 5: our kernels beat MKL's on both stages.
    assert!(tm.kernel_ms(&corr_opt, &phi) < tm.kernel_ms(&corr_mkl, &phi));
    assert!(tm.kernel_ms(&syrk_opt, &phi) < tm.kernel_ms(&syrk_mkl, &phi));
    // Table 7: merged < separated < baseline.
    let t_merged = tm.kernel_ms(&(corr_opt + norm_m), &phi);
    let t_sep = tm.kernel_ms(&(corr_opt + norm_s), &phi);
    let t_base = tm.kernel_ms(&(corr_opt + norm_b), &phi);
    assert!(t_merged < t_sep, "{t_merged} !< {t_sep}");
    assert!(t_sep < t_base, "{t_sep} !< {t_base}");
    // Paper's ~24% merged gain: ours should be at least 15%.
    assert!(t_sep / t_merged > 1.15, "merge gain only {:.2}x", t_sep / t_merged);

    // Table 8 ordering, per-voxel serial model with equal iterations.
    let s = fcma::sim::SvmShape { l: 192, folds: 17, voxels: 1, iters: 5000 };
    let t_lib = tm.per_thread_ms(&analytic::svm_cv(SvmImpl::LibSvm, &s, &phi), &phi);
    let t_opt = tm.per_thread_ms(&analytic::svm_cv(SvmImpl::OptimizedLibSvm, &s, &phi), &phi);
    let t_phi = tm.per_thread_ms(&analytic::svm_cv(SvmImpl::PhiSvm, &s, &phi), &phi);
    assert!(t_lib > t_opt && t_opt > t_phi, "{t_lib} / {t_opt} / {t_phi}");
    // Paper: LibSVM ~9x slower than PhiSVM; ours within a broad band.
    assert!((3.0..30.0).contains(&(t_lib / t_phi)), "SVM gap {}", t_lib / t_phi);
}

#[test]
fn xeon_model_shows_smaller_gains_than_phi() {
    let phi = phi_5110p();
    let xeon = xeon_e5_2670();
    let tm = TimeModel::default();
    let gap = |m: &fcma::sim::MachineConfig| {
        let opt = analytic::corr_optimized(&face_scene_task::corr(), m)
            + analytic::syrk_optimized(&face_scene_task::syrk(), m)
            + analytic::norm_merged(&face_scene_task::norm(), m);
        let base = analytic::corr_mkl(&face_scene_task::corr(), m)
            + analytic::syrk_mkl(&face_scene_task::syrk(), m)
            + analytic::norm_baseline(&face_scene_task::norm(), m);
        tm.kernel_ms(&base, m) / tm.kernel_ms(&opt, m)
    };
    let g_phi = gap(&phi);
    let g_xeon = gap(&xeon);
    assert!(g_xeon > 1.0, "optimizations must help the Xeon too: {g_xeon}");
    assert!(g_xeon < g_phi, "Fig. 10/11 direction violated: {g_xeon} !< {g_phi}");
}

#[test]
fn cluster_model_is_near_linear_then_bends() {
    let model = fcma::prelude::ClusterModel { data_bytes: 0.48e9, ..Default::default() };
    let tasks = vec![2.0f64; 144 * 18];
    let t1 = model.simulate(&tasks, 1);
    let t8 = model.simulate(&tasks, 8);
    let t96 = model.simulate(&tasks, 96);
    let s8 = t1 / t8;
    let s96 = t1 / t96;
    assert!(s8 > 7.0, "8-node speedup {s8}");
    assert!((45.0..96.0).contains(&s96), "96-node speedup {s96}");
    // Efficiency decreases with node count (the Fig. 8 bend).
    assert!(s96 / 96.0 < s8 / 8.0);
}

#[test]
fn trace_and_analytic_agree_that_merging_saves_misses() {
    let s = fcma::sim::NormShape { elems: 16 * 8 * 768 };
    let merged = trace::trace_norm_merged(&s, small_l2(), 0, 512);
    let separated = trace::trace_norm_separated(&s, small_l2(), 0);
    assert!(
        separated.misses > merged.misses,
        "trace: separated {} !> merged {}",
        separated.misses,
        merged.misses
    );
    let phi = phi_5110p();
    let am = analytic::norm_merged(&s, &phi);
    let asep = analytic::norm_separated(&s, &phi);
    assert!(asep.l2_misses > am.l2_misses);
}
