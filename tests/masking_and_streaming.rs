//! Cross-crate integration tests for the workflow features around the
//! core pipeline: brain masking, streaming closed-loop sessions, ROI
//! cluster extraction, statistical validation, and model persistence.

use fcma::core::realtime::{OnlineSession, SessionConfig};
use fcma::core::stage2::corr_normalized_merged;
use fcma::core::{benjamini_hochberg, voxel_permutation_test};
use fcma::fmri::geometry::{extract_clusters, Grid3};
use fcma::fmri::mask::VoxelMask;
use fcma::fmri::Placement;
use fcma::prelude::*;
use fcma::svm::{load_model, save_model, SolverKind};

/// Masking must not change the scores of surviving voxels relative to a
/// run over the same voxel set: the pipeline sees the compacted dataset
/// identically. (Note: a mask *does* change correlation-vector contents —
/// it removes feature columns — so we compare masked-run vs masked-run,
/// not masked vs unmasked.)
#[test]
fn masked_analysis_is_deterministic_and_complete() {
    let mut cfg = fcma::fmri::presets::tiny();
    cfg.coupling = 1.8;
    let (d, gt) = cfg.generate();
    // Keep 3/4 of the brain including the planted network.
    let mut keep: Vec<usize> = (0..d.n_voxels()).filter(|v| v % 4 != 0).collect();
    keep.extend(&gt.informative);
    keep.sort_unstable();
    keep.dedup();
    let mask = VoxelMask::from_indices(d.n_voxels(), &keep);
    let (masked, map) = mask.apply(&d);

    let ctx = TaskContext::full(&masked);
    let scores = score_all_voxels(&ctx, &OptimizedExecutor::default(), 32, None);
    assert_eq!(scores.len(), masked.n_voxels());

    // Map the selection back to acquisition space and check recovery.
    let selected_compact = select_top_k(&scores, gt.informative.len());
    let selected_orig: Vec<usize> = selected_compact.iter().map(|&c| map[c]).collect();
    let rec = recovery_rate(&selected_orig, &gt.informative);
    assert!(rec >= 0.6, "masked analysis recovered only {rec:.2}");
}

/// The streaming session must reproduce the batch analysis exactly when
/// fed the same epochs, and its persisted feedback model must survive a
/// save/load round trip with identical decisions.
#[test]
fn streaming_session_matches_batch_and_persists() {
    let mut cfg = fcma::fmri::presets::tiny();
    cfg.n_subjects = 1;
    cfg.epochs_per_subject = 16;
    cfg.n_voxels = 64;
    cfg.n_informative = 8;
    cfg.coupling = 1.8;
    cfg.gap = 0;
    let (d, _) = cfg.generate();

    let mut session = OnlineSession::new(
        SessionConfig { top_k: 8, task_size: 32, ..Default::default() },
        d.n_voxels(),
    );
    for ep in d.epochs() {
        session.begin_epoch(ep.label).unwrap();
        for t in ep.start..ep.start + ep.len {
            let vol: Vec<f32> = (0..d.n_voxels()).map(|v| d.data().get(v, t)).collect();
            session.push_volume(&vol).unwrap();
        }
        session.end_epoch().unwrap();
    }
    assert_eq!(session.n_epochs(), d.n_epochs());

    let fb = session.train_feedback().unwrap();
    // Round-trip the classifier through the binary format.
    let mut buf = Vec::new();
    save_model(&mut buf, &fb.model).unwrap();
    let loaded = load_model(&mut std::io::Cursor::new(buf)).unwrap();
    assert_eq!(loaded.alpha_y, fb.model.alpha_y);
    assert_eq!(loaded.rho, fb.model.rho);
}

/// Blob-placed networks → cluster extraction → permutation significance:
/// the full ROI workflow across fcma-fmri, fcma-core, and fcma-svm.
#[test]
fn roi_workflow_end_to_end() {
    let mut cfg = fcma::fmri::presets::tiny();
    cfg.n_voxels = 216; // 6x6x6 grid
    cfg.n_informative = 12;
    cfg.coupling = 2.0;
    cfg.placement = Placement::SphericalBlobs;
    let (d, gt) = cfg.generate();
    let grid = Grid3::cube_for(d.n_voxels());

    let ctx = TaskContext::full(&d);
    let scores = score_all_voxels(&ctx, &OptimizedExecutor::default(), 64, None);
    let selected = select_top_k(&scores, gt.informative.len());
    let clusters = extract_clusters(&grid, &selected);

    // The two planted blobs dominate the clustering.
    let big: Vec<_> = clusters.iter().filter(|c| c.len() >= 3).collect();
    assert!(
        (1..=3).contains(&big.len()),
        "expected ~2 large clusters, got {} (sizes {:?})",
        big.len(),
        clusters.iter().map(|c| c.len()).collect::<Vec<_>>()
    );
    let planted_in_big: usize =
        big.iter().map(|c| c.voxels.iter().filter(|v| gt.informative.contains(v)).count()).sum();
    assert!(
        planted_in_big * 3 >= gt.informative.len() * 2,
        "large clusters hold only {planted_in_big}/{} planted voxels",
        gt.informative.len()
    );

    // The peak voxel is statistically significant under permutation.
    let peak = *selected
        .iter()
        .max_by(|&&a, &&b| scores[a].accuracy.partial_cmp(&scores[b].accuracy).unwrap())
        .unwrap();
    let corr =
        corr_normalized_merged(&ctx, VoxelTask { start: peak, count: 1 }, Default::default());
    let (_, p) = voxel_permutation_test(
        &corr,
        0,
        &ctx.y,
        &ctx.subjects,
        &SolverKind::PhiSvm(SmoParams::default()),
        19,
        11,
    );
    assert!(p <= 0.05, "peak voxel p = {p}");
}

/// FDR selection over real pipeline scores behaves sanely: with strong
/// signal it keeps some voxels; on pure noise it keeps (almost) none.
#[test]
fn fdr_behaves_on_signal_and_noise() {
    let rank_ps = |scores: &[VoxelScore]| -> Vec<f64> {
        scores
            .iter()
            .map(|s| {
                let better = scores.iter().filter(|o| o.accuracy >= s.accuracy).count();
                better as f64 / scores.len() as f64
            })
            .collect()
    };

    let mut cfg = fcma::fmri::presets::tiny();
    cfg.coupling = 2.0;
    let (d, gt) = cfg.generate();
    let ctx = TaskContext::full(&d);
    let scores = score_all_voxels(&ctx, &OptimizedExecutor::default(), 48, None);
    let ps = rank_ps(&scores);
    let kept = benjamini_hochberg(&ps, 0.10);
    // The kept set is dominated by planted voxels.
    if !kept.is_empty() {
        let planted = kept.iter().filter(|v| gt.informative.contains(v)).count();
        assert!(
            planted * 2 >= kept.len(),
            "FDR kept {} voxels but only {planted} planted",
            kept.len()
        );
    }
}
