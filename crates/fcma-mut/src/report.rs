//! Kill-matrix rendering: the committed `mutation-baseline.json`
//! format, its parser, and the strict delta table CI prints on drift —
//! the same shapes `fcma-audit stats --check` uses for violation
//! counts, extended to the six per-class counters.

use fcma_audit::format::json_str;

/// One class's kill counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassRow {
    /// Mutant class name.
    pub class: String,
    /// Sampled mutants of this class.
    pub total: usize,
    /// Killed by an audit pass.
    pub audit: usize,
    /// Killed by the bounded model-check attempt.
    pub mc: usize,
    /// Predicted killed by the test suite (call-graph reachability).
    pub test: usize,
    /// Surviving but triaged equivalent.
    pub triaged: usize,
    /// Surviving untriaged — gaps.
    pub surviving: usize,
}

impl ClassRow {
    /// Kill score in percent over the non-triaged sample: triaged
    /// mutants are unkillable by construction, so they shrink the
    /// denominator rather than count as misses. An all-triaged class
    /// scores 100.
    pub fn score(&self) -> u32 {
        let denom = self.total - self.triaged;
        if denom == 0 {
            return 100;
        }
        let kills = self.audit + self.mc + self.test;
        u32::try_from(kills * 100 / denom).unwrap_or(0)
    }

    /// The six counters in field order, paired with their JSON keys.
    fn fields(&self) -> [(&'static str, usize); 6] {
        [
            ("total", self.total),
            ("audit", self.audit),
            ("mc", self.mc),
            ("test", self.test),
            ("triaged", self.triaged),
            ("surviving", self.surviving),
        ]
    }
}

/// Render the matrix as deterministic pretty-printed JSON, one class
/// per line — the committed `mutation-baseline.json` that CI diffs
/// byte for byte. Rows render in the order given (enumeration order is
/// already sorted by class).
pub fn render_matrix(rows: &[ClassRow]) -> String {
    let mut out = String::from("{\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!("  {}: {{", json_str(&row.class)));
        for (j, (key, value)) in row.fields().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{key}\": {value}"));
        }
        out.push('}');
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Parse a matrix previously emitted by [`render_matrix`]. Accepts only
/// that exact shape and returns `None` on anything else, so a
/// hand-mangled baseline fails loudly instead of comparing as empty.
pub fn parse_matrix(json: &str) -> Option<Vec<ClassRow>> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" {
            continue;
        }
        let rest = line.strip_prefix('"')?;
        let (class, rest) = rest.split_once('"')?;
        let body = rest.trim_start().strip_prefix(':')?.trim_start();
        let body = body.strip_prefix('{')?.strip_suffix('}')?;
        let mut row = ClassRow {
            class: class.to_owned(),
            total: 0,
            audit: 0,
            mc: 0,
            test: 0,
            triaged: 0,
            surviving: 0,
        };
        let mut seen = 0usize;
        for field in body.split(',') {
            let (k, v) = field.split_once(':')?;
            let n: usize = v.trim().parse().ok()?;
            match k.trim().trim_matches('"') {
                "total" => row.total = n,
                "audit" => row.audit = n,
                "mc" => row.mc = n,
                "test" => row.test = n,
                "triaged" => row.triaged = n,
                "surviving" => row.surviving = n,
                _ => return None,
            }
            seen += 1;
        }
        if seen != 6 {
            return None;
        }
        out.push(row);
    }
    Some(out)
}

/// Render the per-class drift between a parsed baseline and the current
/// matrix. Classes whose counters all match are omitted; identical
/// matrices render as the empty string. Rows are sorted
/// lexicographically by class name so the table is stable across runs.
pub fn render_matrix_delta(baseline: &[ClassRow], current: &[ClassRow]) -> String {
    let cell = |b: Option<usize>, c: Option<usize>| match (b, c) {
        (Some(b), Some(c)) if b == c => b.to_string(),
        (Some(b), Some(c)) => format!("{b} \u{2192} {c}"),
        (None, Some(c)) => format!("(new) {c}"),
        (Some(b), None) => format!("{b} (gone)"),
        (None, None) => String::new(),
    };
    let mut rows: Vec<[String; 7]> = Vec::new();
    let row_cells = |b: Option<&ClassRow>, c: Option<&ClassRow>, class: &str| {
        let pick = |f: fn(&ClassRow) -> usize| cell(b.map(f), c.map(f));
        [
            class.to_owned(),
            pick(|r| r.total),
            pick(|r| r.audit),
            pick(|r| r.mc),
            pick(|r| r.test),
            pick(|r| r.triaged),
            pick(|r| r.surviving),
        ]
    };
    for c in current {
        match baseline.iter().find(|b| b.class == c.class) {
            Some(b) if b == c => {}
            b => rows.push(row_cells(b, Some(c), &c.class)),
        }
    }
    for b in baseline {
        if !current.iter().any(|c| c.class == b.class) {
            rows.push(row_cells(Some(b), None, &b.class));
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    rows.sort_by(|a, b| a[0].cmp(&b[0]));
    let header = ["class", "total", "audit", "mc", "test", "triaged", "surviving"];
    let width = |i: usize| {
        rows.iter().map(|r| r[i].chars().count()).chain([header[i].len()]).max().unwrap_or(0)
    };
    let w: Vec<usize> = (0..7).map(width).collect();
    let render_row = |cells: &[String]| {
        let mut line = format!("{:<w0$}", cells[0], w0 = w[0]);
        for (i, c) in cells.iter().enumerate().skip(1) {
            line.push_str(&format!("  {:>wi$}", c, wi = w[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|&h| h.to_owned()).collect();
    let mut out = render_row(&header_cells);
    for r in &rows {
        out.push_str(&render_row(&r[..]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ClassRow> {
        vec![
            ClassRow {
                class: "arith-swap".into(),
                total: 4,
                audit: 0,
                mc: 0,
                test: 4,
                triaged: 0,
                surviving: 0,
            },
            ClassRow {
                class: "ordering-weaken".into(),
                total: 3,
                audit: 3,
                mc: 0,
                test: 0,
                triaged: 0,
                surviving: 0,
            },
        ]
    }

    #[test]
    fn matrix_golden_and_roundtrip() {
        let got = render_matrix(&sample());
        let want = "{\n  \"arith-swap\": {\"total\": 4, \"audit\": 0, \"mc\": 0, \"test\": 4, \
                    \"triaged\": 0, \"surviving\": 0},\n  \
                    \"ordering-weaken\": {\"total\": 3, \"audit\": 3, \"mc\": 0, \"test\": 0, \
                    \"triaged\": 0, \"surviving\": 0}\n}\n";
        assert_eq!(got, want);
        assert_eq!(parse_matrix(&got).expect("own output parses"), sample());
        assert!(parse_matrix("not json").is_none());
        assert!(parse_matrix("{\n  \"a\": {\"total\": 1}\n}\n").is_none(), "all six required");
    }

    #[test]
    fn score_excludes_triaged_from_the_denominator() {
        let mut r = sample().remove(0);
        assert_eq!(r.score(), 100);
        r.test = 3;
        r.triaged = 1;
        assert_eq!(r.score(), 100, "3 kills / (4 - 1 triaged)");
        r.triaged = 0;
        r.surviving = 1;
        assert_eq!(r.score(), 75);
        let all_triaged = ClassRow {
            class: "x".into(),
            total: 2,
            audit: 0,
            mc: 0,
            test: 0,
            triaged: 2,
            surviving: 0,
        };
        assert_eq!(all_triaged.score(), 100);
    }

    #[test]
    fn delta_golden_sorted_and_empty_when_identical() {
        let base = sample();
        assert_eq!(render_matrix_delta(&base, &sample()), "");
        let mut cur = sample();
        cur[0].test = 3;
        cur[0].surviving = 1;
        cur.remove(1);
        cur.push(ClassRow {
            class: "band-shift".into(),
            total: 1,
            audit: 0,
            mc: 0,
            test: 1,
            triaged: 0,
            surviving: 0,
        });
        let got = render_matrix_delta(&base, &cur);
        // The exact column widths depend on cell contents; assert the
        // load-bearing properties instead of a brittle golden string.
        let lines: Vec<&str> = got.lines().collect();
        assert_eq!(lines.len(), 4, "{got}");
        assert!(lines[0].starts_with("class"));
        assert!(lines[1].starts_with("arith-swap"), "sorted: {got}");
        assert!(lines[2].starts_with("band-shift"), "sorted: {got}");
        assert!(lines[3].starts_with("ordering-weaken"), "sorted: {got}");
        assert!(lines[1].contains("4 \u{2192} 3"));
        assert!(lines[2].contains("(new) 1"));
        assert!(lines[3].contains("3 (gone)"));
    }
}
