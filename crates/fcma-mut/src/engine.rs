//! The classification engine: sample mutants, apply each through an
//! in-memory overlay, and run the oracles in cheapest-first order.
//!
//! Per-mutant cost is dominated by audit pass runs over the whole
//! workspace, so the engine is ordered to avoid them where it can:
//!
//! 1. the class's *expected killer passes* run first (for
//!    `ordering-weaken` that is `atomicorder` alone — one pass, early
//!    exit on a kill);
//! 2. deterministic classes then consult call-graph test reachability
//!    (computed once for the whole run);
//! 3. only mutants still unclassified pay for a full selected-pass run,
//!    catching cross-pass kills the expected set missed;
//! 4. concurrency mutants fall through to the bounded model-check
//!    attempt instead of the test oracle;
//! 5. what remains is surviving — triaged if an
//!    `// audit: equivalent(<class>)` marker covers the site.
//!
//! Everything is deterministic: sampling uses splitmix64 over
//! `(seed, mutant id)`, the overlay re-lexes exactly one file, and no
//! ambient state (time, randomness, disk) enters classification.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use fcma_audit::mutants::{enumerate, test_reachable, Mutant, MUTANT_CLASSES};
use fcma_audit::parser;
use fcma_audit::passes::PASS_NAMES;
use fcma_audit::source::SourceFile;
use fcma_audit::Workspace;

use crate::report::ClassRow;

/// Engine configuration, straight from the CLI.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Sampling seed.
    pub seed: u64,
    /// Mutants sampled per class; `0` means exhaustive.
    pub sample: usize,
    /// Audit passes excluded from every oracle run (the
    /// `--disable-pass atomicorder` demo: ordering-weaken mutants
    /// degrade from killed-by-audit to surviving).
    pub disabled_passes: Vec<String>,
    /// Restrict to these classes; `None` means all.
    pub classes: Option<Vec<String>>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { seed: 7, sample: 4, disabled_passes: Vec::new(), classes: None }
    }
}

/// How (whether) a mutant died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// An audit pass raised a violation the clean tree does not have.
    KilledByAudit {
        /// The pass that fired.
        pass: &'static str,
    },
    /// The bounded model-check attempt found a failing schedule.
    KilledByMc {
        /// What the checker saw (failure class, schedule length).
        detail: String,
    },
    /// The mutated fn is reachable from a tier-1 test via the call
    /// graph (static prediction; deterministic classes only).
    KilledByTest,
    /// Surviving, but an `// audit: equivalent(<class>)` marker at the
    /// site declares it unkillable by construction.
    Triaged,
    /// No oracle fires and no triage covers it: a real gap.
    Surviving {
        /// Why the concurrency oracles could not see it, when they ran.
        detail: String,
    },
}

impl Verdict {
    /// Short column name for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::KilledByAudit { .. } => "audit",
            Verdict::KilledByMc { .. } => "mc",
            Verdict::KilledByTest => "test",
            Verdict::Triaged => "triaged",
            Verdict::Surviving { .. } => "surviving",
        }
    }
}

/// One sampled mutant with its verdict.
#[derive(Debug, Clone)]
pub struct Classified {
    /// The mutant (site, class, patch).
    pub mutant: Mutant,
    /// What the oracles decided.
    pub verdict: Verdict,
}

/// A full engine run: the classified sample plus the per-class matrix.
#[derive(Debug)]
pub struct Analysis {
    /// Every sampled mutant, classified, in enumeration order.
    pub classified: Vec<Classified>,
    /// Per-class kill counts, one row per class present in the run.
    pub matrix: Vec<ClassRow>,
    /// Total mutants enumerated before sampling (the report names what
    /// the sample cap dropped — a capped run must not read as
    /// exhaustive).
    pub enumerated: usize,
}

/// Classes whose faults are deterministic program-semantics changes a
/// test can observe on every run. The complement (`ordering-weaken`,
/// `lock-delete`) is racy: those are never credited to tests.
const DETERMINISTIC_CLASSES: &[&str] =
    &["arith-swap", "cmp-flip", "off-by-one", "accum-reorder", "band-shift", "match-arm-delete"];

/// The audit passes expected to kill each class, tried first with
/// early exit. Classes absent here have no cheap expected killer and
/// go straight to the test oracle / full pass run.
fn expected_killers(class: &str) -> &'static [&'static str] {
    match class {
        "ordering-weaken" => &["atomicorder"],
        "lock-delete" => &["lockset", "lockorder", "blockinlock"],
        "match-arm-delete" => &["protocol"],
        _ => &[],
    }
}

/// Run the engine against the workspace at `root`.
///
/// # Errors
///
/// Returns any I/O error from workspace discovery. Contract errors in
/// DESIGN.md are the caller's job to reject (the CLI exits 2 on them
/// before calling this).
pub fn run(root: &Path, cfg: &RunConfig) -> io::Result<Analysis> {
    let ws = fcma_audit::analyze(root)?;
    Ok(run_on(&ws, cfg))
}

/// Run the engine over an already-built workspace (fixture tests).
pub fn run_on(ws: &Workspace, cfg: &RunConfig) -> Analysis {
    let selected = selected_passes(&cfg.disabled_passes);
    let baseline = violation_keys(&ws.run_selected(&selected));
    let all = enumerate(ws);
    let enumerated = all.len();
    let sample = sample_mutants(all, cfg);
    // Test reachability once for the run, only if any sampled mutant
    // can use it.
    let reachable =
        sample.iter().any(|m| DETERMINISTIC_CLASSES.contains(&m.class)).then(|| test_reachable(ws));

    let mut classified = Vec::new();
    for m in sample {
        let verdict = classify(ws, &m, &selected, &baseline, reachable.as_ref());
        classified.push(Classified { mutant: m, verdict });
    }
    let matrix = matrix_of(&classified);
    Analysis { classified, matrix, enumerated }
}

/// All pass names minus the disabled set.
fn selected_passes(disabled_passes: &[String]) -> Vec<&'static str> {
    PASS_NAMES.iter().copied().filter(|p| !disabled_passes.iter().any(|d| d == p)).collect()
}

/// Violations as set keys; mutations preserve line counts, so baseline
/// and overlay keys are directly comparable.
fn violation_keys(
    violations: &[fcma_audit::Violation],
) -> BTreeSet<(String, usize, &'static str, String)> {
    violations.iter().map(|v| (v.file.clone(), v.line, v.pass, v.message.clone())).collect()
}

/// Deterministic per-class sampling: order every class's mutants by
/// splitmix64(seed, id) and keep the first `sample` (all when 0).
fn sample_mutants(all: Vec<Mutant>, cfg: &RunConfig) -> Vec<Mutant> {
    let wanted = |class: &str| cfg.classes.as_ref().is_none_or(|cs| cs.iter().any(|c| c == class));
    let mut out = Vec::new();
    for &class in MUTANT_CLASSES {
        if !wanted(class) {
            continue;
        }
        let mut of_class: Vec<&Mutant> = all.iter().filter(|m| m.class == class).collect();
        if cfg.sample > 0 {
            of_class.sort_by_key(|m| splitmix64(cfg.seed ^ fxhash(&m.id())));
            of_class.truncate(cfg.sample);
        }
        out.extend(of_class.into_iter().cloned());
    }
    // Back to enumeration order for stable reports.
    out.sort_by(|a, b| {
        (a.class, &a.rel_path, a.line, a.col).cmp(&(b.class, &b.rel_path, b.line, b.col))
    });
    out
}

/// splitmix64: the standard 64-bit finalizer, deterministic sampling
/// without pulling in a RNG crate.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the mutant id, mixing the site into the sample key.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Classify one mutant: expected audit killers, then the per-class
/// second oracle (test prediction or model check), then the full pass
/// set, then triage.
fn classify(
    ws: &Workspace,
    m: &Mutant,
    selected: &[&'static str],
    baseline: &BTreeSet<(String, usize, &'static str, String)>,
    reachable: Option<&BTreeSet<(usize, usize)>>,
) -> Verdict {
    let expected: Vec<&'static str> =
        expected_killers(m.class).iter().copied().filter(|p| selected.contains(p)).collect();
    // The overlay (full clone + one re-lex) is only worth building when
    // a pass run will actually consult it.
    let mut overlay: Option<Workspace> = None;
    let overlay_of = |overlay: &mut Option<Workspace>| -> Workspace {
        overlay.take().unwrap_or_else(|| overlay_workspace(ws, m))
    };
    if !expected.is_empty() {
        let ov = overlay_of(&mut overlay);
        if let Some(pass) = audit_kill(&ov, &expected, baseline) {
            return Verdict::KilledByAudit { pass };
        }
        overlay = Some(ov);
    }
    let deterministic = DETERMINISTIC_CLASSES.contains(&m.class);
    if deterministic && is_test_reachable(ws, m, reachable) {
        return Verdict::KilledByTest;
    }
    // Full selected set: cross-pass kills the expected set missed
    // (e.g. an off-by-one on a loop head that changes what panicpath
    // sees). Skip re-running the passes already tried.
    let rest: Vec<&'static str> =
        selected.iter().copied().filter(|p| !expected.contains(p)).collect();
    let ov = overlay_of(&mut overlay);
    if let Some(pass) = audit_kill(&ov, &rest, baseline) {
        return Verdict::KilledByAudit { pass };
    }
    if !deterministic {
        let attempt = mc_attempt(m);
        match attempt {
            Some(a) if a.killed => return Verdict::KilledByMc { detail: a.detail },
            Some(a) => {
                return triage_or_survive(ws, m, a.detail);
            }
            None => {}
        }
    }
    triage_or_survive(ws, m, String::from("no oracle fires"))
}

/// Surviving → triaged when an equivalent marker covers the site.
fn triage_or_survive(ws: &Workspace, m: &Mutant, detail: String) -> Verdict {
    if ws.files[m.file].equivalent_marker(m.class, m.line) {
        Verdict::Triaged
    } else {
        Verdict::Surviving { detail }
    }
}

/// Run `passes` over the overlay; the first violation absent from the
/// baseline names the killing pass.
fn audit_kill(
    overlay: &Workspace,
    passes: &[&'static str],
    baseline: &BTreeSet<(String, usize, &'static str, String)>,
) -> Option<&'static str> {
    if passes.is_empty() {
        return None;
    }
    let violations = overlay.run_selected(passes);
    violations
        .iter()
        .find(|v| !baseline.contains(&(v.file.clone(), v.line, v.pass, v.message.clone())))
        .map(|v| v.pass)
}

/// The in-memory overlay: clone the workspace views, re-lex and
/// re-parse exactly the mutated file with its patched line.
fn overlay_workspace(ws: &Workspace, m: &Mutant) -> Workspace {
    let mut files = ws.files.clone();
    let mut parsed = ws.parsed.clone();
    let f = &ws.files[m.file];
    let mut raw: Vec<String> = f.scan.raw_lines.clone();
    raw[m.line] = m.patched.clone();
    let mut source = raw.join("\n");
    source.push('\n');
    let patched = SourceFile::new(&f.rel_path, f.crate_name.as_deref(), f.role, &source);
    parsed[m.file] = parser::parse(&patched.scan);
    files[m.file] = patched;
    Workspace::with_parsed(
        files,
        parsed,
        ws.crates.clone(),
        ws.contracts.clone(),
        ws.taxonomy.clone(),
    )
}

/// Is the mutant's enclosing fn reachable from any test?
fn is_test_reachable(
    ws: &Workspace,
    m: &Mutant,
    reachable: Option<&BTreeSet<(usize, usize)>>,
) -> bool {
    let Some(reachable) = reachable else {
        return false;
    };
    let Some(name) = m.fn_name.as_deref() else {
        return false;
    };
    ws.parsed[m.file]
        .fns
        .iter()
        .enumerate()
        .any(|(idx, f)| f.name == name && reachable.contains(&(m.file, idx)))
}

/// The bounded model-check attempt for a concurrency mutant: the
/// protocol model that corresponds to the mutant's shape.
fn mc_attempt(m: &Mutant) -> Option<fcma_mc::mutants::KillAttempt> {
    use fcma_mc::mutants::{attempt, ProtocolMutant};
    let cfg = fcma_mc::Config { max_preemptions: 1, max_executions: 256, ..Default::default() };
    let shape = match m.class {
        "lock-delete" => ProtocolMutant::LockElision,
        "ordering-weaken" if m.description.contains("store") => {
            ProtocolMutant::SeqlockRelaxedPublish
        }
        "ordering-weaken" => ProtocolMutant::SeqlockRelaxedReaderCheck,
        _ => return None,
    };
    // The checker *hunts* for assertion panics on its model threads;
    // letting the default hook spray their backtraces over the report
    // would bury it. The checker captures the payloads itself.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = attempt(shape, &cfg);
    std::panic::set_hook(prev);
    Some(result)
}

/// Collapse classifications into per-class rows.
fn matrix_of(classified: &[Classified]) -> Vec<ClassRow> {
    let mut rows: Vec<ClassRow> = Vec::new();
    for &class in MUTANT_CLASSES {
        let of_class: Vec<&Classified> =
            classified.iter().filter(|c| c.mutant.class == class).collect();
        if of_class.is_empty() {
            continue;
        }
        let count = |label: &str| of_class.iter().filter(|c| c.verdict.label() == label).count();
        rows.push(ClassRow {
            class: class.to_owned(),
            total: of_class.len(),
            audit: count("audit"),
            mc: count("mc"),
            test: count("test"),
            triaged: count("triaged"),
            surviving: count("surviving"),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(7), splitmix64(7));
        assert_ne!(splitmix64(7), splitmix64(8));
        assert_ne!(fxhash("a:b:1:2"), fxhash("a:b:1:3"));
    }

    #[test]
    fn selected_passes_drops_disabled() {
        let sel = selected_passes(&[String::from("atomicorder")]);
        assert!(!sel.contains(&"atomicorder"));
        assert_eq!(sel.len(), PASS_NAMES.len() - 1);
        assert_eq!(selected_passes(&[]).len(), PASS_NAMES.len());
    }

    #[test]
    fn deterministic_classes_complement_is_concurrency() {
        for &c in MUTANT_CLASSES {
            let det = DETERMINISTIC_CLASSES.contains(&c);
            let conc = matches!(c, "ordering-weaken" | "lock-delete");
            assert!(det != conc, "{c} must be exactly one of deterministic/concurrency");
        }
    }
}
