//! fcma-mut: mutation analysis proving the audit passes, the model
//! checker, and the tier-1 tests are load-bearing.
//!
//! A static-analysis suite that never fails is indistinguishable from
//! one that checks nothing. This crate turns that doubt into a
//! measurement: it seeds typed semantic faults (mutants) into the
//! workspace through [`fcma_audit::mutants`]'s enumeration, applies
//! each one via an **in-memory source overlay** (no disk churn, no
//! rebuilds), and asks the oracles whether they notice:
//!
//! - **killed-by-audit** — one of the 20 `fcma-audit` passes raises a
//!   violation against the mutated tree that the clean tree does not
//!   have;
//! - **killed-by-mc** — for concurrency mutants, a bounded
//!   model-checking attempt ([`fcma_mc::mutants`]) finds a failing
//!   schedule in a small model of the mutated protocol;
//! - **killed-by-test** — for deterministic mutants, the mutated
//!   function is reachable from a tier-1 test through the conservative
//!   call graph, so a targeted `cargo test` subset exercises the fault.
//!   This is a *static prediction*, not a per-mutant test run: the
//!   engine's in-memory overlay never touches the build tree, and the
//!   call-graph reachability it uses is the same analysis `panicpath`
//!   trusts. Concurrency mutants are **never** credited to tests — a
//!   deterministic test observes a race only by luck;
//! - **surviving** — no oracle fires. A surviving mutant is either
//!   triaged as semantically equivalent with an
//!   `// audit: equivalent(<class>) — <reason>` marker at its site
//!   (tracked for staleness by the `unusedallow` pass, exactly like
//!   disjoint markers), or it is a named gap the kill-matrix report
//!   surfaces and CI fails on.
//!
//! The per-class kill matrix is compared against a committed
//! `mutation-baseline.json` and DESIGN.md §17's "Mutation contracts"
//! table (minimum kill score per class), mirroring how
//! `fcma-audit stats --check` pins the violation counts.

pub mod engine;
pub mod report;

pub use engine::{run, Analysis, Classified, RunConfig, Verdict};
pub use report::{parse_matrix, render_matrix, render_matrix_delta, ClassRow};
