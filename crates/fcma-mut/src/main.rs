//! Command-line driver for the mutation-analysis engine.
//!
//! Usage: `fcma-mut run [--root DIR] [--seed N] [--sample K]
//! [--classes a,b,c] [--disable-pass P] [--check FILE]
//! [--format human|json]`.
//!
//! With no `--root`, the workspace root is resolved from the location
//! of this crate at compile time (two levels above its manifest), so
//! `cargo run -p fcma-mut -- run` works from any directory inside the
//! workspace.
//!
//! Exit codes: 0 — every sampled mutant is killed or triaged, the
//! matrix matches the baseline (when `--check` is given), and every
//! DESIGN.md §17 minimum score holds; 1 — untriaged survivors, baseline
//! drift, or a §17 score violation; 2 — usage error, I/O failure, or
//! malformed DESIGN.md contract rows.

use std::path::PathBuf;
use std::process::ExitCode;

use fcma_audit::format::json_str;
use fcma_audit::mutants::MUTANT_CLASSES;
use fcma_audit::passes::PASS_NAMES;
use fcma_audit::Format;
use fcma_mut::engine::{run_on, RunConfig, Verdict};
use fcma_mut::{parse_matrix, render_matrix, render_matrix_delta};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut command: Option<String> = None;
    let mut cfg = RunConfig::default();
    let mut baseline: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root requires a directory argument"),
            },
            "--format" => match it.next().and_then(|v| Format::parse(v)) {
                Some(f) => format = f,
                None => return usage_error("--format requires `human` or `json`"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seed = n,
                None => return usage_error("--seed requires an integer argument"),
            },
            "--sample" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.sample = n,
                None => return usage_error("--sample requires an integer (0 = exhaustive)"),
            },
            "--check" => match it.next() {
                Some(path) => baseline = Some(PathBuf::from(path)),
                None => return usage_error("--check requires a baseline file argument"),
            },
            "--disable-pass" => match it.next() {
                Some(p) if PASS_NAMES.contains(&p.as_str()) => cfg.disabled_passes.push(p.clone()),
                Some(p) => {
                    eprintln!("fcma-mut: unknown pass `{p}` (known: {})", PASS_NAMES.join(", "));
                    return ExitCode::from(2);
                }
                None => return usage_error("--disable-pass requires a pass name"),
            },
            "--classes" => match it.next() {
                Some(list) => {
                    let classes: Vec<String> = list.split(',').map(str::to_owned).collect();
                    for c in &classes {
                        if !MUTANT_CLASSES.contains(&c.as_str()) {
                            eprintln!(
                                "fcma-mut: unknown mutant class `{c}` (known: {})",
                                MUTANT_CLASSES.join(", ")
                            );
                            return ExitCode::from(2);
                        }
                    }
                    cfg.classes = Some(classes);
                }
                None => return usage_error("--classes requires a comma-separated class list"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if command.is_none() => command = Some(other.to_owned()),
            other => {
                eprintln!("fcma-mut: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match command.as_deref() {
        Some("run") => {}
        Some(other) => {
            eprintln!("fcma-mut: unknown command `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
        None => {
            eprintln!("fcma-mut: missing command\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
    let ws = match fcma_audit::analyze(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("fcma-mut: error: {e}");
            return ExitCode::from(2);
        }
    };
    if !ws.contracts.errors.is_empty() {
        for e in &ws.contracts.errors {
            eprintln!("fcma-mut: {e}");
        }
        eprintln!(
            "fcma-mut: {} malformed DESIGN.md contract row(s); fix the document",
            ws.contracts.errors.len()
        );
        return ExitCode::from(2);
    }

    let analysis = run_on(&ws, &cfg);
    let mut failed = false;

    // Per-mutant report: survivors always; the full classification in
    // JSON mode (machine consumers get the whole kill matrix).
    for c in &analysis.classified {
        let m = &c.mutant;
        match format {
            Format::Json => println!(
                "{{\"id\":{},\"class\":{},\"file\":{},\"line\":{},\"verdict\":{},\
                 \"detail\":{}}}",
                json_str(&m.id()),
                json_str(m.class),
                json_str(&m.rel_path),
                m.line + 1,
                json_str(c.verdict.label()),
                json_str(&verdict_detail(&c.verdict))
            ),
            Format::Human => {
                if let Verdict::Surviving { detail } = &c.verdict {
                    println!(
                        "{}:{}: surviving: [{}] {} ({detail})",
                        m.rel_path,
                        m.line + 1,
                        m.class,
                        m.description
                    );
                    failed = true;
                }
            }
        }
        if matches!(c.verdict, Verdict::Surviving { .. }) {
            failed = true;
        }
    }

    let current = &analysis.matrix;
    let sampled: usize = current.iter().map(|r| r.total).sum();
    if format == Format::Human {
        println!(
            "fcma-mut: {} mutant(s) sampled of {} enumerated (seed {}, {} per class{})",
            sampled,
            analysis.enumerated,
            cfg.seed,
            if cfg.sample == 0 { "all".to_owned() } else { cfg.sample.to_string() },
            if cfg.disabled_passes.is_empty() {
                String::new()
            } else {
                format!(", disabled: {}", cfg.disabled_passes.join(","))
            }
        );
        print!("{}", render_matrix(current));
    }

    // DESIGN.md §17 minimum kill scores, for the classes this run
    // sampled.
    if let Some(rows) = ws.contracts.mutation.as_ref() {
        for row in rows {
            let Some(cur) = current.iter().find(|c| c.class == row.class) else {
                continue;
            };
            if cur.score() < row.min_score {
                eprintln!(
                    "fcma-mut: class `{}` scores {}% below the DESIGN.md §17 minimum of {}%",
                    row.class,
                    cur.score(),
                    row.min_score
                );
                failed = true;
            }
        }
    }

    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fcma-mut: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let Some(base) = parse_matrix(&text) else {
            eprintln!(
                "fcma-mut: baseline {} is not a kill-matrix document (regenerate it with \
                 `fcma-mut run --format json > {}`... see README)",
                path.display(),
                path.display()
            );
            return ExitCode::from(2);
        };
        let delta = render_matrix_delta(&base, current);
        if delta.is_empty() {
            println!("fcma-mut: kill matrix matches {}", path.display());
        } else {
            println!("fcma-mut: kill matrix drifts against {}:", path.display());
            print!("{delta}");
            println!(
                "regenerate with `cargo run -p fcma-mut -- run --seed {} --sample {} | tail -n +2`",
                cfg.seed, cfg.sample
            );
            failed = true;
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        if format == Format::Human {
            println!("fcma-mut: every sampled mutant killed or triaged");
        }
        ExitCode::SUCCESS
    }
}

/// The verdict's detail string for JSON output.
fn verdict_detail(v: &Verdict) -> String {
    match v {
        Verdict::KilledByAudit { pass } => format!("pass {pass}"),
        Verdict::KilledByMc { detail } | Verdict::Surviving { detail } => detail.clone(),
        Verdict::KilledByTest => String::from("call-graph reachable from a tier-1 test"),
        Verdict::Triaged => String::from("audit: equivalent marker at site"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("fcma-mut: {msg}");
    ExitCode::from(2)
}

const USAGE: &str = "usage: fcma-mut run [--root DIR] [--seed N] [--sample K] [--classes a,b,c]
                    [--disable-pass P] [--check FILE] [--format human|json]

Seeds typed semantic mutants through the fcma-audit model, applies each
via an in-memory overlay, and classifies it: killed-by-audit (a pass
fires), killed-by-mc (bounded model check finds a failing schedule),
killed-by-test (call-graph reachable from a tier-1 test), triaged
(`// audit: equivalent(<class>) — <reason>` marker at the site), or
surviving (a gap; exits 1).

options:
  --seed N          sampling seed (default 7)
  --sample K        mutants sampled per class; 0 = exhaustive (default 4)
  --classes a,b,c   restrict to the named mutant classes
  --disable-pass P  exclude an audit pass from the oracle set (repeatable);
                    `--disable-pass atomicorder` demonstrates the
                    ordering-weaken class degrading to surviving
  --check FILE      compare the kill matrix against FILE (the committed
                    mutation-baseline.json); drift exits 1 with a delta
                    table sorted by class
  --format human    survivors + matrix + verdict summary (default)
  --format json     one JSON object per sampled mutant

mutant classes:
  arith-swap        binary arithmetic operator swapped (`+`↔`-`, …)
  cmp-flip          comparison flipped (`<`↔`<=`, `==`↔`!=`)
  off-by-one        for-loop range widened (`a..b` → `a..=b`)
  accum-reorder     float-accumulating loop reversed (summation order)
  ordering-weaken   `Ordering::*` weakened to `Relaxed` where DESIGN.md
                    §16 does not permit it
  lock-delete       a declared `.lock()` acquisition removed
  band-shift        `split_at_mut` band boundary moved by one
  match-arm-delete  a driver protocol match arm retargeted off its variant

DESIGN.md §17 (\"Mutation contracts\") declares the expected killer and
minimum kill score per class; scoring below the minimum exits 1.";
