//! On-disk fixture workspace for the classification engine: one crate
//! with a test-covered arithmetic site, a triaged-equivalent comparison
//! site, and an uncovered untriaged site, asserting the engine lands
//! each in the right kill-matrix column — killed-by-test via call-graph
//! reachability, triaged via the `// audit: equivalent(...)` marker,
//! and surviving for the genuine gap.

use std::fs;
use std::path::PathBuf;

use fcma_mut::engine::{run, RunConfig, Verdict};

/// A scratch workspace under the system temp dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("fcma-mut-fixture-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("create fixture dir");
        fs::write(&path, contents).expect("write fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn fixture(tag: &str) -> Fixture {
    let fx = Fixture::new(tag);
    fx.write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    fx.write(
        "DESIGN.md",
        "# Fixture design\n\n\
         ## 12. Architecture contracts\n\n\
         | Crate | Allowed direct deps |\n\
         |---|---|\n\
         | `fcma-alpha` | (none) |\n",
    );
    fx.write(
        "crates/fcma-alpha/Cargo.toml",
        "[package]\nname = \"fcma-alpha\"\n\n[dependencies]\n",
    );
    fx.write(
        "crates/fcma-alpha/src/lib.rs",
        "//! Fixture: a test-killed site, a triaged site, a surviving site.\n\
         \n\
         /// Covered: the unit test below reaches it.\n\
         pub fn covered(a: usize, b: usize) -> usize {\n\
             a + b\n\
         }\n\
         \n\
         /// Uncovered, but its comparison is declared equivalent.\n\
         pub fn uncovered(x: usize) -> bool {\n\
             // audit: equivalent(cmp-flip) — fixture: site declared equivalent to exercise triage\n\
             x < 1\n\
         }\n\
         \n\
         /// Uncovered and untriaged: a genuine gap.\n\
         pub fn gap(a: usize, b: usize) -> usize {\n\
             a * b\n\
         }\n\
         \n\
         #[cfg(test)]\n\
         mod tests {\n\
             #[test]\n\
             fn covers() {\n\
                 assert_eq!(super::covered(1, 2), 3);\n\
             }\n\
         }\n",
    );
    fx
}

#[test]
fn engine_classifies_test_kill_triage_and_survivor() {
    let fx = fixture("classify");
    let cfg = RunConfig { sample: 0, ..RunConfig::default() };
    let analysis = run(&fx.root, &cfg).expect("fixture analyzes");

    let verdict_in = |fn_name: &str| {
        let hits: Vec<&Verdict> = analysis
            .classified
            .iter()
            .filter(|c| c.mutant.fn_name.as_deref() == Some(fn_name))
            .map(|c| &c.verdict)
            .collect();
        assert!(!hits.is_empty(), "no mutant enumerated in `{fn_name}`");
        hits
    };
    for v in verdict_in("covered") {
        assert_eq!(*v, Verdict::KilledByTest, "covered() is call-graph reachable");
    }
    for v in verdict_in("uncovered") {
        assert_eq!(*v, Verdict::Triaged, "the equivalent marker covers the site");
    }
    for v in verdict_in("gap") {
        assert!(matches!(v, Verdict::Surviving { .. }), "gap() has no oracle: {v:?}");
    }

    // The matrix reflects the same story: cmp-flip is all-triaged (and
    // scores 100 by construction), arith-swap carries the survivor.
    let row =
        |class: &str| analysis.matrix.iter().find(|r| r.class == class).expect("class sampled");
    let cmp = row("cmp-flip");
    assert_eq!((cmp.triaged, cmp.surviving, cmp.score()), (1, 0, 100));
    let arith = row("arith-swap");
    assert_eq!(arith.test, 1, "the covered `+` site");
    assert!(arith.surviving >= 1, "the gap `*` site survives: {arith:?}");
}

#[test]
fn runs_are_deterministic() {
    let fx = fixture("determinism");
    let cfg = RunConfig::default();
    let a = run(&fx.root, &cfg).expect("first run");
    let b = run(&fx.root, &cfg).expect("second run");
    let ids = |x: &fcma_mut::Analysis| -> Vec<String> {
        x.classified.iter().map(|c| c.mutant.id()).collect()
    };
    assert_eq!(ids(&a), ids(&b), "same seed, same sample");
    assert_eq!(a.matrix, b.matrix, "same matrix");
    assert_eq!(a.enumerated, b.enumerated);
}
