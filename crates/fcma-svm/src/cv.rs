//! Leave-one-subject-out cross validation over a precomputed kernel.
//!
//! FCMA's stage 3 assigns each voxel a classification accuracy by
//! cross-validating a linear SVM across subjects: every fold holds out one
//! subject's epochs, trains on the rest, and tests on the held-out epochs
//! (paper §3.1). Because the full `M × M` kernel matrix is precomputed,
//! each fold only indexes sub-blocks of it — no feature-space work at all.

use crate::kernel::KernelMatrix;
use crate::phisvm::{train_optimized_libsvm, train_phisvm};
use crate::reference::{decision as ref_decision, train_precomputed, LibSvmParams};
use crate::smo::SmoParams;
use fcma_sync::pool::Pool;
use fcma_trace::{counter, span};

/// Which solver runs the folds — the three rows of the paper's Table 8.
#[derive(Debug, Clone, Copy)]
pub enum SolverKind {
    /// The LibSVM replica (sparse nodes, `f64`, row cache).
    LibSvm(LibSvmParams),
    /// Dense `f32` with LibSVM's fixed second-order selection.
    OptimizedLibSvm(SmoParams),
    /// Dense `f32` with adaptive selection.
    PhiSvm(SmoParams),
}

impl Default for SolverKind {
    fn default() -> Self {
        SolverKind::PhiSvm(SmoParams::default())
    }
}

/// Outcome of a full leave-one-subject-out run.
#[derive(Debug, Clone)]
// audit: allow(deadpub) — named only structurally outside the crate, via `loso_cross_validate`'s return value
pub struct CvResult {
    /// Correct predictions across all folds / total held-out samples.
    pub accuracy: f64,
    /// Per-fold accuracy, indexed by held-out subject.
    pub fold_accuracies: Vec<f64>,
    /// Total SMO iterations across folds (a convergence-cost proxy).
    pub total_iterations: usize,
}

/// Run leave-one-subject-out cross validation.
///
/// `y[t]` is the ±1 target of sample `t`; `subjects[t]` its owning subject
/// (0-based contiguous). Samples are global kernel indices `0..kernel.n()`.
///
/// # Panics
/// Panics on length mismatches or if any fold would see a single class.
pub fn loso_cross_validate(
    kernel: &KernelMatrix,
    y: &[f32],
    subjects: &[usize],
    solver: &SolverKind,
) -> CvResult {
    let m = kernel.n();
    assert_eq!(y.len(), m, "cv: targets length != kernel size");
    assert_eq!(subjects.len(), m, "cv: subjects length != kernel size");
    let n_subjects = subjects.iter().copied().max().map_or(0, |s| s + 1);
    assert!(n_subjects >= 2, "cv: need at least two subjects for LOSO");
    let _span = span!("svm.cv.loso", folds = n_subjects, samples = m);
    counter!("svm.cv.folds", n_subjects);

    let folds: Vec<FoldResult> =
        (0..n_subjects).map(|held| run_fold(kernel, y, subjects, held, solver)).collect();
    reduce_folds(&folds)
}

/// Fold-parallel leave-one-subject-out cross validation.
///
/// Each fold (one held-out subject) becomes one pool task; the fold
/// results are reduced in held-subject order, so the outcome is
/// bit-identical to [`loso_cross_validate`] at every thread count and
/// steal seed (DESIGN.md §15) — each fold's training run is a serial
/// solve over its own sub-problem, and the cross-fold reduction is pure
/// integer accumulation in a fixed order.
///
/// # Panics
/// Panics on length mismatches or if any fold would see a single class.
pub fn loso_cross_validate_pool(
    kernel: &KernelMatrix,
    y: &[f32],
    subjects: &[usize],
    solver: &SolverKind,
    pool: &Pool,
) -> CvResult {
    let m = kernel.n();
    assert_eq!(y.len(), m, "cv: targets length != kernel size");
    assert_eq!(subjects.len(), m, "cv: subjects length != kernel size");
    let n_subjects = subjects.iter().copied().max().map_or(0, |s| s + 1);
    assert!(n_subjects >= 2, "cv: need at least two subjects for LOSO");
    let _span = span!("svm.cv.loso", folds = n_subjects, samples = m);
    counter!("svm.cv.folds", n_subjects);

    let folds = pool
        .run((0..n_subjects).collect(), |_idx, held| run_fold(kernel, y, subjects, held, solver));
    reduce_folds(&folds)
}

/// One fold's outcome: (correct predictions, held-out samples, solver
/// iterations).
type FoldResult = (usize, usize, usize);

/// Train on everything except subject `held`, test on `held`'s epochs.
fn run_fold(
    kernel: &KernelMatrix,
    y: &[f32],
    subjects: &[usize],
    held: usize,
    solver: &SolverKind,
) -> FoldResult {
    let m = kernel.n();
    let train_idx: Vec<usize> = (0..m).filter(|&t| subjects[t] != held).collect();
    let test_idx: Vec<usize> = (0..m).filter(|&t| subjects[t] == held).collect();
    assert!(!test_idx.is_empty(), "cv: subject {held} has no samples");
    let train_y: Vec<f32> = train_idx.iter().map(|&t| y[t]).collect();

    let mut fold_correct = 0usize;
    let iterations;
    match solver {
        SolverKind::LibSvm(p) => {
            let r = train_precomputed(kernel, &train_idx, &train_y, p);
            iterations = r.iterations;
            for &t in &test_idx {
                let d = ref_decision(kernel, &r, &train_idx, &train_y, t);
                let pred = if d >= 0.0 { 1.0 } else { -1.0 };
                if pred == y[t] {
                    fold_correct += 1;
                }
            }
        }
        SolverKind::OptimizedLibSvm(p) => {
            let model = train_optimized_libsvm(kernel, &train_idx, &train_y, p);
            iterations = model.iterations;
            for &t in &test_idx {
                if model.predict(kernel, t) == y[t] {
                    fold_correct += 1;
                }
            }
        }
        SolverKind::PhiSvm(p) => {
            let model = train_phisvm(kernel, &train_idx, &train_y, p);
            iterations = model.iterations;
            for &t in &test_idx {
                if model.predict(kernel, t) == y[t] {
                    fold_correct += 1;
                }
            }
        }
    }
    (fold_correct, test_idx.len(), iterations)
}

/// Fixed-order reduction over fold results (fold index = held subject).
fn reduce_folds(folds: &[FoldResult]) -> CvResult {
    let mut fold_accuracies = Vec::with_capacity(folds.len());
    let mut total_iterations = 0usize;
    let mut correct = 0usize;
    let mut total = 0usize;
    for &(fold_correct, test_len, iterations) in folds {
        fold_accuracies.push(fold_correct as f64 / test_len as f64);
        correct += fold_correct;
        total += test_len;
        total_iterations += iterations;
    }
    CvResult { accuracy: correct as f64 / total as f64, fold_accuracies, total_iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_linalg::Mat;

    /// 3 subjects × 6 samples in 2-D; class encoded in the first
    /// coordinate with mild per-subject jitter → LOSO should be ~perfect.
    fn separable_problem() -> (KernelMatrix, Vec<f32>, Vec<usize>) {
        let mut pts = Vec::new();
        let mut y = Vec::new();
        let mut subjects = Vec::new();
        for s in 0..3usize {
            for e in 0..6usize {
                let side = if e % 2 == 0 { 1.0f32 } else { -1.0 };
                let jitter = ((s * 7 + e * 3) % 5) as f32 * 0.08 - 0.16;
                pts.push((side * 1.2 + jitter, (e as f32 * 0.9 + s as f32).sin() * 0.4));
                y.push(side);
                subjects.push(s);
            }
        }
        let l = pts.len();
        let k = KernelMatrix::from_mat(Mat::from_fn(l, l, |r, c| {
            pts[r].0 * pts[c].0 + pts[r].1 * pts[c].1
        }));
        (k, y, subjects)
    }

    #[test]
    fn all_solvers_classify_separable_problem() {
        let (k, y, subjects) = separable_problem();
        for solver in [
            SolverKind::LibSvm(LibSvmParams::default()),
            SolverKind::OptimizedLibSvm(SmoParams::default()),
            SolverKind::PhiSvm(SmoParams::default()),
        ] {
            let r = loso_cross_validate(&k, &y, &subjects, &solver);
            assert!(r.accuracy >= 0.95, "{solver:?}: accuracy {}", r.accuracy);
            assert_eq!(r.fold_accuracies.len(), 3);
        }
    }

    #[test]
    fn solvers_agree_per_fold() {
        let (k, y, subjects) = separable_problem();
        let a =
            loso_cross_validate(&k, &y, &subjects, &SolverKind::LibSvm(LibSvmParams::default()));
        let b = loso_cross_validate(&k, &y, &subjects, &SolverKind::PhiSvm(SmoParams::default()));
        for (fa, fb) in a.fold_accuracies.iter().zip(&b.fold_accuracies) {
            assert!((fa - fb).abs() < 0.2, "fold accuracy divergence: {fa} vs {fb}");
        }
    }

    #[test]
    fn fold_parallel_bit_identical_at_every_thread_count() {
        let (k, y, subjects) = separable_problem();
        for solver in [
            SolverKind::LibSvm(LibSvmParams::default()),
            SolverKind::OptimizedLibSvm(SmoParams::default()),
            SolverKind::PhiSvm(SmoParams::default()),
        ] {
            let serial = loso_cross_validate(&k, &y, &subjects, &solver);
            for threads in [1usize, 2, 3, 8] {
                let par = loso_cross_validate_pool(&k, &y, &subjects, &solver, &Pool::new(threads));
                assert_eq!(par.accuracy.to_bits(), serial.accuracy.to_bits(), "{solver:?}");
                assert_eq!(par.total_iterations, serial.total_iterations);
                assert_eq!(par.fold_accuracies.len(), serial.fold_accuracies.len());
                for (p, s) in par.fold_accuracies.iter().zip(&serial.fold_accuracies) {
                    assert_eq!(p.to_bits(), s.to_bits(), "{solver:?} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn random_labels_near_chance() {
        // Destroy the class structure: labels alternate but the geometry
        // is label-independent.
        let l = 24;
        let pts: Vec<(f32, f32)> = (0..l)
            .map(|i| ((i as f32 * 2.39).sin() * 2.0, (i as f32 * 1.71).cos() * 2.0))
            .collect();
        let y: Vec<f32> = (0..l).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let subjects: Vec<usize> = (0..l).map(|i| i / 6).collect();
        let k = KernelMatrix::from_mat(Mat::from_fn(l, l, |r, c| {
            pts[r].0 * pts[c].0 + pts[r].1 * pts[c].1
        }));
        let r = loso_cross_validate(&k, &y, &subjects, &SolverKind::default());
        assert!(r.accuracy < 0.8, "uninformative data scored {}", r.accuracy);
    }

    #[test]
    #[should_panic(expected = "two subjects")]
    fn rejects_single_subject() {
        let (k, y, _) = separable_problem();
        let subjects = vec![0usize; y.len()];
        let _ = loso_cross_validate(&k, &y, &subjects, &SolverKind::default());
    }
}
