//! Platt scaling: calibrated class probabilities from SVM decision
//! values.
//!
//! Closed-loop neurofeedback (the paper's target application) shows the
//! subject a *graded* signal, not a binary label, so the feedback
//! classifier needs `P(condition A | epoch)` rather than `sign(f)`. Platt
//! scaling fits a sigmoid `P(y=1|f) = 1 / (1 + exp(A·f + B))` to
//! (decision value, label) pairs by regularized maximum likelihood —
//! the same `-b` probability machinery LibSVM ships. The fit uses the
//! Lin–Weng–Keerthi Newton iteration with backtracking, the numerically
//! robust formulation from LibSVM's `sigmoid_train`.

/// A fitted sigmoid calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlattScaling {
    /// Slope (negative for a well-oriented classifier: larger decision
    /// values → higher probability of the positive class).
    pub a: f64,
    /// Offset.
    pub b: f64,
}

impl PlattScaling {
    /// Fit to decision values `f` and targets `y` (±1).
    ///
    /// # Panics
    /// Panics on length mismatch, empty input, or single-class input.
    pub fn fit(decisions: &[f64], y: &[f32]) -> Self {
        assert_eq!(decisions.len(), y.len(), "platt: length mismatch");
        assert!(!decisions.is_empty(), "platt: empty input");
        let prior1 = y.iter().filter(|&&v| v > 0.0).count() as f64;
        let prior0 = y.len() as f64 - prior1;
        assert!(prior0 > 0.0 && prior1 > 0.0, "platt: need both classes");

        // Soft targets with the Bayesian +1/+2 correction (Platt 1999).
        let hi = (prior1 + 1.0) / (prior1 + 2.0);
        let lo = 1.0 / (prior0 + 2.0);
        let t: Vec<f64> = y.iter().map(|&v| if v > 0.0 { hi } else { lo }).collect();

        // Newton's method with backtracking on the regularized NLL.
        let mut a = 0.0f64;
        let mut b = ((prior0 + 1.0) / (prior1 + 1.0)).ln();
        let min_step = 1e-10;
        let sigma = 1e-12; // Hessian regularizer
        let mut fval = nll(decisions, &t, a, b);
        for _ in 0..100 {
            // Gradient and Hessian.
            let (mut h11, mut h22, mut h21) = (sigma, sigma, 0.0f64);
            let (mut g1, mut g2) = (0.0f64, 0.0f64);
            for (&f, &ti) in decisions.iter().zip(&t) {
                let fab = f * a + b;
                let (p, q) = pq(fab);
                let d2 = p * q;
                h11 += f * f * d2;
                h22 += d2;
                h21 += f * d2;
                let d1 = ti - p;
                g1 += f * d1;
                g2 += d1;
            }
            if g1.abs() < 1e-5 && g2.abs() < 1e-5 {
                break;
            }
            // Newton direction (2x2 solve).
            let det = h11 * h22 - h21 * h21;
            let da = -(h22 * g1 - h21 * g2) / det;
            let db = -(-h21 * g1 + h11 * g2) / det;
            let gd = g1 * da + g2 * db;
            // Backtracking line search.
            let mut step = 1.0f64;
            let mut advanced = false;
            while step >= min_step {
                let new_a = a + step * da;
                let new_b = b + step * db;
                let new_f = nll(decisions, &t, new_a, new_b);
                if new_f < fval + 1e-4 * step * gd {
                    a = new_a;
                    b = new_b;
                    fval = new_f;
                    advanced = true;
                    break;
                }
                step *= 0.5;
            }
            if !advanced {
                break;
            }
        }
        PlattScaling { a, b }
    }

    /// Calibrated probability of the positive class for decision `f`.
    pub fn probability(&self, f: f64) -> f64 {
        let fab = f * self.a + self.b;
        // 1/(1+exp(fab)), computed stably on both sides.
        if fab >= 0.0 {
            (-fab).exp() / (1.0 + (-fab).exp())
        } else {
            1.0 / (1.0 + fab.exp())
        }
    }
}

/// Stable (p, 1−p) of the sigmoid at `fab`.
fn pq(fab: f64) -> (f64, f64) {
    if fab >= 0.0 {
        let e = (-fab).exp();
        (e / (1.0 + e), 1.0 / (1.0 + e))
    } else {
        let e = fab.exp();
        (1.0 / (1.0 + e), e / (1.0 + e))
    }
}

/// Regularized negative log-likelihood of the sigmoid fit.
fn nll(decisions: &[f64], t: &[f64], a: f64, b: f64) -> f64 {
    let mut s = 0.0f64;
    for (&f, &ti) in decisions.iter().zip(t) {
        let fab = f * a + b;
        // t·fab + log(1 + exp(−fab)), stable form.
        s += if fab >= 0.0 {
            ti * fab + (1.0 + (-fab).exp()).ln()
        } else {
            (ti - 1.0) * fab + (1.0 + fab.exp()).ln()
        };
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_separated() -> (Vec<f64>, Vec<f32>) {
        let decisions: Vec<f64> = vec![-2.5, -1.8, -1.2, -0.7, -0.2, 0.3, 0.8, 1.4, 1.9, 2.6];
        let y: Vec<f32> = vec![-1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        (decisions, y)
    }

    #[test]
    fn probabilities_are_monotone_in_decision() {
        let (d, y) = well_separated();
        let p = PlattScaling::fit(&d, &y);
        let mut last = -1.0;
        for f in [-3.0, -1.0, 0.0, 1.0, 3.0] {
            let prob = p.probability(f);
            assert!((0.0..=1.0).contains(&prob));
            assert!(prob > last, "non-monotone at f={f}: {prob} <= {last}");
            last = prob;
        }
    }

    #[test]
    fn separated_data_gets_confident_probabilities() {
        let (d, y) = well_separated();
        let p = PlattScaling::fit(&d, &y);
        assert!(p.probability(2.6) > 0.8, "p(+2.6) = {}", p.probability(2.6));
        assert!(p.probability(-2.5) < 0.2, "p(-2.5) = {}", p.probability(-2.5));
        // The decision boundary sits near p = 0.5.
        let mid = p.probability(0.05);
        assert!((0.25..0.75).contains(&mid), "boundary probability {mid}");
    }

    #[test]
    fn noisy_data_gets_soft_probabilities() {
        // Labels uncorrelated with decisions: the fitted slope should be
        // near zero and all probabilities near the class prior.
        let d: Vec<f64> = (0..40).map(|i| ((i * 37) % 17) as f64 / 8.0 - 1.0).collect();
        let y: Vec<f32> = (0..40).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let p = PlattScaling::fit(&d, &y);
        for f in [-1.0, 0.0, 1.0] {
            let prob = p.probability(f);
            assert!((0.3..0.7).contains(&prob), "uninformative fit gave p({f}) = {prob}");
        }
    }

    #[test]
    fn fit_is_shift_equivariant() {
        // Shifting all decisions by c shifts B but preserves predictions.
        let (d, y) = well_separated();
        let p1 = PlattScaling::fit(&d, &y);
        let shifted: Vec<f64> = d.iter().map(|v| v + 5.0).collect();
        let p2 = PlattScaling::fit(&shifted, &y);
        for (a, b) in d.iter().zip(&shifted) {
            let q1 = p1.probability(*a);
            let q2 = p2.probability(*b);
            assert!((q1 - q2).abs() < 5e-2, "{q1} vs {q2}");
        }
    }

    #[test]
    fn probability_is_numerically_stable_at_extremes() {
        let (d, y) = well_separated();
        let p = PlattScaling::fit(&d, &y);
        assert!(p.probability(1e6).is_finite());
        assert!(p.probability(-1e6).is_finite());
        assert!(p.probability(1e6) > 0.99);
        assert!(p.probability(-1e6) < 0.01);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class() {
        let _ = PlattScaling::fit(&[0.1, 0.2], &[1.0, 1.0]);
    }
}
