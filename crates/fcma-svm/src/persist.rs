//! Model persistence: save and load trained SVM models.
//!
//! A closed-loop session trains a feedback classifier once and reuses it
//! across the scan; persisting the model lets a session resume after an
//! interruption and lets offline-selected models ship to the real-time
//! rig. The format is a little-endian binary container, versioned and
//! self-describing enough to fail loudly on corruption.

use crate::model::{SvmModel, WssStats};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"FCMASVM1";

/// Persistence errors.
#[derive(Debug)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic / truncated / inconsistent container.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt model file: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serialize a model to a writer.
pub fn save_model<W: Write>(w: &mut W, model: &SvmModel) -> Result<(), PersistError> {
    w.write_all(MAGIC)?;
    w.write_all(&(model.train_idx.len() as u64).to_le_bytes())?;
    for &i in &model.train_idx {
        w.write_all(&(i as u64).to_le_bytes())?;
    }
    for &a in &model.alpha_y {
        w.write_all(&a.to_le_bytes())?;
    }
    w.write_all(&model.rho.to_le_bytes())?;
    w.write_all(&model.objective.to_le_bytes())?;
    w.write_all(&(model.iterations as u64).to_le_bytes())?;
    w.write_all(&(model.wss.first_order_iters as u64).to_le_bytes())?;
    w.write_all(&(model.wss.second_order_iters as u64).to_le_bytes())?;
    Ok(())
}

/// Deserialize a model from a reader.
pub fn load_model<R: Read>(r: &mut R) -> Result<SvmModel, PersistError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|_| PersistError::Corrupt("shorter than header".into()))?;
    if &magic != MAGIC {
        return Err(PersistError::Corrupt(format!("bad magic {magic:?}")));
    }
    let l = read_u64(r)? as usize;
    if l > (1 << 24) {
        return Err(PersistError::Corrupt(format!("implausible sample count {l}")));
    }
    let mut train_idx = Vec::with_capacity(l);
    for _ in 0..l {
        train_idx.push(read_u64(r)? as usize);
    }
    let mut alpha_y = Vec::with_capacity(l);
    for _ in 0..l {
        alpha_y.push(read_f32(r)?);
    }
    let rho = read_f32(r)?;
    let objective = read_f64(r)?;
    let iterations = read_u64(r)? as usize;
    let wss = WssStats {
        first_order_iters: read_u64(r)? as usize,
        second_order_iters: read_u64(r)? as usize,
    };
    if !alpha_y.iter().all(|a| a.is_finite()) || !rho.is_finite() {
        return Err(PersistError::Corrupt("non-finite model parameters".into()));
    }
    Ok(SvmModel { train_idx, alpha_y, rho, objective, iterations, wss })
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|_| PersistError::Corrupt("truncated".into()))?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32<R: Read>(r: &mut R) -> Result<f32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|_| PersistError::Corrupt("truncated".into()))?;
    Ok(f32::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|_| PersistError::Corrupt("truncated".into()))?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelMatrix;
    use crate::phisvm::train_phisvm;
    use crate::smo::SmoParams;
    use fcma_linalg::Mat;
    use std::io::Cursor;

    fn trained_model() -> (SvmModel, KernelMatrix) {
        let xs: Vec<(f32, f32)> = (0..12)
            .map(|i| {
                let t = i as f32 * 0.8;
                (t.sin() * 0.4 + if i % 2 == 0 { 1.2 } else { -1.2 }, t.cos())
            })
            .collect();
        let y: Vec<f32> = (0..12).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let k = KernelMatrix::from_mat(Mat::from_fn(12, 12, |r, c| {
            xs[r].0 * xs[c].0 + xs[r].1 * xs[c].1
        }));
        let idx: Vec<usize> = (0..12).collect();
        let m = train_phisvm(&k, &idx, &y, &SmoParams::default());
        (m, k)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (m, k) = trained_model();
        let mut buf = Vec::new();
        save_model(&mut buf, &m).unwrap();
        let loaded = load_model(&mut Cursor::new(buf)).unwrap();
        assert_eq!(loaded.train_idx, m.train_idx);
        assert_eq!(loaded.alpha_y, m.alpha_y);
        assert_eq!(loaded.rho, m.rho);
        assert_eq!(loaded.objective, m.objective);
        assert_eq!(loaded.iterations, m.iterations);
        assert_eq!(loaded.wss, m.wss);
        // Decisions identical.
        for t in 0..12 {
            assert_eq!(loaded.decision(&k, t), m.decision(&k, t));
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let (m, _) = trained_model();
        let mut buf = Vec::new();
        save_model(&mut buf, &m).unwrap();
        buf[0] ^= 0xFF;
        assert!(matches!(load_model(&mut Cursor::new(buf)), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let (m, _) = trained_model();
        let mut buf = Vec::new();
        save_model(&mut buf, &m).unwrap();
        for cut in [4usize, 9, 20, buf.len() - 3] {
            let truncated = buf[..cut].to_vec();
            assert!(load_model(&mut Cursor::new(truncated)).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_nonfinite_parameters() {
        let (mut m, _) = trained_model();
        m.rho = f32::NAN;
        let mut buf = Vec::new();
        save_model(&mut buf, &m).unwrap();
        assert!(matches!(load_model(&mut Cursor::new(buf)), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn rejects_absurd_sample_count() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(load_model(&mut Cursor::new(buf)), Err(PersistError::Corrupt(_))));
    }
}
