//! Trained SVM model representation and prediction.

use crate::kernel::KernelMatrix;

/// Which working-set-selection heuristic trained the model (PhiSVM's
/// adaptive mode records how many iterations each heuristic ran).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct WssStats {
    /// Iterations using the first-order (maximal-violating-pair) rule.
    pub first_order_iters: usize,
    /// Iterations using the second-order (Fan et al. 2005) rule.
    pub second_order_iters: usize,
}

/// A trained binary C-SVC model over precomputed-kernel samples.
///
/// The model refers to training samples by their *global* kernel-matrix
/// indices, so prediction on any other sample of the same kernel matrix is
/// a dot product against a kernel row — exactly how FCMA evaluates
/// held-out epochs during cross validation.
#[derive(Debug, Clone)]
pub struct SvmModel {
    /// Global kernel index of each training sample.
    pub train_idx: Vec<usize>,
    /// `alpha_i * y_i` per training sample (zeros for non-support vectors).
    pub alpha_y: Vec<f32>,
    /// Bias term: decision is `Σ alpha_y[s] · K[x, train_idx[s]] − rho`.
    pub rho: f32,
    /// Final dual objective value.
    pub objective: f64,
    /// SMO iterations to convergence.
    pub iterations: usize,
    /// Heuristic usage breakdown.
    pub wss: WssStats,
}

impl SvmModel {
    /// Number of support vectors (`alpha > 0`).
    pub fn n_support(&self) -> usize {
        self.alpha_y.iter().filter(|a| **a != 0.0).count()
    }

    /// Decision value for global sample `x` of `kernel`.
    ///
    /// # Panics
    /// If `x` or any training index is out of range for `kernel`.
    pub fn decision(&self, kernel: &KernelMatrix, x: usize) -> f32 {
        let row = kernel.row(x);
        let mut s = 0.0f32;
        for (&ay, &ti) in self.alpha_y.iter().zip(&self.train_idx) {
            s += ay * row[ti];
        }
        s - self.rho
    }

    /// Predicted label sign (`+1` / `−1`) for global sample `x`.
    pub(crate) fn predict(&self, kernel: &KernelMatrix, x: usize) -> f32 {
        if self.decision(kernel, x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Fraction of `(sample, target)` pairs predicted correctly.
    pub fn accuracy(&self, kernel: &KernelMatrix, samples: &[usize], targets: &[f32]) -> f64 {
        assert_eq!(samples.len(), targets.len(), "accuracy: length mismatch");
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .zip(targets)
            .filter(|(&s, &t)| self.predict(kernel, s) == t.signum())
            .count();
        correct as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_linalg::Mat;

    /// Hand-built model over a 3-sample identity kernel: decisions are
    /// directly readable.
    #[test]
    fn decision_is_weighted_kernel_row() {
        let k = KernelMatrix::from_mat(Mat::from_fn(3, 3, |r, c| if r == c { 2.0 } else { 0.5 }));
        let m = SvmModel {
            train_idx: vec![0, 1],
            alpha_y: vec![1.0, -0.5],
            rho: 0.25,
            objective: 0.0,
            iterations: 0,
            wss: WssStats::default(),
        };
        // decision(2) = 1.0*K[2,0] - 0.5*K[2,1] - 0.25 = 0.5 - 0.25 - 0.25
        assert!((m.decision(&k, 2) - 0.0).abs() < 1e-6);
        // decision(0) = 1.0*2.0 - 0.5*0.5 - 0.25 = 1.5
        assert!((m.decision(&k, 0) - 1.5).abs() < 1e-6);
        assert_eq!(m.predict(&k, 0), 1.0);
    }

    #[test]
    fn accuracy_counts_sign_matches() {
        let k = KernelMatrix::from_mat(Mat::from_fn(2, 2, |r, c| if r == c { 1.0 } else { -1.0 }));
        let m = SvmModel {
            train_idx: vec![0],
            alpha_y: vec![1.0],
            rho: 0.0,
            objective: 0.0,
            iterations: 0,
            wss: WssStats::default(),
        };
        // decision(0)=1 -> +1 ; decision(1)=-1 -> -1
        let acc = m.accuracy(&k, &[0, 1], &[1.0, -1.0]);
        assert_eq!(acc, 1.0);
        let acc = m.accuracy(&k, &[0, 1], &[-1.0, -1.0]);
        assert_eq!(acc, 0.5);
    }

    #[test]
    fn n_support_ignores_zeros() {
        let m = SvmModel {
            train_idx: vec![0, 1, 2],
            alpha_y: vec![0.0, 0.3, -0.3],
            rho: 0.0,
            objective: 0.0,
            iterations: 0,
            wss: WssStats::default(),
        };
        assert_eq!(m.n_support(), 2);
    }
}
