//! Sequential Minimal Optimization over a precomputed dense kernel —
//! the PhiSVM solver core (paper §4.4).
//!
//! Solves the binary C-SVC dual
//!
//! ```text
//!   min_α  ½ αᵀQα − eᵀα    s.t.  0 ≤ α_i ≤ C,  yᵀα = 0
//! ```
//!
//! with `Q_ij = y_i y_j K_ij`, by repeatedly choosing a two-variable
//! working set, solving it analytically, and updating the full gradient —
//! the "computationally intensive part" the paper vectorizes.
//!
//! Working-set selection supports all three modes the paper compares:
//! * [`WssMode::FirstOrder`] — maximal violating pair (Keerthi et al.);
//! * [`WssMode::SecondOrder`] — Fan/Chen/Lin 2005, LibSVM's default;
//! * [`WssMode::Adaptive`] — PhiSVM's rule: periodically sample both
//!   heuristics and commit to whichever converges faster per unit cost
//!   (derived from the GPU SVM of Catanzaro et al., the paper's ref \[5\]).
//!
//! Everything here is `f32`, dense, and branch-light — the data-layout
//! properties the paper contrasts with LibSVM's sparse `f64` internals.

use crate::model::WssStats;
use fcma_linalg::Mat;
use fcma_trace::{counter, histogram, span};

/// Guard against zero curvature in the two-variable subproblem.
const TAU: f32 = 1e-12;

/// Working-set-selection heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WssMode {
    /// Maximal violating pair (first-order information only).
    FirstOrder,
    /// Second-order rule of Fan, Chen & Lin (2005).
    SecondOrder,
    /// PhiSVM's adaptive sampling between the two.
    #[default]
    Adaptive,
}

/// SMO solver parameters.
#[derive(Debug, Clone, Copy)]
pub struct SmoParams {
    /// Box constraint `C`.
    pub c: f32,
    /// KKT violation tolerance (LibSVM's default 1e-3).
    pub eps: f32,
    /// Iteration cap (a safety net; FCMA problems converge in hundreds).
    pub max_iter: usize,
    /// Working-set heuristic.
    pub wss: WssMode,
}

impl Default for SmoParams {
    fn default() -> Self {
        SmoParams { c: 1.0, eps: 1e-3, max_iter: 100_000, wss: WssMode::Adaptive }
    }
}

/// Result of a dual solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Optimal dual variables.
    pub alpha: Vec<f32>,
    /// Bias term.
    pub rho: f32,
    /// Final dual objective.
    pub objective: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Heuristic usage.
    pub wss: WssStats,
}

/// Iterations per adaptive sampling phase.
const PHASE: usize = 32;
/// Phases to commit to the winning heuristic before re-sampling.
const COMMIT_PHASES: usize = 8;
/// Relative per-iteration cost of the second-order rule (its selection
/// loop touches the `K_i` row once more than the first-order rule).
const SECOND_ORDER_COST: f64 = 1.25;

/// Solve the dual over a dense `l × l` kernel block `k` with targets `y`
/// (entries ±1).
///
/// # Panics
/// Panics if shapes disagree, `y` contains non-±1 entries, or only one
/// class is present.
pub fn solve(k: &Mat, y: &[f32], params: &SmoParams) -> SolveResult {
    let l = y.len();
    let _span = span!("svm.smo.solve", samples = l);
    assert_eq!(k.rows(), l, "smo: kernel rows != targets");
    assert_eq!(k.cols(), l, "smo: kernel not square");
    assert!(l >= 2, "smo: need at least two samples");
    assert!(y.iter().all(|&v| v == 1.0 || v == -1.0), "smo: targets must be ±1");
    assert!(y.contains(&1.0) && y.iter().any(|&v| v == -1.0), "smo: need both classes");
    assert!(params.c > 0.0, "smo: C must be positive");

    let c = params.c;
    let mut alpha = vec![0.0f32; l];
    // G_t = (Qα)_t − 1; with α = 0 this is just −1 everywhere.
    let mut g = vec![-1.0f32; l];

    let mut stats = WssStats::default();
    let mut iter = 0usize;

    // Adaptive-mode state.
    let mut adaptive = AdaptiveState::new(params.wss);
    let mut phase_start_obj = objective(&alpha, &g);

    // Numeric-convergence guard: FCMA kernels have diagonals of order
    // `N` (squared norms of z-scored correlation vectors), so the f32
    // gradient noise floor can sit above an absolute KKT tolerance. The
    // dual objective is monotone under SMO; when a whole window of
    // iterations produces no measurable decrease, the solve has converged
    // to machine precision and we stop.
    const STALL_WINDOW: usize = 128;
    let mut stall_obj = phase_start_obj;

    // Zero-progress guard: in f32, a variable can sit one ulp inside the
    // box so that its selected pair clamps to *exactly* no movement; the
    // same pair would then be re-selected forever. Such an index is banned
    // from the `i` role until any real progress occurs.
    let mut banned = vec![false; l];
    let mut any_banned = false;

    while iter < params.max_iter {
        let use_second = adaptive.use_second_order();
        let Some((i, j, gmax, gmin)) = select_working_set(k, y, &alpha, &g, c, use_second, &banned)
        else {
            break; // optimal (or every violator is pinned at f32 resolution)
        };
        if gmax - gmin <= params.eps {
            break;
        }
        if use_second {
            stats.second_order_iters += 1;
        } else {
            stats.first_order_iters += 1;
        }

        // --- two-variable analytic subproblem (Platt's update) ---
        let kii = k.get(i, i);
        let kjj = k.get(j, j);
        let kij = k.get(i, j);
        let eta = (kii + kjj - 2.0 * kij).max(TAU);
        // E_t = y_t · G_t ; step along α_j.
        let e_i = y[i] * g[i];
        let e_j = y[j] * g[j];
        let old_ai = alpha[i];
        let old_aj = alpha[j];
        let mut aj = old_aj + y[j] * (e_i - e_j) / eta;
        let (lo, hi) = if y[i] != y[j] {
            ((old_aj - old_ai).max(0.0), (c + old_aj - old_ai).min(c))
        } else {
            ((old_ai + old_aj - c).max(0.0), (old_ai + old_aj).min(c))
        };
        aj = aj.clamp(lo, hi);
        let ai = old_ai + y[i] * y[j] * (old_aj - aj);
        alpha[i] = ai;
        alpha[j] = aj;

        // --- gradient update: the vectorized hot loop ---
        let dai = ai - old_ai;
        let daj = aj - old_aj;
        if dai == 0.0 && daj == 0.0 {
            // Fully clamped pair: ban `i` so selection moves on.
            banned[i] = true;
            any_banned = true;
            iter += 1;
            continue;
        }
        if any_banned {
            // Real progress reopens previously banned indices.
            banned.fill(false);
            any_banned = false;
        }
        let coef_i = dai * y[i];
        let coef_j = daj * y[j];
        let ki = k.row(i);
        let kj = k.row(j);
        for t in 0..l {
            g[t] += y[t] * (coef_i * ki[t] + coef_j * kj[t]);
        }

        iter += 1;
        if adaptive.is_adaptive() && iter.is_multiple_of(PHASE) {
            let obj = objective(&alpha, &g);
            adaptive.end_phase(phase_start_obj - obj);
            phase_start_obj = obj;
        }
        if iter.is_multiple_of(STALL_WINDOW) {
            let obj = objective(&alpha, &g);
            let decrease = stall_obj - obj;
            // Threshold sits just above the f64-accumulated f32 rounding
            // noise of the objective: real progress, however slow,
            // continues; a frozen gradient stops within one window.
            if decrease <= 1e-9 + 1e-7 * obj.abs() {
                break;
            }
            stall_obj = obj;
        }
    }

    let rho = calculate_rho(y, &alpha, &g, c);
    let objective = objective(&alpha, &g);
    counter!("svm.smo.solves", 1_u64);
    counter!("svm.smo.iterations", iter);
    if fcma_trace::is_enabled() {
        histogram!("svm.smo.iterations_per_solve", f64_from_iter(iter));
    }
    SolveResult { alpha, rho, objective, iterations: iter, wss: stats }
}

/// Widen an iteration count for histogram recording (f64 mantissa is
/// ample for any reachable `max_iter`).
fn f64_from_iter(iter: usize) -> f64 {
    // cast is exact here: tally → f64, far below 2^53
    iter as f64
}

/// Dual objective `½αᵀQα − eᵀα = ½ Σ α_t (G_t − 1)`.
fn objective(alpha: &[f32], g: &[f32]) -> f64 {
    alpha.iter().zip(g).map(|(&a, &gt)| a as f64 * (gt as f64 - 1.0)).sum::<f64>() * 0.5
}

/// Membership tests for the violating-pair index sets.
#[inline]
fn in_i_up(y: f32, a: f32, c: f32) -> bool {
    (y == 1.0 && a < c) || (y == -1.0 && a > 0.0)
}

#[inline]
fn in_i_low(y: f32, a: f32, c: f32) -> bool {
    (y == 1.0 && a > 0.0) || (y == -1.0 && a < c)
}

/// Choose the working set. Returns `(i, j, m(α), M(α))`, or `None` when no
/// feasible pair exists.
fn select_working_set(
    k: &Mat,
    y: &[f32],
    alpha: &[f32],
    g: &[f32],
    c: f32,
    second_order: bool,
    banned: &[bool],
) -> Option<(usize, usize, f32, f32)> {
    let l = y.len();
    // i = argmax_{t ∈ I_up} −y_t G_t
    let mut gmax = f32::NEG_INFINITY;
    let mut i = usize::MAX;
    for t in 0..l {
        if !banned[t] && in_i_up(y[t], alpha[t], c) {
            let v = -y[t] * g[t];
            if v > gmax {
                gmax = v;
                i = t;
            }
        }
    }
    if i == usize::MAX {
        return None;
    }

    let mut gmin = f32::INFINITY;
    let mut j = usize::MAX;
    if second_order {
        // j minimizes −b²/a among t ∈ I_low with −y_t G_t < m(α).
        let ki = k.row(i);
        let kii = k.get(i, i);
        let mut best = f32::INFINITY;
        for t in 0..l {
            if in_i_low(y[t], alpha[t], c) {
                let v = -y[t] * g[t];
                gmin = gmin.min(v);
                let b = gmax - v;
                if b > 0.0 {
                    let a = (kii + k.get(t, t) - 2.0 * ki[t]).max(TAU);
                    let score = -(b * b) / a;
                    if score < best {
                        best = score;
                        j = t;
                    }
                }
            }
        }
    } else {
        // j = argmin_{t ∈ I_low} −y_t G_t (maximal violating pair).
        for t in 0..l {
            if in_i_low(y[t], alpha[t], c) {
                let v = -y[t] * g[t];
                if v < gmin {
                    gmin = v;
                    j = t;
                }
            }
        }
    }
    if j == usize::MAX {
        return None;
    }
    Some((i, j, gmax, gmin))
}

/// Bias via LibSVM's rule: average `y_t G_t` over free support vectors,
/// falling back to the midpoint of the bound-derived bracket.
fn calculate_rho(y: &[f32], alpha: &[f32], g: &[f32], c: f32) -> f32 {
    let mut ub = f32::INFINITY;
    let mut lb = f32::NEG_INFINITY;
    let mut sum_free = 0.0f32;
    let mut n_free = 0usize;
    for t in 0..y.len() {
        let yg = y[t] * g[t];
        if alpha[t] >= c {
            if y[t] == -1.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else if alpha[t] <= 0.0 {
            if y[t] == 1.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else {
            n_free += 1;
            sum_free += yg;
        }
    }
    if n_free > 0 {
        sum_free / n_free as f32
    } else {
        (ub + lb) / 2.0
    }
}

/// PhiSVM's adaptive heuristic chooser.
///
/// Deterministic version of the Catanzaro-style adaptivity: sampling
/// phases alternate heuristics and measure objective decrease per
/// cost-weighted iteration; the faster rule is committed for
/// [`COMMIT_PHASES`] phases before re-sampling. Fixed modes degenerate to
/// a constant answer.
struct AdaptiveState {
    mode: WssMode,
    /// Phase schedule position (adaptive mode only).
    phase: usize,
    /// Rates measured for the most recent sampling pair.
    rate_first: f64,
    rate_second: f64,
    /// Currently committed choice during commit phases.
    committed_second: bool,
}

impl AdaptiveState {
    fn new(mode: WssMode) -> Self {
        AdaptiveState { mode, phase: 0, rate_first: 0.0, rate_second: 0.0, committed_second: true }
    }

    fn is_adaptive(&self) -> bool {
        self.mode == WssMode::Adaptive
    }

    /// Which heuristic should the current iteration use?
    fn use_second_order(&self) -> bool {
        match self.mode {
            WssMode::FirstOrder => false,
            WssMode::SecondOrder => true,
            WssMode::Adaptive => {
                // Schedule: phase 0 samples first-order, phase 1 samples
                // second-order, then COMMIT_PHASES phases of the winner.
                match self.phase_kind() {
                    PhaseKind::SampleFirst => false,
                    PhaseKind::SampleSecond => true,
                    PhaseKind::Committed => self.committed_second,
                }
            }
        }
    }

    fn phase_kind(&self) -> PhaseKind {
        match self.phase % (2 + COMMIT_PHASES) {
            0 => PhaseKind::SampleFirst,
            1 => PhaseKind::SampleSecond,
            _ => PhaseKind::Committed,
        }
    }

    /// Record the objective decrease achieved by the phase that just ended.
    fn end_phase(&mut self, decrease: f64) {
        match self.phase_kind() {
            PhaseKind::SampleFirst => self.rate_first = decrease.max(0.0),
            PhaseKind::SampleSecond => {
                self.rate_second = decrease.max(0.0) / SECOND_ORDER_COST;
                self.committed_second = self.rate_second >= self.rate_first;
            }
            PhaseKind::Committed => {}
        }
        self.phase += 1;
    }
}

#[derive(PartialEq, Eq)]
enum PhaseKind {
    SampleFirst,
    SampleSecond,
    Committed,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 1-D points: α = [a, a] with the margin pair both
    /// support vectors; the analytic solution is easy to verify.
    fn two_point_problem() -> (Mat, Vec<f32>) {
        // x0 = +2, x1 = −2 (1-D linear kernel) → K = [[4,−4],[−4,4]]
        let k = Mat::from_vec(2, 2, vec![4.0, -4.0, -4.0, 4.0]);
        let y = vec![1.0, -1.0];
        (k, y)
    }

    #[test]
    fn two_points_analytic_solution() {
        let (k, y) = two_point_problem();
        let r = solve(&k, &y, &SmoParams::default());
        // Optimal α solves min ½ αᵀQα − Σα with α0 = α1 = a:
        // Q = y yᵀ ∘ K = [[4,4],[4,4]] → obj = 8a² − 2a → a = 1/8.
        assert!((r.alpha[0] - 0.125).abs() < 1e-4, "alpha {:?}", r.alpha);
        assert!((r.alpha[1] - 0.125).abs() < 1e-4);
        // Decision boundary is x = 0 → rho = 0.
        assert!(r.rho.abs() < 1e-3, "rho {}", r.rho);
        assert!((r.objective - (-0.125)).abs() < 1e-4, "obj {}", r.objective);
    }

    #[test]
    fn box_constraint_caps_alpha() {
        let (k, y) = two_point_problem();
        let r = solve(&k, &y, &SmoParams { c: 0.05, ..Default::default() });
        assert!((r.alpha[0] - 0.05).abs() < 1e-5);
        assert!((r.alpha[1] - 0.05).abs() < 1e-5);
    }

    /// 1-D points {+1, +3} vs {−1, −3}: hard-margin solution uses only the
    /// inner pair.
    #[test]
    fn inner_points_are_the_support_vectors() {
        let xs = [1.0f32, 3.0, -1.0, -3.0];
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let k = Mat::from_fn(4, 4, |r, c| xs[r] * xs[c]);
        let r = solve(&k, &y, &SmoParams { c: 100.0, ..Default::default() });
        // margin pair x=±1: α = 1/2 each, others 0 (w = 1, margin 1).
        assert!((r.alpha[0] - 0.5).abs() < 1e-3, "{:?}", r.alpha);
        assert!((r.alpha[2] - 0.5).abs() < 1e-3, "{:?}", r.alpha);
        assert!(r.alpha[1].abs() < 1e-3);
        assert!(r.alpha[3].abs() < 1e-3);
        assert!(r.rho.abs() < 1e-3);
    }

    #[test]
    fn equality_constraint_holds() {
        let xs = [0.5f32, 2.0, 1.5, -1.0, -0.2, -2.5];
        let y = vec![1.0, 1.0, 1.0, -1.0, -1.0, -1.0];
        let k = Mat::from_fn(6, 6, |r, c| xs[r] * xs[c] + 1.0);
        for mode in [WssMode::FirstOrder, WssMode::SecondOrder, WssMode::Adaptive] {
            let r = solve(&k, &y, &SmoParams { c: 10.0, wss: mode, ..Default::default() });
            let s: f32 = r.alpha.iter().zip(&y).map(|(a, yy)| a * yy).sum();
            assert!(s.abs() < 1e-3, "{mode:?}: yᵀα = {s}");
            assert!(r.alpha.iter().all(|&a| (-1e-6..=10.0 + 1e-4).contains(&a)));
        }
    }

    #[test]
    fn all_wss_modes_reach_same_objective() {
        // Random-ish separable-with-overlap problem.
        let l = 24;
        let xs: Vec<(f32, f32)> = (0..l)
            .map(|i| {
                let t = i as f32 * 0.7;
                let side = if i % 2 == 0 { 1.0 } else { -1.0 };
                (side * (1.0 + (t.sin() * 0.8)), t.cos() * 0.9)
            })
            .collect();
        let y: Vec<f32> = (0..l).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let k = Mat::from_fn(l, l, |r, c| xs[r].0 * xs[c].0 + xs[r].1 * xs[c].1);
        let p = SmoParams { c: 1.0, eps: 1e-4, ..Default::default() };
        let o1 = solve(&k, &y, &SmoParams { wss: WssMode::FirstOrder, ..p }).objective;
        let o2 = solve(&k, &y, &SmoParams { wss: WssMode::SecondOrder, ..p }).objective;
        let oa = solve(&k, &y, &SmoParams { wss: WssMode::Adaptive, ..p }).objective;
        assert!((o1 - o2).abs() < 1e-2 * o1.abs().max(1.0), "{o1} vs {o2}");
        assert!((oa - o2).abs() < 1e-2 * o2.abs().max(1.0), "{oa} vs {o2}");
    }

    #[test]
    fn kkt_conditions_at_solution() {
        // After convergence every free SV must have |y_t G_t − rho| ≈ 0
        // ... equivalently m(α) − M(α) ≤ eps, checked directly.
        let l = 16;
        let xs: Vec<f32> = (0..l).map(|i| (i as f32 - 7.5) * 0.4).collect();
        let y: Vec<f32> = xs.iter().map(|&x| if x > 0.0 { 1.0 } else { -1.0 }).collect();
        let k = Mat::from_fn(l, l, |r, c| xs[r] * xs[c] + 0.5);
        let p = SmoParams { c: 5.0, eps: 1e-4, ..Default::default() };
        let r = solve(&k, &y, &p);
        // Recompute gradient from scratch.
        let mut g = vec![-1.0f32; l];
        for t in 0..l {
            for s in 0..l {
                g[t] += y[t] * y[s] * k.get(t, s) * r.alpha[s];
            }
        }
        let mut m_up = f32::NEG_INFINITY;
        let mut m_low = f32::INFINITY;
        for t in 0..l {
            if in_i_up(y[t], r.alpha[t], p.c) {
                m_up = m_up.max(-y[t] * g[t]);
            }
            if in_i_low(y[t], r.alpha[t], p.c) {
                m_low = m_low.min(-y[t] * g[t]);
            }
        }
        assert!(m_up - m_low <= 5e-3, "KKT gap {}", m_up - m_low);
    }

    #[test]
    fn second_order_needs_no_more_iterations_than_first() {
        let l = 40;
        let xs: Vec<(f32, f32)> = (0..l)
            .map(|i| {
                let a = i as f32 * 0.37;
                (a.sin() + if i % 2 == 0 { 1.2 } else { -1.2 }, a.cos())
            })
            .collect();
        let y: Vec<f32> = (0..l).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let k = Mat::from_fn(l, l, |r, c| xs[r].0 * xs[c].0 + xs[r].1 * xs[c].1);
        let p = SmoParams { c: 1.0, eps: 1e-3, ..Default::default() };
        let r1 = solve(&k, &y, &SmoParams { wss: WssMode::FirstOrder, ..p });
        let r2 = solve(&k, &y, &SmoParams { wss: WssMode::SecondOrder, ..p });
        assert!(
            r2.iterations <= r1.iterations,
            "second-order {} iters > first-order {}",
            r2.iterations,
            r1.iterations
        );
    }

    #[test]
    fn adaptive_mode_uses_both_heuristics() {
        // A problem slow enough to get past the sampling phases.
        let l = 64;
        let xs: Vec<(f32, f32)> = (0..l)
            .map(|i| {
                let a = i as f32 * 0.61;
                (a.sin() * 2.0 + if i % 2 == 0 { 0.3 } else { -0.3 }, (a * 1.3).cos() * 2.0)
            })
            .collect();
        let y: Vec<f32> = (0..l).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let k = Mat::from_fn(l, l, |r, c| xs[r].0 * xs[c].0 + xs[r].1 * xs[c].1);
        let r = solve(&k, &y, &SmoParams { c: 2.0, eps: 1e-5, ..Default::default() });
        assert!(r.wss.first_order_iters > 0, "adaptive never tried first-order");
        assert!(r.wss.second_order_iters > 0, "adaptive never tried second-order");
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class() {
        let k = Mat::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let _ = solve(&k, &[1.0, 1.0], &SmoParams::default());
    }

    #[test]
    #[should_panic(expected = "±1")]
    fn rejects_bad_targets() {
        let k = Mat::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let _ = solve(&k, &[1.0, 0.5], &SmoParams::default());
    }
}
