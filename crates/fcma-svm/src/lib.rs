//! # fcma-svm — support vector machine substrate for FCMA
//!
//! FCMA's third pipeline stage cross-validates one linear SVM per voxel
//! over precomputed kernel matrices. This crate implements every solver
//! the paper compares (Table 8):
//!
//! * [`mod@reference`] — a faithful LibSVM replica: sparse `(index, value)`
//!   node arrays, `f64` hot loops, on-demand `Q` rows behind an LRU
//!   cache, second-order working-set selection;
//! * [`phisvm::train_optimized_libsvm`] — the paper's "optimized LibSVM":
//!   the same algorithm with dense `f32` layout;
//! * [`phisvm::train_phisvm`] — **PhiSVM**: dense `f32` SMO with adaptive
//!   first/second-order working-set selection (§4.4, derived from the GPU
//!   SVM of Catanzaro et al.).
//!
//! Supporting machinery:
//!
//! * [`kernel::KernelMatrix`] — `K = X·Xᵀ` precompute via the optimized
//!   panel SYRK (the memory reduction enabling 240-voxel batches);
//! * [`smo`] — the shared dense SMO core;
//! * [`model::SvmModel`] — trained models and prediction;
//! * [`cv`] — leave-one-subject-out cross validation.

pub mod cv;
pub mod kernel;
pub mod model;
pub mod persist;
pub mod phisvm;
pub mod probability;
pub mod reference;
pub mod smo;

pub use cv::{loso_cross_validate, loso_cross_validate_pool, CvResult, SolverKind};
pub use kernel::KernelMatrix;
pub use model::SvmModel;
pub use model::WssStats;
pub use persist::PersistError;
pub use persist::{load_model, save_model};
pub use phisvm::train_phisvm;
pub use probability::PlattScaling;
pub use reference::LibSvmParams;
pub use reference::LibSvmResult;
pub use smo::{SmoParams, WssMode};
