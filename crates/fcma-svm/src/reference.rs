//! LibSVM-replica SMO solver — the baseline the paper measures against.
//!
//! The paper's baseline feeds precomputed kernel matrices to LibSVM and
//! observes three inefficiencies on the coprocessor (§3.3.3):
//!
//! 1. data stored in a **sparse index set instead of a dense matrix** —
//!    kernel values live in `(index, value)` node arrays, so the hot
//!    loops walk twice the memory and defeat the vectorizer;
//! 2. **unnecessary type conversions and `f64` in the hot loops** — every
//!    `f32` kernel entry is widened to double on entry;
//! 3. per-row kernel (`Q`) computation guarded by an **LRU row cache**
//!    rather than direct indexing.
//!
//! This module reproduces those design decisions faithfully (including
//! LibSVM's second-order working-set selection, its stopping rule, and its
//! `calculate_rho`), so that the optimized solvers in [`crate::smo`] are
//! compared against a real algorithmic twin of LibSVM rather than a straw
//! man. Shrinking is omitted, matching the paper's usage on
//! few-hundred-sample problems.

use crate::kernel::KernelMatrix;

/// LibSVM node: explicit `(index, value)` pair, the sparse representation
/// the paper calls out. `index` is kept even though our data is dense —
/// that redundancy *is* the measured inefficiency.
#[derive(Debug, Clone, Copy)]
struct Node {
    index: i32,
    value: f64,
}

/// Parameters of the replica solver.
#[derive(Debug, Clone, Copy)]
pub struct LibSvmParams {
    /// Box constraint `C`.
    pub c: f64,
    /// Stopping tolerance (LibSVM default 1e-3).
    pub eps: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Q-row LRU cache capacity, in rows (LibSVM sizes its cache in MB;
    /// rows is the equivalent knob for precomputed kernels).
    pub cache_rows: usize,
}

impl Default for LibSvmParams {
    fn default() -> Self {
        LibSvmParams { c: 1.0, eps: 1e-3, max_iter: 100_000, cache_rows: 64 }
    }
}

/// Result of a replica solve.
#[derive(Debug, Clone)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct LibSvmResult {
    /// Dual variables (double precision, as in LibSVM).
    pub alpha: Vec<f64>,
    /// Bias.
    pub rho: f64,
    /// Final dual objective.
    pub objective: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Q-row cache misses (each miss recomputes a full row).
    pub cache_misses: usize,
}

/// Simple LRU cache of computed `Q` rows, mirroring `libsvm`'s `Cache`.
struct RowCache {
    capacity: usize,
    /// (row index, row data), most recently used last.
    entries: Vec<(usize, Vec<f64>)>,
    misses: usize,
}

impl RowCache {
    fn new(capacity: usize) -> Self {
        RowCache { capacity: capacity.max(2), entries: Vec::new(), misses: 0 }
    }

    /// Fetch row `i`, computing it with `make` on a miss.
    fn get(&mut self, i: usize, make: impl FnOnce() -> Vec<f64>) -> &[f64] {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == i) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
        } else {
            self.misses += 1;
            if self.entries.len() >= self.capacity {
                self.entries.remove(0);
            }
            self.entries.push((i, make()));
        }
        // audit: allow(panicpath) — an entry was pushed on both branches above
        &self.entries.last().expect("just pushed").1
    }
}

const TAU: f64 = 1e-12;

/// Train a binary C-SVC on a precomputed kernel, LibSVM-style.
///
/// `idx` are the global kernel indices of the training samples, `y` their
/// ±1 targets (parallel to `idx`).
///
/// # Panics
/// Panics on length mismatches, non-±1 targets, or a single-class problem.
pub fn train_precomputed(
    kernel: &KernelMatrix,
    idx: &[usize],
    y: &[f32],
    params: &LibSvmParams,
) -> LibSvmResult {
    let l = idx.len();
    assert_eq!(y.len(), l, "libsvm: idx/targets length mismatch");
    assert!(l >= 2, "libsvm: need at least two samples");
    assert!(y.iter().all(|&v| v == 1.0 || v == -1.0), "libsvm: targets must be ±1");
    assert!(y.contains(&1.0) && y.iter().any(|&v| v == -1.0), "libsvm: need both classes");

    // Build the node arrays: each training sample is the (sparse-encoded)
    // row of kernel values against all training samples — LibSVM's
    // precomputed-kernel representation, f32 → f64 widening included.
    let rows: Vec<Vec<Node>> = idx
        .iter()
        .map(|&gi| {
            let src = kernel.row(gi);
            idx.iter()
                .enumerate()
                .map(|(t, &gt)| Node { index: t as i32, value: src[gt] as f64 })
                .collect()
        })
        .collect();
    let y64: Vec<f64> = y.iter().map(|&v| v as f64).collect();
    let qd: Vec<f64> = (0..l).map(|t| kernel_eval(&rows, t, t)).collect();

    let c = params.c;
    let mut alpha = vec![0.0f64; l];
    let mut g = vec![-1.0f64; l];
    let mut cache = RowCache::new(params.cache_rows);
    let mut iter = 0usize;

    // Numeric-convergence guard (see `smo::solve`): stop when a window of
    // iterations yields no objective decrease at f64 precision.
    const STALL_WINDOW: usize = 128;
    let mut stall_obj: f64 = 0.0;

    while iter < params.max_iter {
        // --- second-order working set selection (LibSVM's default) ---
        let mut gmax = f64::NEG_INFINITY;
        let mut i = usize::MAX;
        for t in 0..l {
            if in_i_up(y64[t], alpha[t], c) {
                let v = -y64[t] * g[t];
                if v > gmax {
                    gmax = v;
                    i = t;
                }
            }
        }
        if i == usize::MAX {
            break;
        }
        let mut gmin = f64::INFINITY;
        let mut j = usize::MAX;
        let mut best = f64::INFINITY;
        for t in 0..l {
            if in_i_low(y64[t], alpha[t], c) {
                let v = -y64[t] * g[t];
                gmin = gmin.min(v);
                let b = gmax - v;
                if b > 0.0 {
                    let a = (qd[i] + qd[t] - 2.0 * kernel_eval(&rows, i, t)).max(TAU);
                    let score = -(b * b) / a;
                    if score < best {
                        best = score;
                        j = t;
                    }
                }
            }
        }
        if j == usize::MAX || gmax - gmin <= params.eps {
            break;
        }

        // --- analytic two-variable step ---
        let eta = (qd[i] + qd[j] - 2.0 * kernel_eval(&rows, i, j)).max(TAU);
        let e_i = y64[i] * g[i];
        let e_j = y64[j] * g[j];
        let old_ai = alpha[i];
        let old_aj = alpha[j];
        let mut aj = old_aj + y64[j] * (e_i - e_j) / eta;
        let (lo, hi) = if y64[i] != y64[j] {
            ((old_aj - old_ai).max(0.0), (c + old_aj - old_ai).min(c))
        } else {
            ((old_ai + old_aj - c).max(0.0), (old_ai + old_aj).min(c))
        };
        aj = aj.clamp(lo, hi);
        let ai = old_ai + y64[i] * y64[j] * (old_aj - aj);
        alpha[i] = ai;
        alpha[j] = aj;

        // --- gradient update through the cached Q rows ---
        let dai = ai - old_ai;
        let daj = aj - old_aj;
        // Q rows are fetched one at a time (the cache borrows mutably), so
        // the inner update walks each row separately — another layout cost
        // of the replica relative to the fused dense loop in `smo`.
        {
            let qi: Vec<f64> = cache.get(i, || q_row(&rows, &y64, i)).to_vec();
            for t in 0..l {
                g[t] += qi[t] * dai;
            }
        }
        {
            let qj: Vec<f64> = cache.get(j, || q_row(&rows, &y64, j)).to_vec();
            for t in 0..l {
                g[t] += qj[t] * daj;
            }
        }
        iter += 1;
        if iter.is_multiple_of(STALL_WINDOW) {
            let obj: f64 = alpha.iter().zip(&g).map(|(&a, &gt)| a * (gt - 1.0)).sum::<f64>() * 0.5;
            let decrease = stall_obj - obj;
            if iter > STALL_WINDOW && decrease <= 1e-12 + 1e-10 * obj.abs() {
                break;
            }
            stall_obj = obj;
        }
    }

    let rho = calculate_rho(&y64, &alpha, &g, c);
    let objective: f64 = alpha.iter().zip(&g).map(|(&a, &gt)| a * (gt - 1.0)).sum::<f64>() * 0.5;
    LibSvmResult { alpha, rho, objective, iterations: iter, cache_misses: cache.misses }
}

/// Kernel evaluation through the node representation: find local index `b`
/// in row `a`'s node array. Dense data makes this a direct index, but the
/// node indirection (and the index check LibSVM performs) is retained.
#[inline]
fn kernel_eval(rows: &[Vec<Node>], a: usize, b: usize) -> f64 {
    let node = &rows[a][b];
    debug_assert_eq!(node.index as usize, b, "node array out of order");
    node.value
}

/// Compute one full `Q` row: `Q_i[t] = y_i y_t K_it`, walking nodes.
fn q_row(rows: &[Vec<Node>], y: &[f64], i: usize) -> Vec<f64> {
    let yi = y[i];
    rows[i].iter().map(|n| yi * y[n.index as usize] * n.value).collect()
}

#[inline]
fn in_i_up(y: f64, a: f64, c: f64) -> bool {
    (y > 0.0 && a < c) || (y < 0.0 && a > 0.0)
}

#[inline]
fn in_i_low(y: f64, a: f64, c: f64) -> bool {
    (y > 0.0 && a > 0.0) || (y < 0.0 && a < c)
}

fn calculate_rho(y: &[f64], alpha: &[f64], g: &[f64], c: f64) -> f64 {
    let mut ub = f64::INFINITY;
    let mut lb = f64::NEG_INFINITY;
    let mut sum_free = 0.0f64;
    let mut n_free = 0usize;
    for t in 0..y.len() {
        let yg = y[t] * g[t];
        if alpha[t] >= c {
            if y[t] < 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else if alpha[t] <= 0.0 {
            if y[t] > 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else {
            n_free += 1;
            sum_free += yg;
        }
    }
    if n_free > 0 {
        sum_free / n_free as f64
    } else {
        (ub + lb) / 2.0
    }
}

/// Decision value for global kernel sample `x` under a replica model
/// trained on `idx`/`y`.
///
/// # Panics
/// If `x` or any index in `idx` is out of range for `kernel`.
pub fn decision(
    kernel: &KernelMatrix,
    result: &LibSvmResult,
    idx: &[usize],
    y: &[f32],
    x: usize,
) -> f64 {
    let row = kernel.row(x);
    let mut s = 0.0f64;
    for ((&a, &gi), &yy) in result.alpha.iter().zip(idx).zip(y) {
        s += a * yy as f64 * row[gi] as f64;
    }
    s - result.rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_linalg::Mat;

    fn kernel_from_points(xs: &[(f32, f32)]) -> KernelMatrix {
        let l = xs.len();
        KernelMatrix::from_mat(Mat::from_fn(l, l, |r, c| xs[r].0 * xs[c].0 + xs[r].1 * xs[c].1))
    }

    #[test]
    fn two_point_analytic_solution() {
        let k = kernel_from_points(&[(2.0, 0.0), (-2.0, 0.0)]);
        let y = [1.0f32, -1.0];
        let r = train_precomputed(&k, &[0, 1], &y, &LibSvmParams::default());
        assert!((r.alpha[0] - 0.125).abs() < 1e-6, "{:?}", r.alpha);
        assert!((r.alpha[1] - 0.125).abs() < 1e-6);
        assert!(r.rho.abs() < 1e-6);
    }

    #[test]
    fn matches_dense_f32_solver() {
        // The replica and the PhiSVM core must find the same optimum.
        let xs: Vec<(f32, f32)> = (0..20)
            .map(|i| {
                let t = i as f32 * 0.9;
                (t.sin() + if i % 2 == 0 { 1.0 } else { -1.0 }, t.cos() * 0.7)
            })
            .collect();
        let y: Vec<f32> = (0..20).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let k = kernel_from_points(&xs);
        let idx: Vec<usize> = (0..20).collect();

        let r_ref = train_precomputed(&k, &idx, &y, &LibSvmParams::default());
        let sub = k.sub_kernel(&idx);
        let r_opt = crate::smo::solve(
            &sub,
            &y,
            &crate::smo::SmoParams { wss: crate::smo::WssMode::SecondOrder, ..Default::default() },
        );
        assert!(
            (r_ref.objective - r_opt.objective).abs() < 1e-2 * r_ref.objective.abs().max(1.0),
            "objective {} vs {}",
            r_ref.objective,
            r_opt.objective
        );
        assert!((r_ref.rho - r_opt.rho as f64).abs() < 5e-2, "rho {} vs {}", r_ref.rho, r_opt.rho);
    }

    #[test]
    fn respects_subset_training() {
        let xs: Vec<(f32, f32)> = vec![(2.0, 0.0), (9.0, 9.0), (-2.0, 0.0), (-9.0, -9.0)];
        let k = kernel_from_points(&xs);
        // Train only on samples 0 and 2.
        let r = train_precomputed(&k, &[0, 2], &[1.0, -1.0], &LibSvmParams::default());
        // Decisions on the held-out extremes follow their side.
        assert!(decision(&k, &r, &[0, 2], &[1.0, -1.0], 1) > 0.0);
        assert!(decision(&k, &r, &[0, 2], &[1.0, -1.0], 3) < 0.0);
    }

    #[test]
    fn cache_miss_accounting() {
        let xs: Vec<(f32, f32)> = (0..12)
            .map(|i| ((i as f32 * 1.3).sin() * 2.0, if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let y: Vec<f32> = (0..12).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let k = kernel_from_points(&xs);
        let idx: Vec<usize> = (0..12).collect();
        // Tiny cache forces recomputation; big cache should miss at most
        // once per distinct row.
        let small =
            train_precomputed(&k, &idx, &y, &LibSvmParams { cache_rows: 2, ..Default::default() });
        let big = train_precomputed(
            &k,
            &idx,
            &y,
            &LibSvmParams { cache_rows: 1024, ..Default::default() },
        );
        assert_eq!(small.iterations, big.iterations, "cache must not change the math");
        assert!(big.cache_misses <= 12);
        assert!(small.cache_misses >= big.cache_misses);
        for (a, b) in small.alpha.iter().zip(&big.alpha) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn equality_constraint_and_box() {
        let xs: Vec<(f32, f32)> =
            (0..14).map(|i| ((i as f32 - 7.0) * 0.5, (i as f32 * 0.77).sin())).collect();
        let y: Vec<f32> = xs.iter().map(|p| if p.0 >= 0.0 { 1.0 } else { -1.0 }).collect();
        let k = kernel_from_points(&xs);
        let idx: Vec<usize> = (0..14).collect();
        let c = 3.0;
        let r = train_precomputed(&k, &idx, &y, &LibSvmParams { c, ..Default::default() });
        let s: f64 = r.alpha.iter().zip(&y).map(|(a, &yy)| a * yy as f64).sum();
        assert!(s.abs() < 1e-9, "yᵀα = {s}");
        assert!(r.alpha.iter().all(|&a| (-1e-12..=c + 1e-9).contains(&a)));
    }
}
