//! Linear-kernel (Gram) matrix precomputation.
//!
//! FCMA's stage 3 trains one linear SVM per voxel over that voxel's
//! correlation vectors. Because the feature dimension (`N` ≈ 35,000
//! brain voxels) dwarfs the sample count (`M` ≈ a few hundred epochs),
//! the paper precomputes the entire `M × M` kernel matrix
//! `K = X · Xᵀ` once per voxel with a symmetric rank-k update (§3.2),
//! then runs every cross-validation fold against sub-blocks of it. The
//! precompute also collapses a ~60 MB data matrix into a ~160 KB kernel —
//! the memory reduction that lets a coprocessor hold 240 voxels' problems
//! at once (§4.4).

use fcma_linalg::{syrk_dot, syrk_panel, syrk_panel_scratch, Mat, SyrkScratch};
use fcma_trace::span;

/// A precomputed symmetric positive semidefinite Gram matrix over `M`
/// samples.
#[derive(Debug, Clone)]
pub struct KernelMatrix {
    k: Mat,
}

impl KernelMatrix {
    /// Precompute `K = X · Xᵀ` from an `M × N` sample-by-feature matrix
    /// using the paper's optimized panel SYRK.
    pub fn precompute(data: &Mat) -> Self {
        Self::precompute_raw(data.rows(), data.cols(), data.as_slice())
    }

    /// Precompute via the generic library-style SYRK (baseline path).
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn precompute_baseline(data: &Mat) -> Self {
        Self::precompute_baseline_raw(data.rows(), data.cols(), data.as_slice())
    }

    /// [`Self::precompute`] over a raw row-major `m × n` slice (avoids a
    /// copy when the data lives inside a larger buffer, as FCMA's
    /// per-voxel correlation matrices do).
    pub fn precompute_raw(m: usize, n: usize, data: &[f32]) -> Self {
        let _span = span!("svm.kernel.precompute", samples = m, features = n, kernel = "panel");
        let mut k = Mat::zeros(m, m);
        syrk_panel(m, n, data, n, k.as_mut_slice(), m);
        fcma_linalg::debug_assert_finite!(k.as_slice(), "stage3 SYRK kernel precompute");
        KernelMatrix { k }
    }

    /// [`Self::precompute_raw`] reusing caller-provided SYRK scratch —
    /// the per-thread path stage 3 takes when precomputing hundreds of
    /// voxels' kernels back to back (one allocation per worker instead
    /// of one per voxel).
    ///
    /// # Panics
    /// Panics if `scratch` was built for a smaller `m` than `data`'s rows.
    pub fn precompute_raw_with(
        m: usize,
        n: usize,
        data: &[f32],
        scratch: &mut SyrkScratch,
    ) -> Self {
        let _span = span!("svm.kernel.precompute", samples = m, features = n, kernel = "panel");
        let mut k = Mat::zeros(m, m);
        syrk_panel_scratch(m, n, data, n, k.as_mut_slice(), m, scratch);
        fcma_linalg::debug_assert_finite!(k.as_slice(), "stage3 SYRK kernel precompute");
        KernelMatrix { k }
    }

    /// [`Self::precompute_baseline`] over a raw row-major slice.
    pub fn precompute_baseline_raw(m: usize, n: usize, data: &[f32]) -> Self {
        let _span = span!("svm.kernel.precompute", samples = m, features = n, kernel = "dot");
        let mut k = Mat::zeros(m, m);
        syrk_dot(m, n, data, n, k.as_mut_slice(), m);
        fcma_linalg::debug_assert_finite!(k.as_slice(), "stage3 baseline kernel precompute");
        KernelMatrix { k }
    }

    /// Wrap an existing symmetric matrix as a kernel.
    ///
    /// # Panics
    /// Panics if the matrix is not square or departs from symmetry by more
    /// than a small tolerance.
    pub fn from_mat(k: Mat) -> Self {
        assert_eq!(k.rows(), k.cols(), "KernelMatrix: not square");
        for i in 0..k.rows() {
            for j in 0..i {
                let d = (k.get(i, j) - k.get(j, i)).abs();
                let scale = k.get(i, i).abs().max(k.get(j, j).abs()).max(1.0);
                assert!(
                    d <= 1e-3 * scale,
                    "KernelMatrix: asymmetric at ({i},{j}): {} vs {}",
                    k.get(i, j),
                    k.get(j, i)
                );
            }
        }
        KernelMatrix { k }
    }

    /// Number of samples `M`.
    pub fn n(&self) -> usize {
        self.k.rows()
    }

    /// Full kernel row for sample `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        self.k.row(i)
    }

    /// Diagonal entry `K[i, i]`.
    #[inline]
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn diag(&self, i: usize) -> f32 {
        self.k.get(i, i)
    }

    /// Extract the dense sub-kernel over `idx × idx` (one CV fold's
    /// training block). Contiguous output keeps the SMO hot loops
    /// vectorizable.
    ///
    /// # Panics
    /// If any index in `idx` is out of range for the kernel.
    pub fn sub_kernel(&self, idx: &[usize]) -> Mat {
        let l = idx.len();
        let mut out = Mat::zeros(l, l);
        for (a, &ia) in idx.iter().enumerate() {
            let src = self.k.row(ia);
            let dst = out.row_mut(a);
            for (b, &ib) in idx.iter().enumerate() {
                dst[b] = src[ib];
            }
        }
        out
    }

    /// Underlying matrix (for inspection / serialization).
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn as_mat(&self) -> &Mat {
        &self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Mat {
        Mat::from_fn(6, 40, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.21 - 1.2)
    }

    #[test]
    fn precompute_matches_baseline() {
        let x = samples();
        let a = KernelMatrix::precompute(&x);
        let b = KernelMatrix::precompute_baseline(&x);
        assert!(a.as_mat().max_abs_diff(b.as_mat()) < 1e-3);
    }

    #[test]
    fn precompute_with_scratch_is_bit_identical() {
        let x = samples();
        let fresh = KernelMatrix::precompute(&x);
        let mut scratch = SyrkScratch::new(x.rows(), fcma_linalg::PANEL_K);
        for _round in 0..2 {
            let reused =
                KernelMatrix::precompute_raw_with(x.rows(), x.cols(), x.as_slice(), &mut scratch);
            for (r, f) in reused.as_mat().as_slice().iter().zip(fresh.as_mat().as_slice()) {
                assert_eq!(r.to_bits(), f.to_bits());
            }
        }
    }

    #[test]
    fn kernel_is_gram_matrix() {
        let x = samples();
        let k = KernelMatrix::precompute(&x);
        for i in 0..x.rows() {
            for j in 0..x.rows() {
                let want = fcma_linalg::dot(x.row(i), x.row(j));
                assert!((k.row(i)[j] - want).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn diag_is_squared_norm() {
        let x = samples();
        let k = KernelMatrix::precompute(&x);
        for i in 0..x.rows() {
            let want: f32 = x.row(i).iter().map(|v| v * v).sum();
            assert!((k.diag(i) - want).abs() < 1e-3);
        }
    }

    #[test]
    fn sub_kernel_selects_rows_and_cols() {
        let x = samples();
        let k = KernelMatrix::precompute(&x);
        let idx = [4usize, 0, 2];
        let s = k.sub_kernel(&idx);
        assert_eq!(s.rows(), 3);
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(s.get(a, b), k.row(idx[a])[idx[b]]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not square")]
    fn from_mat_rejects_rectangular() {
        let _ = KernelMatrix::from_mat(Mat::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn from_mat_rejects_asymmetric() {
        let mut m = Mat::zeros(2, 2);
        m.set(0, 1, 1.0);
        m.set(1, 0, -1.0);
        let _ = KernelMatrix::from_mat(m);
    }
}
