//! PhiSVM — the paper's optimized SVM solver, and the "optimized LibSVM"
//! comparison point (Table 8).
//!
//! Both are thin assemblies over the dense `f32` SMO core in
//! [`crate::smo`]:
//!
//! * **PhiSVM** = dense `f32` + precomputed kernel + *adaptive*
//!   working-set selection (first- vs second-order chosen by measured
//!   convergence rate, §4.4);
//! * **optimized LibSVM** = the paper's intermediate data point: LibSVM's
//!   algorithm (fixed second-order selection) but with the `f64`→`f32`
//!   conversion and dense, vectorization-friendly layout applied.

use crate::kernel::KernelMatrix;
use crate::model::SvmModel;
use crate::smo::{solve, SmoParams, WssMode};

/// Train PhiSVM on the samples `idx` (global kernel indices) with targets
/// `y` (±1, parallel to `idx`).
pub fn train_phisvm(
    kernel: &KernelMatrix,
    idx: &[usize],
    y: &[f32],
    params: &SmoParams,
) -> SvmModel {
    train_dense(kernel, idx, y, &SmoParams { wss: params.wss, ..*params })
}

/// Train the "optimized LibSVM" variant: identical machinery with the
/// working-set heuristic pinned to LibSVM's second-order rule.
pub(crate) fn train_optimized_libsvm(
    kernel: &KernelMatrix,
    idx: &[usize],
    y: &[f32],
    params: &SmoParams,
) -> SvmModel {
    train_dense(kernel, idx, y, &SmoParams { wss: WssMode::SecondOrder, ..*params })
}

fn train_dense(kernel: &KernelMatrix, idx: &[usize], y: &[f32], params: &SmoParams) -> SvmModel {
    assert_eq!(idx.len(), y.len(), "train: idx/targets length mismatch");
    let sub = kernel.sub_kernel(idx);
    let r = solve(&sub, y, params);
    let alpha_y: Vec<f32> = r.alpha.iter().zip(y).map(|(a, yy)| a * yy).collect();
    SvmModel {
        train_idx: idx.to_vec(),
        alpha_y,
        rho: r.rho,
        objective: r.objective,
        iterations: r.iterations,
        wss: r.wss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_linalg::Mat;

    fn toy_kernel() -> (KernelMatrix, Vec<f32>) {
        let xs: Vec<(f32, f32)> = (0..16)
            .map(|i| {
                let t = i as f32 * 0.8;
                (t.sin() * 0.5 + if i % 2 == 0 { 1.5 } else { -1.5 }, t.cos())
            })
            .collect();
        let y: Vec<f32> = (0..16).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let k = KernelMatrix::from_mat(Mat::from_fn(16, 16, |r, c| {
            xs[r].0 * xs[c].0 + xs[r].1 * xs[c].1
        }));
        (k, y)
    }

    #[test]
    fn phisvm_separates_separable_data() {
        let (k, y) = toy_kernel();
        let idx: Vec<usize> = (0..16).collect();
        let m = train_phisvm(&k, &idx, &y, &SmoParams::default());
        let acc = m.accuracy(&k, &idx, &y);
        assert_eq!(acc, 1.0, "training accuracy on separable data");
        assert!(m.n_support() >= 2);
    }

    #[test]
    fn optimized_libsvm_agrees_with_phisvm() {
        let (k, y) = toy_kernel();
        let idx: Vec<usize> = (0..16).collect();
        let a = train_phisvm(&k, &idx, &y, &SmoParams::default());
        let b = train_optimized_libsvm(&k, &idx, &y, &SmoParams::default());
        assert!(
            (a.objective - b.objective).abs() < 1e-2 * a.objective.abs().max(1.0),
            "{} vs {}",
            a.objective,
            b.objective
        );
        for t in 0..16 {
            assert_eq!(a.predict(&k, t), b.predict(&k, t), "prediction differs at {t}");
        }
    }

    #[test]
    fn optimized_libsvm_never_uses_first_order() {
        let (k, y) = toy_kernel();
        let idx: Vec<usize> = (0..16).collect();
        let m = train_optimized_libsvm(&k, &idx, &y, &SmoParams::default());
        assert_eq!(m.wss.first_order_iters, 0);
        assert!(m.wss.second_order_iters > 0);
    }

    #[test]
    fn subset_training_generalizes_on_toy() {
        let (k, y) = toy_kernel();
        let train: Vec<usize> = (0..12).collect();
        let test: Vec<usize> = (12..16).collect();
        let m = train_phisvm(&k, &train, &y[..12], &SmoParams::default());
        let acc = m.accuracy(&k, &test, &y[12..]);
        assert!(acc >= 0.75, "held-out accuracy {acc}");
    }
}
