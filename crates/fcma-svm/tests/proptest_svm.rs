//! Property-based tests for the SVM solvers: optimizer invariants (KKT,
//! feasibility), cross-solver agreement, and prediction invariances.

use fcma_linalg::Mat;
use fcma_svm::reference::{train_precomputed, LibSvmParams};
use fcma_svm::smo::{solve, SmoParams, WssMode};
use fcma_svm::KernelMatrix;
use proptest::prelude::*;

/// Random linearly-structured 2-D problem: points around ±(1,0) with
/// class-dependent offset and noise; labels alternate.
fn problem_strategy() -> impl Strategy<Value = (Vec<(f32, f32)>, Vec<f32>)> {
    (4usize..24, 0.0f32..1.5, any::<u64>()).prop_map(|(l, noise, seed)| {
        let l = l * 2; // even, both classes
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let mut pts = Vec::with_capacity(l);
        let mut y = Vec::with_capacity(l);
        for i in 0..l {
            let side = if i % 2 == 0 { 1.0f32 } else { -1.0 };
            pts.push((side * 1.0 + noise * next(), noise * next()));
            y.push(side);
        }
        (pts, y)
    })
}

fn kernel_of(pts: &[(f32, f32)]) -> Mat {
    Mat::from_fn(pts.len(), pts.len(), |r, c| pts[r].0 * pts[c].0 + pts[r].1 * pts[c].1 + 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Dual feasibility: 0 ≤ α ≤ C and yᵀα = 0 at every returned solution.
    #[test]
    fn solution_is_always_feasible((pts, y) in problem_strategy(), c in 0.1f32..10.0) {
        let k = kernel_of(&pts);
        let r = solve(&k, &y, &SmoParams { c, ..Default::default() });
        let mut ydota = 0.0f64;
        for (a, yy) in r.alpha.iter().zip(&y) {
            prop_assert!((-1e-6..=c as f64 + 1e-5).contains(&(*a as f64)), "alpha {a}");
            ydota += *a as f64 * *yy as f64;
        }
        prop_assert!(ydota.abs() < 1e-3, "yᵀα = {ydota}");
    }

    /// The dual objective at the solution is ≤ 0 (α = 0 is feasible with
    /// objective 0, and the solver minimizes).
    #[test]
    fn objective_never_positive((pts, y) in problem_strategy()) {
        let k = kernel_of(&pts);
        let r = solve(&k, &y, &SmoParams::default());
        prop_assert!(r.objective <= 1e-9, "objective {}", r.objective);
    }

    /// All three working-set heuristics land near the same optimum. The
    /// band is loose for first-order: in f32 its maximal-violating-pair
    /// steps can crawl near the optimum and the numeric stall guard stops
    /// it a few percent short — the very weakness second-order/adaptive
    /// selection exists to fix.
    #[test]
    fn wss_modes_agree_on_objective((pts, y) in problem_strategy()) {
        let k = kernel_of(&pts);
        let p = SmoParams { eps: 1e-4, ..Default::default() };
        let o1 = solve(&k, &y, &SmoParams { wss: WssMode::FirstOrder, ..p }).objective;
        let o2 = solve(&k, &y, &SmoParams { wss: WssMode::SecondOrder, ..p }).objective;
        let oa = solve(&k, &y, &SmoParams { wss: WssMode::Adaptive, ..p }).objective;
        let loose = 0.12 * o2.abs().max(1e-2);
        prop_assert!((o1 - o2).abs() < loose, "first {o1} vs second {o2}");
        prop_assert!((oa - o2).abs() < loose, "adaptive {oa} vs second {o2}");
        // Neither alternative may report a *better* (lower) objective than
        // second-order by more than numeric noise — they solve the same
        // dual, so a large advantage would signal a bookkeeping bug.
        prop_assert!(o1 >= o2 - 1e-2 * o2.abs().max(1e-2));
        prop_assert!(oa >= o2 - 1e-2 * o2.abs().max(1e-2));
    }

    /// The f64 LibSVM replica and the f32 dense solver agree.
    #[test]
    fn replica_agrees_with_dense_solver((pts, y) in problem_strategy()) {
        let k = KernelMatrix::from_mat(kernel_of(&pts));
        let idx: Vec<usize> = (0..y.len()).collect();
        let r_ref = train_precomputed(&k, &idx, &y, &LibSvmParams::default());
        let r_opt = solve(
            &k.sub_kernel(&idx),
            &y,
            &SmoParams { wss: WssMode::SecondOrder, ..Default::default() },
        );
        let tol = 6e-2 * r_ref.objective.abs().max(1e-2);
        prop_assert!(
            (r_ref.objective - r_opt.objective).abs() < tol,
            "replica {} vs dense {}",
            r_ref.objective,
            r_opt.objective
        );
    }

    /// Label flip symmetry: negating all targets negates rho and preserves
    /// alphas (the dual is symmetric under y → −y).
    #[test]
    fn label_flip_symmetry((pts, y) in problem_strategy()) {
        let k = kernel_of(&pts);
        let p = SmoParams { wss: WssMode::SecondOrder, ..Default::default() };
        let r1 = solve(&k, &y, &p);
        let y_neg: Vec<f32> = y.iter().map(|v| -v).collect();
        let r2 = solve(&k, &y_neg, &p);
        prop_assert!((r1.objective - r2.objective).abs() < 5e-2 * r1.objective.abs().max(1e-2));
        // rho is only determined up to the free-SV bracket on degenerate
        // problems; allow a loose symmetric band.
        prop_assert!((r1.rho + r2.rho).abs() < 0.35, "rho {} vs {}", r1.rho, r2.rho);
    }

    /// Kernel scaling: K → s·K with C → C (linear kernel scaling) keeps
    /// s·α constant-ish at the optimum in the interior regime: verify via
    /// invariance of the *decision signs* instead, which must be stable.
    #[test]
    fn kernel_scaling_preserves_separability(
        (pts, y) in problem_strategy(),
        scale in 0.5f32..8.0,
    ) {
        let k1 = kernel_of(&pts);
        let k2 = Mat::from_fn(k1.rows(), k1.cols(), |r, c| k1.get(r, c) * scale);
        // C scaled inversely keeps the solution proportional.
        let r1 = solve(&k1, &y, &SmoParams { c: 1.0, ..Default::default() });
        let r2 = solve(&k2, &y, &SmoParams { c: 1.0 / scale, ..Default::default() });
        // Training-set decision signs must match between the two.
        let decide = |k: &Mat, r: &fcma_svm::smo::SolveResult, t: usize| -> f32 {
            let mut s = 0.0;
            for (i, (&a, &yy)) in r.alpha.iter().zip(&y).enumerate() {
                s += a * yy * k.get(i, t);
            }
            s - r.rho
        };
        let mut agree = 0;
        for t in 0..y.len() {
            let d1 = decide(&k1, &r1, t);
            let d2 = decide(&k2, &r2, t);
            if d1.signum() == d2.signum() || d1.abs() < 1e-3 || d2.abs() < 1e-3 {
                agree += 1;
            }
        }
        prop_assert!(agree * 10 >= y.len() * 9, "{agree}/{} sign agreements", y.len());
    }

    /// Duplicating every training sample must not change the learned
    /// decision function's signs (with C halved to keep the same
    /// effective regularization budget per original point).
    #[test]
    fn sample_duplication_invariance((pts, y) in problem_strategy()) {
        let l = y.len();
        let mut pts2 = pts.clone();
        pts2.extend_from_slice(&pts);
        let mut y2 = y.clone();
        y2.extend_from_slice(&y);
        let k1 = kernel_of(&pts);
        let k2 = kernel_of(&pts2);
        let r1 = solve(&k1, &y, &SmoParams { c: 1.0, ..Default::default() });
        let r2 = solve(&k2, &y2, &SmoParams { c: 0.5, ..Default::default() });
        let d1 = |t: usize| -> f32 {
            let mut s = 0.0;
            for (i, (&a, &yy)) in r1.alpha.iter().zip(&y).enumerate() {
                s += a * yy * k1.get(i, t);
            }
            s - r1.rho
        };
        let d2 = |t: usize| -> f32 {
            let mut s = 0.0;
            for (i, (&a, &yy)) in r2.alpha.iter().zip(&y2).enumerate() {
                s += a * yy * k2.get(i, t);
            }
            s - r2.rho
        };
        let mut agree = 0;
        for t in 0..l {
            let (a, b) = (d1(t), d2(t));
            if a.signum() == b.signum() || a.abs() < 1e-3 || b.abs() < 1e-3 {
                agree += 1;
            }
        }
        prop_assert!(agree * 10 >= l * 9, "{agree}/{l} sign agreements");
    }
}
