//! Model-checking the flight recorder's per-slot seqlock.
//!
//! The recorder's ring words are `fcma-sync` facade atomics, so under
//! the model checker every store and load is a scheduling point: the
//! writer's five-store publish protocol and the reader's bracketed
//! copy are explored at single-word granularity. Two properties:
//!
//! - **No torn payload** — driving the *real*
//!   [`fcma_trace::recorder`] ring (writer wrapping a small ring,
//!   reader snapshotting concurrently), every decoded event is
//!   internally consistent under every explored interleaving, and once
//!   the writer quiesces its ring yields exactly the newest
//!   `capacity` events.
//! - **The protocol is load-bearing** — a local re-implementation of
//!   the same seqlock with the second sequence bump dropped (the
//!   even-version publish that marks the slot valid) is caught by the
//!   checker: the reader's validity check never accepts the slot, so
//!   the quiescent-completeness assertion trips and the checker
//!   reports the panic with a replayable schedule.
//!
//! The same dropped-bump mutant is also caught statically: the
//! `atomicorder` audit pass checks the writer publishes the §16
//! seqlock version word exactly twice.

use std::sync::Arc;

use fcma_mc::{check, check_random, Config, FailureKind};
use fcma_sync::atomic::{AtomicU64, Ordering};
use fcma_sync::{channel, thread};
use fcma_trace::recorder;
use fcma_trace::TraceOrigin;

/// Payload relation every decoded event must satisfy: the writer only
/// ever records `arg = task * TAG`.
const TAG: u64 = 1000;

/// Events the writer pushes; more than the ring holds, so the writer
/// laps the reader and overwrite skipping is exercised.
const WRITES: u64 = 12;

/// Small bounds: the seqlock root has hundreds of scheduling points,
/// so exhaustive DFS is hopeless — explore a bounded slice of the
/// interleaving space and a batch of random walks on top.
fn cfg() -> Config {
    Config { max_preemptions: 1, max_executions: 192, ..Config::default() }
}

/// Writer thread pushes `WRITES` events through the real recorder
/// (wrapping its ring), while the root snapshots concurrently and
/// checks every decoded event for torn payloads. The registry
/// accumulates rings across executions and tests in this binary; the
/// payload relation holds for every event ever written, so asserting
/// the relation (rather than counts) stays sound.
fn recorder_root() {
    recorder::set_capacity(8);
    recorder::set_enabled(true);
    let (tx, rx) = channel::unbounded();
    thread::spawn(move || {
        for i in 1..=WRITES {
            recorder::record("recorder.dispatch", i, 0, TraceOrigin::Dispatch, i * TAG);
        }
        // Quiescent completeness on this thread's own ring: the newest
        // `capacity` events survive, in order, untorn.
        let ring = recorder::current_ring().expect("writer has recorded");
        let events = ring.snapshot();
        let cap = u64::try_from(ring.capacity()).expect("small capacity");
        assert_eq!(
            events.len(),
            usize::try_from(cap.min(WRITES)).expect("small count"),
            "a quiescent ring must yield exactly min(written, capacity) events"
        );
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq, WRITES - cap + u64::try_from(i).expect("small index"));
            assert_eq!(ev.arg, ev.task * TAG, "torn payload in quiescent snapshot: {ev:?}");
        }
        tx.send(()).expect("root is alive");
    });
    // Concurrent reader: merged snapshots while the writer is mid-push.
    for _ in 0..2 {
        for ev in recorder::snapshot().events {
            assert_eq!(ev.arg, ev.task * TAG, "torn payload in concurrent snapshot: {ev:?}");
        }
    }
    rx.recv().expect("writer finishes");
}

#[test]
fn recorder_seqlock_has_no_torn_payloads_under_dfs() {
    let outcome = check(&cfg(), recorder_root);
    assert!(
        outcome.failure().is_none(),
        "recorder seqlock must survive explored interleavings: {:?}",
        outcome.failure()
    );
}

#[test]
fn recorder_seqlock_has_no_torn_payloads_under_random_walks() {
    let outcome = check_random(&cfg(), 0x5e91_0c4a, recorder_root);
    assert!(
        outcome.failure().is_none(),
        "recorder seqlock must survive random schedules: {:?}",
        outcome.failure()
    );
}

/// A local copy of the recorder's slot protocol, three words per slot
/// (version, task, arg), with the even-version publish made optional so
/// the dropped-second-bump mutant can be armed.
struct SlotRing {
    head: AtomicU64,
    words: Vec<AtomicU64>,
    capacity: u64,
    bump_even: bool,
}

const WORDS: usize = 3;

impl SlotRing {
    fn new(capacity: u64, bump_even: bool) -> SlotRing {
        let mut words = Vec::new();
        for _ in 0..usize::try_from(capacity).expect("small capacity") * WORDS {
            words.push(AtomicU64::new(0));
        }
        SlotRing { head: AtomicU64::new(0), words, capacity, bump_even }
    }

    fn slot(&self, seq: u64) -> &[AtomicU64] {
        let base = usize::try_from(seq % self.capacity).expect("bounded") * WORDS;
        &self.words[base..base + WORDS]
    }

    fn push(&self, task: u64, arg: u64) {
        let seq = self.head.load(Ordering::Relaxed);
        let [ver, w_task, w_arg] = self.slot(seq) else { unreachable!() };
        ver.store(2 * seq + 1, Ordering::Release);
        w_task.store(task, Ordering::Relaxed);
        w_arg.store(arg, Ordering::Relaxed);
        if self.bump_even {
            ver.store(2 * seq, Ordering::Release);
        }
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Seqlock reader: a slot counts only when its version reads
    /// `2·seq` both before and after the payload copy.
    fn snapshot(&self) -> Vec<(u64, u64, u64)> {
        let head = self.head.load(Ordering::Acquire);
        let lo = head.saturating_sub(self.capacity);
        let mut out = Vec::new();
        for seq in lo..head {
            let [ver, w_task, w_arg] = self.slot(seq) else { unreachable!() };
            if ver.load(Ordering::Acquire) != 2 * seq {
                continue;
            }
            let task = w_task.load(Ordering::Relaxed);
            let arg = w_arg.load(Ordering::Relaxed);
            if ver.load(Ordering::Acquire) != 2 * seq {
                continue;
            }
            out.push((seq, task, arg));
        }
        out
    }
}

/// Root driving a [`SlotRing`]: writer pushes 6 events into a
/// 4-slot ring, the root reads concurrently (torn slots skipped), and
/// after the writer quiesces the newest `capacity` events must all be
/// present and untorn.
fn slot_ring_root(bump_even: bool) {
    let ring = Arc::new(SlotRing::new(4, bump_even));
    let writer = Arc::clone(&ring);
    let (tx, rx) = channel::unbounded();
    thread::spawn(move || {
        for i in 1..=6u64 {
            writer.push(i, i * TAG);
        }
        tx.send(()).expect("root is alive");
    });
    for (_, task, arg) in ring.snapshot() {
        assert_eq!(arg, task * TAG, "torn payload in concurrent snapshot");
    }
    rx.recv().expect("writer finishes");
    let quiescent = ring.snapshot();
    assert_eq!(quiescent.len(), 4, "a quiescent ring must yield its newest capacity events");
    for (seq, task, arg) in quiescent {
        assert_eq!(task, seq + 1, "slot holds the wrong event");
        assert_eq!(arg, task * TAG, "torn payload in quiescent snapshot");
    }
}

#[test]
fn intact_slot_ring_passes_the_checker() {
    let outcome = check(&cfg(), || slot_ring_root(true));
    assert!(
        outcome.failure().is_none(),
        "the faithful protocol copy must pass: {:?}",
        outcome.failure()
    );
}

#[test]
fn dropped_second_bump_mutant_is_caught() {
    let outcome = check(&cfg(), || slot_ring_root(false));
    let failure = outcome.failure().expect("the armed mutant must fail under the checker");
    assert!(
        matches!(failure.kind, FailureKind::Panic { .. }),
        "expected the quiescent-completeness assertion to trip: {failure}"
    );
    assert!(!failure.schedule.is_empty(), "the counterexample must be replayable");
}
