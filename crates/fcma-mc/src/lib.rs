//! A concurrency model checker for code written against the
//! `fcma-sync` facade.
//!
//! The checker runs a closure repeatedly, each time under a cooperative
//! scheduler that serializes its threads: every facade operation (lock,
//! unlock, condvar wait/notify, channel send/recv, atomic access,
//! spawn, sleep) is a *choice point* where the scheduler decides which
//! thread runs next. Time is virtual — a `recv_timeout` deadline fires
//! exactly when the model advances the clock, never because the wall
//! clock drifted. Three exploration modes:
//!
//! - [`check`]: bounded-preemption depth-first search in the style of
//!   CHESS. The first execution follows the non-preempting schedule;
//!   backtracking then systematically flips the latest scheduling
//!   decision, bounding the number of *preemptions* (switching away
//!   from a runnable thread) per execution by
//!   [`Config::max_preemptions`].
//! - [`check_random`]: seeded random walks, like the existing chaos
//!   harness but over schedules instead of fault plans.
//! - [`replay`]: re-run one exact schedule — the `schedule` vector
//!   printed in every failure report feeds straight back in, making
//!   each counterexample reproducible.
//!
//! Built-in detectors: global deadlock (no thread can run and no timer
//! is pending, with a lost-wakeup classification when the blocked
//! threads wait on condvars whose notifications fired with no waiter),
//! double completion (a [`fcma_sync::runtime::report_completion`] key
//! observed twice), send-after-close (a send on a channel whose
//! receivers are gone), and thread panics (assertion failures inside
//! the checked closure). A failure aborts and drains the execution and
//! carries the full decision trace.

pub mod mutants;
mod sched;

#[cfg(test)]
mod tests;

use std::fmt;

use sched::{run_once, Chooser, RunResult};

/// Exploration bounds and detector switches.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum preemptions (switches away from a runnable thread) per
    /// execution explored by [`check`]; the bound in "bounded DFS".
    pub max_preemptions: usize,
    /// Executions after which exploration stops reporting
    /// [`Outcome::Pass`] with `complete: false`.
    pub max_executions: usize,
    /// Scheduling steps per execution before a [`FailureKind::StepLimit`]
    /// failure (a livelock backstop).
    pub max_steps: usize,
    /// Treat a send on a receiver-less channel as a failure. Off by
    /// default: the shipped scheduler tolerates sends to workers that
    /// already exited.
    pub fail_on_send_after_close: bool,
    /// Treat a duplicate completion key as a failure.
    pub fail_on_double_completion: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_preemptions: 2,
            max_executions: 4096,
            max_steps: 1_000_000,
            fail_on_send_after_close: false,
            fail_on_double_completion: true,
        }
    }
}

/// Result of an exploration.
#[derive(Debug)]
pub enum Outcome {
    /// No explored schedule failed.
    Pass {
        /// Executions actually run.
        executions: usize,
        /// `true` when the bounded search space was exhausted (rather
        /// than stopping at [`Config::max_executions`]).
        complete: bool,
    },
    /// A schedule failed; the report is replayable.
    Fail(Box<Failure>),
}

impl Outcome {
    /// The failure report, if any.
    pub fn failure(&self) -> Option<&Failure> {
        match self {
            Outcome::Pass { .. } => None,
            Outcome::Fail(f) => Some(f),
        }
    }
}

/// A failed execution: what went wrong, and the exact schedule that
/// makes it happen again.
#[derive(Debug)]
pub struct Failure {
    /// The defect class.
    pub kind: FailureKind,
    /// Choice index per decision point; feed to [`replay`].
    pub schedule: Vec<usize>,
    /// Human-readable decision-by-decision trace.
    pub trace: String,
    /// Executions run before (and including) the failing one.
    pub executions: usize,
}

/// The classes of defect the checker detects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// No thread can run and no timer is pending.
    Deadlock {
        /// One line per stuck thread.
        blocked: Vec<String>,
        /// Every stuck thread waits on a condvar that was notified
        /// while it had no waiter — the classic lost wakeup.
        lost_wakeup: bool,
    },
    /// A thread panicked (assertion failure in the checked closure).
    Panic {
        /// Model thread id.
        thread: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A completion key was reported twice.
    DoubleCompletion {
        /// The duplicated key.
        key: u64,
    },
    /// A send on a channel with no receivers left.
    SendAfterClose {
        /// Facade object id of the channel.
        channel: u64,
    },
    /// An execution exceeded [`Config::max_steps`].
    StepLimit,
    /// A prescribed schedule did not match the execution (the checked
    /// closure is not deterministic).
    ReplayDiverged {
        /// Decision index where the prescription ran out of candidates.
        at: usize,
    },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::Deadlock { blocked, lost_wakeup } => {
                writeln!(f, "deadlock: no thread can run and no timer is pending")?;
                if *lost_wakeup {
                    writeln!(f, "  (lost wakeup: notifications fired with no waiter)")?;
                }
                for line in blocked {
                    writeln!(f, "  {line}")?;
                }
            }
            FailureKind::Panic { thread, message } => {
                writeln!(f, "panic on model thread t{thread}: {message}")?;
            }
            FailureKind::DoubleCompletion { key } => {
                writeln!(f, "double completion: key {key} reported twice")?;
            }
            FailureKind::SendAfterClose { channel } => {
                writeln!(f, "send after close on channel #{channel}")?;
            }
            FailureKind::StepLimit => writeln!(f, "step limit exceeded (livelock?)")?,
            FailureKind::ReplayDiverged { at } => {
                writeln!(f, "replay diverged at decision {at}: closure is not deterministic")?;
            }
        }
        writeln!(f, "found after {} execution(s)", self.executions)?;
        writeln!(f, "replayable schedule: {:?}", self.schedule)?;
        write!(f, "decision trace:\n{}", self.trace)
    }
}

/// Bounded-preemption depth-first exploration of `root`'s schedules.
///
/// `root` must be deterministic given a schedule: fresh state per call,
/// no real time, no ambient randomness. Returns on the first failing
/// schedule, or passes once the bounded space (or execution budget) is
/// exhausted.
pub fn check<F>(cfg: &Config, root: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    // One DFS node per decision point on the current path.
    struct Node {
        n_candidates: usize,
        from_idx: Option<usize>,
        preemptions_before: usize,
        first_choice: usize,
        next_try: usize,
    }
    impl Node {
        fn next_alternative(&mut self, max_preemptions: usize) -> Option<usize> {
            while self.next_try < self.n_candidates {
                let c = self.next_try;
                self.next_try += 1;
                if c == self.first_choice {
                    continue;
                }
                let cost = usize::from(self.from_idx.is_some() && Some(c) != self.from_idx);
                if self.preemptions_before + cost > max_preemptions {
                    continue;
                }
                return Some(c);
            }
            None
        }
    }

    let root = std::sync::Arc::new(root);
    let mut path: Vec<Node> = Vec::new();
    let mut schedule: Vec<usize> = Vec::new();
    let mut executions = 0;
    loop {
        if executions >= cfg.max_executions {
            return Outcome::Pass { executions, complete: false };
        }
        let run = run_once(cfg, Chooser::Dfs, &schedule, &root);
        executions += 1;
        if run.failure.is_some() {
            return Outcome::Fail(to_failure(run, executions));
        }
        for d in &run.decisions[path.len()..] {
            path.push(Node {
                n_candidates: d.n_candidates,
                from_idx: d.from_idx,
                preemptions_before: d.preemptions_before,
                first_choice: d.chosen,
                next_try: 0,
            });
            schedule.push(d.chosen);
        }
        let mut advanced = false;
        while let Some(node) = path.last_mut() {
            if let Some(alt) = node.next_alternative(cfg.max_preemptions) {
                schedule.truncate(path.len() - 1);
                schedule.push(alt);
                advanced = true;
                break;
            }
            path.pop();
            schedule.pop();
        }
        if !advanced {
            return Outcome::Pass { executions, complete: true };
        }
    }
}

/// Seeded random-walk exploration: `cfg.max_executions` independent
/// schedules drawn from `seed`.
pub fn check_random<F>(cfg: &Config, seed: u64, root: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let root = std::sync::Arc::new(root);
    for i in 0..cfg.max_executions {
        let step = u64::try_from(i).unwrap_or(u64::MAX).wrapping_add(1);
        let walk_seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(step));
        let run = run_once(cfg, Chooser::Random(walk_seed), &[], &root);
        if run.failure.is_some() {
            return Outcome::Fail(to_failure(run, i + 1));
        }
    }
    Outcome::Pass { executions: cfg.max_executions, complete: false }
}

/// Re-run `root` under one exact schedule (as printed in a
/// [`Failure`]); decisions past the end of `schedule` follow the
/// non-preempting default.
pub fn replay<F>(cfg: &Config, schedule: &[usize], root: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let root = std::sync::Arc::new(root);
    let run = run_once(cfg, Chooser::Dfs, schedule, &root);
    if run.failure.is_some() {
        Outcome::Fail(to_failure(run, 1))
    } else {
        Outcome::Pass { executions: 1, complete: false }
    }
}

/// Convert a failed run into its report.
fn to_failure(run: RunResult, executions: usize) -> Box<Failure> {
    let schedule: Vec<usize> = run.decisions.iter().map(|d| d.chosen).collect();
    let kind = run.failure.unwrap_or(FailureKind::StepLimit);
    Box::new(Failure { kind, schedule, trace: run.trace, executions })
}
