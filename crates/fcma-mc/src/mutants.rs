//! Bounded kill attempts for the concurrency mutants `fcma-mut` seeds.
//!
//! The static passes and the tier-1 tests cannot kill every mutant
//! class: a deleted lock or a skipped seqlock publish is a *race*, and
//! a deterministic test observes it only by luck. This module gives the
//! mutation engine a third oracle — drive a small model of the mutated
//! protocol through the checker's bounded-preemption DFS and see
//! whether any explored schedule fails.
//!
//! The models are deliberately tiny ports of the real protocols (the
//! recorder's three-word slot seqlock, a facade-mutex counter), with
//! the mutation armed as a constructor flag — the same pattern as the
//! dropped-second-bump test in `tests/seqlock.rs`. Honesty matters
//! here: the checker serializes every execution, which makes it
//! *sequentially consistent by construction*. It can catch mutants
//! whose damage shows up under SC interleavings (a skipped publish, an
//! elided lock) but is **blind to ordering strength** — `Relaxed` and
//! `Release` generate the same SC executions, so weakening an
//! `Ordering` honestly reports "not killed" and the kill credit for the
//! `ordering-weaken` class belongs to the static `atomicorder` pass
//! alone. [`KillAttempt::detail`] spells out which of the two cases
//! applied, and the report surfaces it.

use std::sync::Arc;

use crate::{check, Config, FailureKind};
use fcma_sync::atomic::{AtomicU64, Ordering};
use fcma_sync::{channel, thread, Mutex};

/// The concurrency-mutant shapes the checker can attempt to kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMutant {
    /// The writer's even-version publish (second bump) is dropped, so
    /// no slot is ever marked valid. SC-visible: killable.
    SeqlockSkipSecondBump,
    /// The writer's version stores are weakened to `Relaxed`.
    /// SC-invisible: the checker honestly reports not killed.
    SeqlockRelaxedPublish,
    /// The reader's bracketing version loads are weakened to `Relaxed`.
    /// SC-invisible: the checker honestly reports not killed.
    SeqlockRelaxedReaderCheck,
    /// A shared counter's mutex acquisition is elided, turning its
    /// read-modify-write into a racy load/store pair. SC-visible: a
    /// lost update appears within one preemption.
    LockElision,
}

impl ProtocolMutant {
    /// Every shape, for exercising the whole battery.
    pub const ALL: &'static [ProtocolMutant] = &[
        ProtocolMutant::SeqlockSkipSecondBump,
        ProtocolMutant::SeqlockRelaxedPublish,
        ProtocolMutant::SeqlockRelaxedReaderCheck,
        ProtocolMutant::LockElision,
    ];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolMutant::SeqlockSkipSecondBump => "seqlock-skip-second-bump",
            ProtocolMutant::SeqlockRelaxedPublish => "seqlock-relaxed-publish",
            ProtocolMutant::SeqlockRelaxedReaderCheck => "seqlock-relaxed-reader-check",
            ProtocolMutant::LockElision => "lock-elision",
        }
    }
}

/// Result of one bounded kill attempt.
#[derive(Debug, Clone)]
pub struct KillAttempt {
    /// Did any explored schedule fail?
    pub killed: bool,
    /// Executions the checker ran.
    pub executions: usize,
    /// What happened, for the kill-matrix report: the failure class and
    /// schedule length on a kill, or why the checker cannot see this
    /// mutant on a miss.
    pub detail: String,
}

/// Attempt to kill `mutant` under `cfg`'s exploration bounds.
///
/// The seqlock shapes drive [`slot_ring_root`]; [`ProtocolMutant::LockElision`]
/// drives [`counter_root`]. A `killed: false` result for the two
/// `Relaxed` weakenings is the expected, honest answer — see the module
/// docs — and the returned detail says so.
pub fn attempt(mutant: ProtocolMutant, cfg: &Config) -> KillAttempt {
    let outcome = match mutant {
        ProtocolMutant::LockElision => check(cfg, || counter_root(false)),
        m => check(cfg, move || slot_ring_root(SeqlockArming::from(m))),
    };
    match outcome.failure() {
        Some(f) => KillAttempt {
            killed: true,
            executions: f.executions,
            detail: format!(
                "killed by model check: {} (schedule length {})",
                failure_label(&f.kind),
                f.schedule.len()
            ),
        },
        None => {
            let executions = match outcome {
                crate::Outcome::Pass { executions, .. } => executions,
                crate::Outcome::Fail(_) => unreachable!("failure handled above"),
            };
            let detail = match mutant {
                ProtocolMutant::SeqlockRelaxedPublish
                | ProtocolMutant::SeqlockRelaxedReaderCheck => format!(
                    "not killed in {executions} execution(s): the checker explores \
                     sequentially consistent schedules only, so ordering weakening is \
                     invisible to it (the static atomicorder pass is the oracle here)"
                ),
                _ => format!("not killed in {executions} execution(s)"),
            };
            KillAttempt { killed: false, executions, detail }
        }
    }
}

/// One-line label for a failure kind (the full report is multi-line).
fn failure_label(kind: &FailureKind) -> &'static str {
    match kind {
        FailureKind::Deadlock { .. } => "deadlock",
        FailureKind::Panic { .. } => "assertion panic",
        FailureKind::DoubleCompletion { .. } => "double completion",
        FailureKind::SendAfterClose { .. } => "send after close",
        FailureKind::StepLimit => "step limit",
        FailureKind::ReplayDiverged { .. } => "replay divergence",
    }
}

/// Which seqlock words the armed mutant degrades.
#[derive(Debug, Clone, Copy)]
struct SeqlockArming {
    /// Publish the even version at all?
    bump_even: bool,
    /// Ordering for the writer's version stores.
    publish: Ordering,
    /// Ordering for the reader's bracketing version loads.
    reader_check: Ordering,
}

impl SeqlockArming {
    /// The unmutated protocol.
    fn faithful() -> SeqlockArming {
        SeqlockArming {
            bump_even: true,
            publish: Ordering::Release,
            reader_check: Ordering::Acquire,
        }
    }
}

impl From<ProtocolMutant> for SeqlockArming {
    fn from(m: ProtocolMutant) -> SeqlockArming {
        let faithful = SeqlockArming::faithful();
        match m {
            ProtocolMutant::SeqlockSkipSecondBump => SeqlockArming { bump_even: false, ..faithful },
            ProtocolMutant::SeqlockRelaxedPublish => {
                SeqlockArming { publish: Ordering::Relaxed, ..faithful }
            }
            ProtocolMutant::SeqlockRelaxedReaderCheck => {
                SeqlockArming { reader_check: Ordering::Relaxed, ..faithful }
            }
            ProtocolMutant::LockElision => faithful,
        }
    }
}

/// Words per slot: version, task, arg — the recorder's layout shrunk to
/// one payload word pair.
const WORDS: usize = 3;

/// Payload relation the reader asserts: `arg = task * TAG`.
const TAG: u64 = 1000;

/// A three-word-slot seqlock ring, the model under test for the
/// seqlock mutants. Mirrors `fcma_trace::recorder`'s slot protocol.
struct SlotRing {
    head: AtomicU64,
    words: Vec<AtomicU64>,
    capacity: u64,
    arming: SeqlockArming,
}

impl SlotRing {
    fn new(capacity: u64, arming: SeqlockArming) -> SlotRing {
        let mut words = Vec::new();
        for _ in 0..usize::try_from(capacity).unwrap_or(usize::MAX) * WORDS {
            words.push(AtomicU64::new(0));
        }
        SlotRing { head: AtomicU64::new(0), words, capacity, arming }
    }

    fn slot(&self, seq: u64) -> &[AtomicU64] {
        let base = usize::try_from(seq % self.capacity).unwrap_or(0) * WORDS;
        &self.words[base..base + WORDS]
    }

    /// Writer: odd version, payload, even version, head bump.
    fn push(&self, task: u64, arg: u64) {
        let seq = self.head.load(Ordering::Relaxed);
        let [ver, w_task, w_arg] = self.slot(seq) else { unreachable!() };
        ver.store(2 * seq + 1, self.arming.publish);
        w_task.store(task, Ordering::Relaxed);
        w_arg.store(arg, Ordering::Relaxed);
        if self.arming.bump_even {
            ver.store(2 * seq, self.arming.publish);
        }
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Reader: a slot counts only when its version reads `2·seq` both
    /// before and after the payload copy.
    fn snapshot(&self) -> Vec<(u64, u64, u64)> {
        let head = self.head.load(Ordering::Acquire);
        let lo = head.saturating_sub(self.capacity);
        let mut out = Vec::new();
        for seq in lo..head {
            let [ver, w_task, w_arg] = self.slot(seq) else { unreachable!() };
            if ver.load(self.arming.reader_check) != 2 * seq {
                continue;
            }
            let task = w_task.load(Ordering::Relaxed);
            let arg = w_arg.load(Ordering::Relaxed);
            if ver.load(self.arming.reader_check) != 2 * seq {
                continue;
            }
            out.push((seq, task, arg));
        }
        out
    }
}

/// Checked root for the seqlock shapes: writer pushes 6 events into a
/// 4-slot ring while the root snapshots concurrently; after the writer
/// quiesces, the newest `capacity` events must be present and untorn.
fn slot_ring_root(arming: SeqlockArming) {
    let ring = Arc::new(SlotRing::new(4, arming));
    let writer = Arc::clone(&ring);
    let (tx, rx) = channel::unbounded();
    thread::spawn(move || {
        for i in 1..=6u64 {
            writer.push(i, i * TAG);
        }
        tx.send(()).expect("root is alive");
    });
    for (_, task, arg) in ring.snapshot() {
        assert_eq!(arg, task * TAG, "torn payload in concurrent snapshot");
    }
    rx.recv().expect("writer finishes");
    let quiescent = ring.snapshot();
    assert_eq!(quiescent.len(), 4, "a quiescent ring must yield its newest capacity events");
    for (seq, task, arg) in quiescent {
        assert_eq!(task, seq + 1, "slot holds the wrong event");
        assert_eq!(arg, task * TAG, "torn payload in quiescent snapshot");
    }
}

/// Increments each thread performs on the shared counter.
const INCREMENTS: u64 = 2;

/// Checked root for [`ProtocolMutant::LockElision`]: two threads bump a
/// shared counter [`INCREMENTS`] times each. `guarded` keeps the facade
/// mutex around the read-modify-write; the mutant drops it, exposing
/// the lost-update window the checker finds within one preemption.
fn counter_root(guarded: bool) {
    let shared = Arc::new((Mutex::new(()), AtomicU64::new(0)));
    let (tx, rx) = channel::unbounded();
    for _ in 0..2 {
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        thread::spawn(move || {
            let (lock, counter) = &*shared;
            for _ in 0..INCREMENTS {
                if guarded {
                    let _g = lock.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                } else {
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }
            tx.send(()).expect("root is alive");
        });
    }
    rx.recv().expect("first worker finishes");
    rx.recv().expect("second worker finishes");
    let (_, counter) = &*shared;
    assert_eq!(
        counter.load(Ordering::Relaxed),
        2 * INCREMENTS,
        "lost update: unguarded increments raced"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config { max_preemptions: 1, max_executions: 256, ..Config::default() }
    }

    #[test]
    fn faithful_models_pass_the_checker() {
        let seqlock = check(&cfg(), || slot_ring_root(SeqlockArming::faithful()));
        assert!(seqlock.failure().is_none(), "{:?}", seqlock.failure());
        let counter = check(&cfg(), || counter_root(true));
        assert!(counter.failure().is_none(), "{:?}", counter.failure());
    }

    #[test]
    fn skip_second_bump_is_killed() {
        let a = attempt(ProtocolMutant::SeqlockSkipSecondBump, &cfg());
        assert!(a.killed, "{}", a.detail);
        assert!(a.detail.contains("assertion panic"), "{}", a.detail);
    }

    #[test]
    fn lock_elision_is_killed() {
        let a = attempt(ProtocolMutant::LockElision, &cfg());
        assert!(a.killed, "{}", a.detail);
    }

    #[test]
    fn ordering_weakenings_are_honestly_not_killed() {
        for m in [ProtocolMutant::SeqlockRelaxedPublish, ProtocolMutant::SeqlockRelaxedReaderCheck]
        {
            let a = attempt(m, &cfg());
            assert!(!a.killed, "{}: SC-blind checker must not claim this kill", m.name());
            assert!(a.detail.contains("atomicorder"), "{}", a.detail);
            assert!(a.executions > 0);
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = ProtocolMutant::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "seqlock-skip-second-bump",
                "seqlock-relaxed-publish",
                "seqlock-relaxed-reader-check",
                "lock-elision"
            ]
        );
    }
}
