//! The cooperative scheduler behind the model checker.
//!
//! One execution = one [`Scheduler`] (installed into each model thread
//! as the `fcma-sync` runtime) plus one OS thread per model thread, of
//! which exactly one is ever running; the rest sit in a condvar wait
//! until scheduled. Every facade operation funnels into
//! [`Scheduler::reschedule`], which advances virtual time when nothing
//! is runnable, detects deadlock, consults the [`Chooser`] at
//! multi-candidate decision points, and grants locks/wakeups to the
//! chosen thread.
//!
//! Failure handling: the first defect stamps `SchedState::failure` and
//! wakes everyone; threads then unwind out of the checked closure via a
//! sentinel panic (recognized and swallowed by the thread wrapper and
//! the panic hook). Runtime calls reached *during* unwinding (guard
//! drops) mutate state without panicking, so a failing execution always
//! drains cleanly.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError, Weak};

use fcma_sync::runtime::{enter_model, McEvent, McRuntime};

use crate::{Config, FailureKind};

/// Sentinel panic message used to unwind model threads when an
/// execution aborts; never reported as a user panic.
const ABORT: &str = "fcma-mc: execution aborted";

/// No thread is currently scheduled.
const NOBODY: usize = usize::MAX;

/// How the scheduler picks at multi-candidate decision points (after
/// any prescribed prefix is exhausted).
#[derive(Clone, Copy)]
pub(crate) enum Chooser {
    /// Continue the previously running thread when possible (the
    /// non-preempting default the DFS driver branches from).
    Dfs,
    /// Seeded uniform choice, bounded by the preemption budget.
    Random(u64),
}

/// One recorded decision point, summarized for the DFS driver.
#[derive(Debug, Clone)]
pub(crate) struct DecisionSummary {
    /// Number of schedulable candidates.
    pub(crate) n_candidates: usize,
    /// Index of the previously running thread among the candidates.
    pub(crate) from_idx: Option<usize>,
    /// Preemptions spent before this decision.
    pub(crate) preemptions_before: usize,
    /// Candidate index chosen.
    pub(crate) chosen: usize,
}

/// Everything `run_once` reports back to the exploration drivers.
pub(crate) struct RunResult {
    /// One entry per multi-candidate decision point.
    pub(crate) decisions: Vec<DecisionSummary>,
    /// The defect, if the execution failed.
    pub(crate) failure: Option<FailureKind>,
    /// Human-readable decision-by-decision trace.
    pub(crate) trace: String,
}

/// What a model thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// May be scheduled (and is running iff `current == id`).
    Runnable,
    /// Waiting to acquire a lock.
    Lock(u64),
    /// Waiting on a condvar, having released `mutex`.
    CvWait { cv: u64, mutex: u64, deadline: Option<u64>, notified: bool },
    /// Waiting for virtual time to pass.
    Sleep { until: u64 },
    /// Waiting for another model thread to finish (a scoped join).
    Join { target: usize },
    /// Exited (or drained after a failure).
    Finished,
}

struct ThreadState {
    status: Status,
    /// Set on grant after a timed condvar wait that expired.
    timed_out: bool,
}

struct SchedState {
    threads: Vec<ThreadState>,
    current: usize,
    /// Virtual nanoseconds.
    time: u64,
    /// Lock id → owning thread.
    locks: BTreeMap<u64, Option<usize>>,
    /// Condvar id → count of notifications that found no waiter.
    missed_notifies: BTreeMap<u64, usize>,
    /// Completion keys seen (double-completion detector).
    completions: BTreeSet<u64>,
    next_object: u64,
    steps: usize,
    preemptions: usize,
    decisions: Vec<DecisionSummary>,
    trace: Vec<String>,
    /// Prescribed choice per decision point (prefix).
    prescription: Vec<usize>,
    chooser: Chooser,
    rng: u64,
    failure: Option<FailureKind>,
    done: bool,
}

pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    cfg: Config,
    /// Self-reference so `spawn` (a `&self` trait method) can hand an
    /// owning handle to new OS threads.
    this: Weak<Scheduler>,
}

/// Suppress the default panic-hook output for the abort sentinel;
/// everything else goes to the previous hook unchanged.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_abort =
                info.payload().downcast_ref::<String>().is_some_and(|s| s.contains(ABORT))
                    || info.payload().downcast_ref::<&str>().is_some_and(|s| s.contains(ABORT));
            if !is_abort {
                previous(info);
            }
        }));
    });
}

/// Run `root` once under a fresh scheduler with the given prescription.
pub(crate) fn run_once<F>(
    cfg: &Config,
    chooser: Chooser,
    prescription: &[usize],
    root: &Arc<F>,
) -> RunResult
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let rng_seed = match chooser {
        Chooser::Dfs => 0,
        Chooser::Random(seed) => seed | 1,
    };
    let sched = Arc::new_cyclic(|this| Scheduler {
        state: Mutex::new(SchedState {
            threads: vec![ThreadState { status: Status::Runnable, timed_out: false }],
            current: 0,
            time: 0,
            locks: BTreeMap::new(),
            missed_notifies: BTreeMap::new(),
            completions: BTreeSet::new(),
            next_object: 0,
            steps: 0,
            preemptions: 0,
            decisions: Vec::new(),
            trace: Vec::new(),
            prescription: prescription.to_vec(),
            chooser,
            rng: rng_seed,
            failure: None,
            done: false,
        }),
        cv: Condvar::new(),
        cfg: cfg.clone(),
        this: this.clone(),
    });
    let entry = {
        let root = Arc::clone(root);
        Box::new(move || root()) as Box<dyn FnOnce() + Send>
    };
    sched.launch(0, entry);
    let mut st = sched.lock_state();
    while !st.done {
        st = sched.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
    RunResult {
        decisions: std::mem::take(&mut st.decisions),
        failure: st.failure.take(),
        trace: st.trace.join("\n"),
    }
}

impl Scheduler {
    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Start model thread `id` on its own OS thread.
    fn launch(self: &Arc<Self>, id: usize, f: Box<dyn FnOnce() + Send>) {
        let sched = Arc::clone(self);
        std::thread::spawn(move || {
            let rt: Arc<dyn McRuntime> = Arc::clone(&sched) as Arc<dyn McRuntime>;
            let _mode = enter_model(rt);
            if sched.wait_first_turn(id) {
                let result = catch_unwind(AssertUnwindSafe(f));
                sched.on_thread_exit(id, result.err().map(|p| panic_message(p.as_ref())));
            } else {
                sched.on_thread_exit(id, None);
            }
        });
    }

    /// Wait until thread `id` is scheduled for the first time; `false`
    /// if the execution failed before that.
    fn wait_first_turn(&self, id: usize) -> bool {
        let mut st = self.lock_state();
        loop {
            if st.failure.is_some() {
                return false;
            }
            if st.current == id && st.threads[id].status == Status::Runnable {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A model thread's closure returned (or unwound).
    fn on_thread_exit(&self, id: usize, panic: Option<String>) {
        let mut st = self.lock_state();
        if let Some(message) = panic {
            if !message.contains(ABORT) && st.failure.is_none() {
                Self::fail(&mut st, FailureKind::Panic { thread: id, message });
            }
        }
        st.threads[id].status = Status::Finished;
        if st.current == id {
            st.current = NOBODY;
        }
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            st.done = true;
        } else if st.failure.is_none() && st.current == NOBODY {
            self.reschedule(&mut st, id);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Stamp the first failure; callers must wake waiters after
    /// releasing the state lock.
    fn fail(st: &mut SchedState, kind: FailureKind) {
        if st.failure.is_none() {
            st.failure = Some(kind);
        }
    }

    /// Unwind the calling thread out of a failed execution (no-op when
    /// already unwinding, so guard drops stay safe).
    fn abort_thread() {
        if !std::thread::panicking() {
            // The abort sentinel deliberately unwinds model threads out
            // of a failed execution; the thread wrapper catches it.
            panic!("{ABORT}");
        }
    }

    /// Block the calling thread until it is scheduled again.
    fn wait_my_turn(&self, mut st: MutexGuard<'_, SchedState>, me: usize) {
        loop {
            if st.failure.is_some() {
                drop(st);
                Self::abort_thread();
                return;
            }
            if st.current == me && st.threads[me].status == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A scheduling point: set the caller's status, pick the next
    /// thread, and block until the caller is scheduled again.
    fn schedule_point(&self, me: usize, status: Status) {
        let mut st = self.lock_state();
        if st.failure.is_some() {
            drop(st);
            Self::abort_thread();
            return;
        }
        st.threads[me].status = status;
        self.reschedule(&mut st, me);
        self.cv.notify_all();
        self.wait_my_turn(st, me);
    }

    /// Is thread `t` schedulable right now?
    fn schedulable(st: &SchedState, t: usize) -> bool {
        match &st.threads[t].status {
            Status::Runnable => true,
            Status::Lock(l) => st.locks.get(l).copied().flatten().is_none(),
            Status::CvWait { mutex, deadline, notified, .. } => {
                let lock_free = st.locks.get(mutex).copied().flatten().is_none();
                lock_free && (*notified || deadline.is_some_and(|d| d <= st.time))
            }
            Status::Sleep { until } => *until <= st.time,
            Status::Join { target } => st.threads[*target].status == Status::Finished,
            Status::Finished => false,
        }
    }

    /// The earliest pending timer strictly in the future, if any.
    fn next_timer(st: &SchedState) -> Option<u64> {
        st.threads
            .iter()
            .filter_map(|t| match &t.status {
                Status::Sleep { until } => Some(*until),
                Status::CvWait { deadline, notified: false, .. } => *deadline,
                _ => None,
            })
            .filter(|&d| d > st.time)
            .min()
    }

    /// Describe what scheduling thread `t` would do (for the trace).
    fn describe(st: &SchedState, t: usize) -> String {
        match &st.threads[t].status {
            Status::Runnable => format!("t{t} continues"),
            Status::Lock(l) => format!("t{t} acquires lock#{l}"),
            Status::CvWait { cv, notified: true, .. } => format!("t{t} wakes from cv#{cv}"),
            Status::CvWait { cv, .. } => format!("t{t} times out on cv#{cv}"),
            Status::Sleep { .. } => format!("t{t} finishes sleeping"),
            Status::Join { target } => format!("t{t} joins t{target}"),
            Status::Finished => format!("t{t} (finished)"),
        }
    }

    /// Advance time if needed, detect deadlock, consult the chooser,
    /// and grant the next thread. `from` is the thread that was
    /// running. Callers wake waiters after releasing the state lock.
    fn reschedule(&self, st: &mut SchedState, from: usize) {
        st.current = NOBODY;
        st.steps += 1;
        if st.steps > self.cfg.max_steps {
            Self::fail(st, FailureKind::StepLimit);
            return;
        }
        // Find candidates, advancing virtual time over pending timers.
        let candidates: Vec<usize> = loop {
            let c: Vec<usize> =
                (0..st.threads.len()).filter(|&t| Self::schedulable(st, t)).collect();
            if !c.is_empty() {
                break c;
            }
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.done = true;
                return;
            }
            match Self::next_timer(st) {
                Some(next) => st.time = next,
                None => {
                    let kind = Self::deadlock_report(st);
                    Self::fail(st, kind);
                    return;
                }
            }
        };
        let chosen_idx = if candidates.len() == 1 {
            0
        } else {
            let from_idx = candidates.iter().position(|&t| t == from);
            let d = st.decisions.len();
            let idx = if let Some(&prescribed) = st.prescription.get(d) {
                if prescribed >= candidates.len() {
                    Self::fail(st, FailureKind::ReplayDiverged { at: d });
                    return;
                }
                prescribed
            } else {
                match (st.chooser, from_idx) {
                    (Chooser::Dfs, Some(f)) => f,
                    (Chooser::Dfs, None) => 0,
                    (Chooser::Random(_), f) => {
                        if st.preemptions < self.cfg.max_preemptions || f.is_none() {
                            let n = u64::try_from(candidates.len()).unwrap_or(u64::MAX);
                            usize::try_from(splitmix(&mut st.rng) % n).unwrap_or(0)
                        } else {
                            f.unwrap_or(0)
                        }
                    }
                }
            };
            st.decisions.push(DecisionSummary {
                n_candidates: candidates.len(),
                from_idx,
                preemptions_before: st.preemptions,
                chosen: idx,
            });
            if from_idx.is_some() && from_idx != Some(idx) {
                st.preemptions += 1;
            }
            let line = format!(
                "#{d} [{}] -> {}",
                candidates.iter().map(|&t| Self::describe(st, t)).collect::<Vec<_>>().join(", "),
                Self::describe(st, candidates[idx]),
            );
            st.trace.push(line);
            idx
        };
        Self::grant(st, candidates[chosen_idx]);
    }

    /// Make `t` the running thread, applying its pending grant.
    fn grant(st: &mut SchedState, t: usize) {
        let status = st.threads[t].status.clone();
        match status {
            Status::Lock(l) => {
                st.locks.insert(l, Some(t));
            }
            Status::CvWait { mutex, notified, .. } => {
                st.locks.insert(mutex, Some(t));
                st.threads[t].timed_out = !notified;
            }
            Status::Runnable | Status::Sleep { .. } | Status::Join { .. } | Status::Finished => {}
        }
        st.threads[t].status = Status::Runnable;
        st.current = t;
    }

    /// Build the deadlock failure for the current state.
    fn deadlock_report(st: &SchedState) -> FailureKind {
        let mut blocked = Vec::new();
        let mut cv_waits = 0usize;
        let mut missed = 0usize;
        for (t, thread) in st.threads.iter().enumerate() {
            match &thread.status {
                Status::Finished => {}
                Status::CvWait { cv, mutex, .. } => {
                    cv_waits += 1;
                    missed += st.missed_notifies.get(cv).copied().unwrap_or(0);
                    blocked.push(format!(
                        "t{t}: waiting on cv#{cv} (mutex#{mutex} released), no notify pending"
                    ));
                }
                Status::Lock(l) => {
                    let owner = st.locks.get(l).copied().flatten();
                    blocked.push(format!("t{t}: waiting for lock#{l} (owner: {owner:?})"));
                }
                Status::Sleep { until } => {
                    blocked.push(format!("t{t}: sleeping until {until}ns"));
                }
                Status::Join { target } => {
                    blocked.push(format!("t{t}: joining t{target} (not finished)"));
                }
                Status::Runnable => blocked.push(format!("t{t}: runnable (scheduler bug?)")),
            }
        }
        let non_finished = blocked.len();
        FailureKind::Deadlock { blocked, lost_wakeup: cv_waits == non_finished && missed > 0 }
    }
}

impl McRuntime for Scheduler {
    fn next_object_id(&self) -> u64 {
        let mut st = self.lock_state();
        st.next_object += 1;
        st.next_object
    }

    fn spawn(&self, f: Box<dyn FnOnce() + Send>) {
        let (me, id) = {
            let mut st = self.lock_state();
            if st.failure.is_some() {
                drop(st);
                Self::abort_thread();
                return;
            }
            let id = st.threads.len();
            st.threads.push(ThreadState { status: Status::Runnable, timed_out: false });
            (st.current, id)
        };
        let Some(this) = self.this.upgrade() else { return };
        this.launch(id, f);
        if std::thread::panicking() {
            return;
        }
        self.schedule_point(me, Status::Runnable);
    }

    fn mutex_lock(&self, id: u64) {
        if std::thread::panicking() {
            return;
        }
        let me = {
            let st = self.lock_state();
            if st.failure.is_some() {
                drop(st);
                Self::abort_thread();
                return;
            }
            st.current
        };
        self.schedule_point(me, Status::Lock(id));
    }

    fn mutex_unlock(&self, id: u64) {
        let me = {
            let mut st = self.lock_state();
            st.locks.insert(id, None);
            if st.failure.is_some() || std::thread::panicking() {
                // Draining, or unwinding a guard drop during a panic
                // that is about to become the failure: just release.
                return;
            }
            st.current
        };
        self.schedule_point(me, Status::Runnable);
    }

    fn condvar_wait(&self, cv: u64, mutex: u64, timeout_nanos: Option<u64>) -> bool {
        let (me, status) = {
            let mut st = self.lock_state();
            st.locks.insert(mutex, None);
            if st.failure.is_some() || std::thread::panicking() {
                drop(st);
                Self::abort_thread();
                return true;
            }
            let deadline = timeout_nanos.map(|t| st.time.saturating_add(t));
            (st.current, Status::CvWait { cv, mutex, deadline, notified: false })
        };
        self.schedule_point(me, status);
        let st = self.lock_state();
        if st.failure.is_some() {
            return true;
        }
        st.threads[me].timed_out
    }

    fn condvar_notify(&self, cv: u64, all: bool) {
        let me = {
            let mut st = self.lock_state();
            let mut woke = 0usize;
            for t in 0..st.threads.len() {
                if let Status::CvWait { cv: c, notified, .. } = &mut st.threads[t].status {
                    if *c == cv && !*notified {
                        *notified = true;
                        woke += 1;
                        if !all {
                            break;
                        }
                    }
                }
            }
            if woke == 0 {
                *st.missed_notifies.entry(cv).or_insert(0) += 1;
            }
            if st.failure.is_some() || std::thread::panicking() {
                return;
            }
            st.current
        };
        self.schedule_point(me, Status::Runnable);
    }

    fn now_nanos(&self) -> u64 {
        self.lock_state().time
    }

    fn sleep(&self, nanos: u64) {
        if std::thread::panicking() {
            return;
        }
        let (me, until) = {
            let st = self.lock_state();
            if st.failure.is_some() {
                drop(st);
                Self::abort_thread();
                return;
            }
            (st.current, st.time.saturating_add(nanos))
        };
        self.schedule_point(me, Status::Sleep { until });
    }

    fn interleave(&self) {
        if std::thread::panicking() {
            return;
        }
        let me = {
            let st = self.lock_state();
            if st.failure.is_some() {
                drop(st);
                Self::abort_thread();
                return;
            }
            st.current
        };
        self.schedule_point(me, Status::Runnable);
    }

    fn thread_register(&self) -> usize {
        {
            let st = self.lock_state();
            if st.failure.is_some() {
                drop(st);
                Self::abort_thread();
            }
        }
        let mut st = self.lock_state();
        let id = st.threads.len();
        st.threads.push(ThreadState { status: Status::Runnable, timed_out: false });
        id
    }

    fn thread_enter(&self, id: usize) -> bool {
        self.wait_first_turn(id)
    }

    fn thread_exit(&self, id: usize, panic: Option<String>) {
        self.on_thread_exit(id, panic);
    }

    fn thread_join(&self, target: usize) {
        if std::thread::panicking() {
            return;
        }
        let me = {
            let st = self.lock_state();
            if st.failure.is_some() {
                drop(st);
                Self::abort_thread();
                return;
            }
            st.current
        };
        self.schedule_point(me, Status::Join { target });
    }

    fn record(&self, event: McEvent) {
        let mut st = self.lock_state();
        if st.failure.is_some() {
            return;
        }
        match event {
            McEvent::Completion { key } => {
                if !st.completions.insert(key) && self.cfg.fail_on_double_completion {
                    Self::fail(&mut st, FailureKind::DoubleCompletion { key });
                }
            }
            McEvent::SendAfterClose { channel } => {
                if self.cfg.fail_on_send_after_close {
                    Self::fail(&mut st, FailureKind::SendAfterClose { channel });
                }
            }
        }
        let failed = st.failure.is_some();
        drop(st);
        if failed {
            self.cv.notify_all();
            Self::abort_thread();
        }
    }
}

/// One splitmix64 step (the same generator the chaos fault plans use).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
