//! Unit tests: the checker must find seeded ordering bugs, report
//! replayable schedules, classify deadlocks, and pass clean programs.

use std::sync::Arc;

use fcma_sync::runtime::report_completion;
use fcma_sync::{channel, thread, Condvar, Mutex};

use crate::{check, check_random, replay, Config, FailureKind, Outcome};

/// Passes under the non-preempting schedule; an interleaving where the
/// child runs between spawn and the parent's read trips the assert.
fn racy_read() {
    let m = Arc::new(Mutex::new(0));
    let m2 = Arc::clone(&m);
    thread::spawn(move || {
        *m2.lock() += 1;
    });
    let v = *m.lock();
    assert_eq!(v, 0, "child incremented before the parent read");
}

#[test]
fn dfs_finds_ordering_bug_and_replays_it() {
    let cfg = Config::default();
    let outcome = check(&cfg, racy_read);
    let failure = outcome.failure().expect("DFS must find the racy interleaving");
    assert!(
        matches!(failure.kind, FailureKind::Panic { .. }),
        "expected a panic failure, got: {failure}"
    );
    assert!(!failure.schedule.is_empty(), "failure must carry a schedule");
    assert!(failure.trace.contains("->"), "failure must carry a decision trace");

    let replayed = replay(&cfg, &failure.schedule, racy_read);
    let refailure = replayed.failure().expect("replaying the schedule must reproduce");
    assert_eq!(refailure.kind, failure.kind, "replay must reproduce the same defect");
}

#[test]
fn random_walk_finds_ordering_bug() {
    let cfg = Config::default();
    let outcome = check_random(&cfg, 0xfc_3a, racy_read);
    let failure = outcome.failure().expect("random walks must find the racy interleaving");
    assert!(matches!(failure.kind, FailureKind::Panic { .. }));
}

/// The waiter checks the flag, releases the lock, then re-locks and
/// waits without re-checking — the classic missed-signal bug. Only the
/// schedule where the signaller runs inside that window deadlocks.
fn missed_signal() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let signaller = Arc::clone(&pair);
    thread::spawn(move || {
        *signaller.0.lock() = true;
        signaller.1.notify_one();
    });
    let ready = { *pair.0.lock() };
    if !ready {
        let mut guard = pair.0.lock();
        pair.1.wait(&mut guard);
    }
}

#[test]
fn dfs_finds_lost_wakeup_deadlock() {
    let cfg = Config::default();
    let outcome = check(&cfg, missed_signal);
    let failure = outcome.failure().expect("DFS must find the missed-signal deadlock");
    match &failure.kind {
        FailureKind::Deadlock { lost_wakeup, blocked } => {
            assert!(lost_wakeup, "the deadlock must be classified as a lost wakeup");
            assert_eq!(blocked.len(), 1, "exactly the waiter is stuck: {blocked:?}");
        }
        other => panic!("expected a deadlock, got: {other:?}"),
    }
    let replayed = replay(&cfg, &failure.schedule, missed_signal);
    assert!(replayed.failure().is_some(), "the deadlock schedule must replay");
}

#[test]
fn clean_handoff_passes_completely() {
    let cfg = Config::default();
    let outcome = check(&cfg, || {
        let (tx, rx) = channel::unbounded();
        let worker_tx = tx.clone();
        thread::spawn(move || {
            worker_tx.send(1u32).expect("receiver is alive");
        });
        thread::spawn(move || {
            tx.send(2u32).expect("receiver is alive");
        });
        let a = rx.recv().expect("first message");
        let b = rx.recv().expect("second message");
        assert_eq!(a + b, 3, "both messages arrive, in either order");
    });
    match outcome {
        Outcome::Pass { executions, complete } => {
            assert!(complete, "the bounded space must be exhausted");
            assert!(executions > 1, "two senders imply more than one schedule");
        }
        Outcome::Fail(failure) => panic!("clean program failed:\n{failure}"),
    }
}

#[test]
fn model_time_is_virtual_and_deterministic() {
    let cfg = Config::default();
    let outcome = check(&cfg, || {
        let (tx, rx) = channel::unbounded();
        thread::spawn(move || {
            thread::sleep(std::time::Duration::from_millis(50));
            tx.send(7u8).expect("receiver is alive");
        });
        let got = rx
            .recv_timeout(std::time::Duration::from_millis(100))
            .expect("the sender beats the deadline in virtual time");
        assert_eq!(got, 7);
    });
    assert!(outcome.failure().is_none(), "virtual-time handoff must always pass");

    let outcome = check(&cfg, || {
        let (_tx, rx) = channel::unbounded::<u8>();
        let err = rx.recv_timeout(std::time::Duration::from_millis(10));
        assert_eq!(err, Err(channel::RecvTimeoutError::Timeout));
    });
    assert!(outcome.failure().is_none(), "timeouts fire exactly at the deadline");
}

#[test]
fn double_completion_is_detected() {
    let cfg = Config::default();
    let outcome = check(&cfg, || {
        report_completion(7);
        report_completion(7);
    });
    let failure = outcome.failure().expect("double completion must fail");
    assert_eq!(failure.kind, FailureKind::DoubleCompletion { key: 7 });
}

#[test]
fn send_after_close_detector_is_opt_in() {
    let root = || {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(1u8).is_err(), "send on a closed channel errors");
    };
    let lenient = Config::default();
    assert!(check(&lenient, root).failure().is_none(), "off by default");

    let strict = Config { fail_on_send_after_close: true, ..Config::default() };
    let failure = check(&strict, root).failure().map(|f| f.kind.clone());
    assert!(
        matches!(failure, Some(FailureKind::SendAfterClose { .. })),
        "strict mode must flag it: {failure:?}"
    );
}
