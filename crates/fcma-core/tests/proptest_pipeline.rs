//! Property-based tests for the FCMA pipeline: schedule equivalence,
//! partition invariance, and statistical sanity across randomized
//! dataset configurations.

use fcma_core::{
    corr_baseline, corr_baseline_parallel, corr_normalized_merged, corr_normalized_merged_parallel,
    corr_optimized, normalize_baseline, normalize_separated, score_task, KernelPrecompute,
    TaskContext, VoxelTask,
};
use fcma_fmri::noise::{Ar1, Drift};
use fcma_fmri::synth::{Placement, SynthConfig};
use fcma_linalg::tall_skinny::TallSkinnyOpts;
use fcma_svm::{SmoParams, SolverKind};
use fcma_sync::pool::Pool;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = SynthConfig> {
    (12usize..48, 2usize..4, 2usize..4, any::<u64>()).prop_map(|(nv, ns, eh, seed)| SynthConfig {
        n_voxels: nv,
        n_subjects: ns,
        epochs_per_subject: eh * 2,
        epoch_len: 8,
        gap: 2,
        n_informative: (nv / 4).max(2) & !1,
        coupling: 1.2,
        noise: Ar1 { phi: 0.3, sigma: 1.0 },
        drift: Drift { linear: 0.5, sin_amp: 0.2, sin_cycles: 1.0 },
        seed,
        placement: Placement::Random,
        hrf: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The three stage-1+2 schedules agree on every dataset and task.
    #[test]
    fn all_schedules_agree(cfg in config_strategy(), start_frac in 0.0f32..0.8) {
        let (d, _) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let start = (start_frac * d.n_voxels() as f32) as usize;
        let count = (d.n_voxels() - start).min(7).max(1);
        let task = VoxelTask { start, count };

        let mut a = corr_baseline(&ctx, task);
        normalize_baseline(&mut a, &ctx);
        let mut b = corr_optimized(&ctx, task, TallSkinnyOpts { tile_cols: 16 });
        normalize_separated(&mut b, &ctx);
        let c = corr_normalized_merged(&ctx, task, TallSkinnyOpts { tile_cols: 24 });

        for (i, ((x, y), z)) in a.buf.iter().zip(&b.buf).zip(&c.buf).enumerate() {
            prop_assert!((x - y).abs() < 1e-3, "baseline vs separated at {i}: {x} vs {y}");
            prop_assert!((y - z).abs() < 1e-3, "separated vs merged at {i}: {y} vs {z}");
        }
    }

    /// Scores are identical no matter how the brain is partitioned into
    /// tasks (no hidden coupling between tasks).
    #[test]
    fn scores_are_partition_invariant(cfg in config_strategy(), size in 1usize..9) {
        let (d, _) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let solver = SolverKind::PhiSvm(SmoParams::default());

        let whole_task = VoxelTask { start: 0, count: d.n_voxels() };
        let whole = corr_normalized_merged(&ctx, whole_task, TallSkinnyOpts::default());
        let pool = Pool::new(2);
        let ref_scores = score_task(
            &whole, whole_task, &ctx.y, &ctx.subjects, &solver, KernelPrecompute::Optimized, &pool,
        );

        let mut start = 0;
        while start < d.n_voxels() {
            let count = size.min(d.n_voxels() - start);
            let task = VoxelTask { start, count };
            let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
            let scores = score_task(
                &corr, task, &ctx.y, &ctx.subjects, &solver, KernelPrecompute::Optimized, &pool,
            );
            for s in &scores {
                let r = &ref_scores[s.voxel];
                prop_assert!(
                    (s.accuracy - r.accuracy).abs() < 1e-9,
                    "voxel {}: {} vs {}",
                    s.voxel,
                    s.accuracy,
                    r.accuracy
                );
            }
            start += count;
        }
    }

    /// DESIGN.md §15: the fused stage-1+2 pipeline and the baseline
    /// stage-1 GEMM are bit-identical to their serial schedules at every
    /// thread count, on arbitrary datasets and task offsets.
    #[test]
    fn parallel_pipeline_bit_identical(cfg in config_strategy(), start_frac in 0.0f32..0.6) {
        let (d, _) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let start = (start_frac * d.n_voxels() as f32) as usize;
        let count = d.n_voxels() - start;
        let task = VoxelTask { start, count };

        let merged = corr_normalized_merged(&ctx, task, TallSkinnyOpts { tile_cols: 32 });
        let base = corr_baseline(&ctx, task);
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let pm = corr_normalized_merged_parallel(&ctx, task, TallSkinnyOpts { tile_cols: 32 }, &pool);
            let pb = corr_baseline_parallel(&ctx, task, &pool);
            for (i, (p, s)) in pm.buf.iter().zip(&merged.buf).enumerate() {
                prop_assert_eq!(p.to_bits(), s.to_bits(), "merged threads={} idx={}", threads, i);
            }
            for (i, (p, s)) in pb.buf.iter().zip(&base.buf).enumerate() {
                prop_assert_eq!(p.to_bits(), s.to_bits(), "baseline threads={} idx={}", threads, i);
            }
        }
    }

    /// Stage-3 scores do not depend on the pool's thread count or steal
    /// seed: every voxel's CV runs to the same accuracy bit for bit.
    #[test]
    fn scores_thread_count_invariant(cfg in config_strategy()) {
        let (d, _) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let task = VoxelTask { start: 0, count: d.n_voxels().min(10) };
        let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
        let solver = SolverKind::PhiSvm(SmoParams::default());
        let reference = score_task(
            &corr, task, &ctx.y, &ctx.subjects, &solver, KernelPrecompute::Optimized,
            &Pool::new(1),
        );
        for threads in [2usize, 3, 8] {
            let scores = score_task(
                &corr, task, &ctx.y, &ctx.subjects, &solver, KernelPrecompute::Optimized,
                &Pool::new(threads).with_seed(u64::from(threads as u32) * 7 + 1),
            );
            for (s, r) in scores.iter().zip(&reference) {
                prop_assert_eq!(s.voxel, r.voxel);
                prop_assert_eq!(s.accuracy.to_bits(), r.accuracy.to_bits(), "threads={}", threads);
            }
        }
    }

    /// Accuracies are probabilities and normalized output is bounded.
    #[test]
    fn outputs_are_bounded(cfg in config_strategy()) {
        let (d, _) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let task = VoxelTask { start: 0, count: d.n_voxels().min(8) };
        let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
        // Fisher-z of |r| <= 1 clamped then z-scored over E epochs: values
        // stay small and finite.
        for &v in &corr.buf {
            prop_assert!(v.is_finite());
            prop_assert!(v.abs() < 10.0, "normalized value {v} out of range");
        }
        let scores = score_task(
            &corr,
            task,
            &ctx.y,
            &ctx.subjects,
            &SolverKind::PhiSvm(SmoParams::default()),
            KernelPrecompute::Optimized,
            &Pool::new(3),
        );
        for s in &scores {
            prop_assert!((0.0..=1.0).contains(&s.accuracy));
        }
    }
}
