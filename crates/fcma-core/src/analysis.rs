//! Top-level analyses: offline nested leave-one-subject-out voxel
//! selection (§5.2.1) and online single-session voxel selection (§5.2.2).

use crate::context::TaskContext;
use crate::executor::TaskExecutor;
use crate::selection::{select_top_k, stable_voxels};
use crate::stage2::corr_normalized_merged;
use crate::task::{partition, VoxelScore, VoxelTask};
use fcma_fmri::Dataset;
use fcma_linalg::tall_skinny::TallSkinnyOpts;
use fcma_linalg::{f64_from_usize, Mat};
use fcma_svm::{train_phisvm, KernelMatrix, SmoParams};
use fcma_trace::span;

/// Parameters shared by the offline and online analyses.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Voxels per task (the paper assigns 120–240 per coprocessor).
    pub task_size: usize,
    /// Number of top voxels to select as the ROI.
    pub top_k: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig { task_size: 64, top_k: 16 }
    }
}

/// Score every brain voxel by running the executor over a task partition.
pub fn score_all_voxels(
    ctx: &TaskContext,
    exec: &dyn TaskExecutor,
    task_size: usize,
    groups: Option<&[usize]>,
) -> Vec<VoxelScore> {
    let _span = span!(
        "analysis.sweep",
        voxels = ctx.n_voxels(),
        task_size = task_size,
        executor = exec.name()
    );
    let mut scores = Vec::with_capacity(ctx.n_voxels());
    for task in partition(ctx.n_voxels(), task_size) {
        scores.extend(exec.process_grouped(ctx, task, groups));
    }
    scores
}

/// One outer cross-validation fold of the offline analysis.
#[derive(Debug, Clone)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct FoldOutcome {
    /// Held-out subject.
    pub held_out: usize,
    /// Voxels selected from the training subjects.
    pub selected: Vec<usize>,
    /// Accuracy of the final classifier on the held-out subject.
    pub test_accuracy: f64,
}

/// Result of the full offline analysis.
#[derive(Debug, Clone)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct OfflineResult {
    /// Per-fold outcomes.
    pub folds: Vec<FoldOutcome>,
    /// Mean held-out accuracy across folds.
    pub mean_test_accuracy: f64,
    /// Voxels selected in a majority of folds (the reliable ROI).
    pub stable: Vec<usize>,
}

/// Offline analysis: nested leave-one-subject-out cross validation.
///
/// For each outer fold, voxel selection runs on the remaining subjects
/// (inner LOSO via the executor's stage 3); a final classifier is then
/// trained on the training subjects' correlation patterns of the selected
/// voxels and tested on the held-out subject (§5.2.1).
///
/// # Panics
/// If the dataset has fewer than 3 subjects (nested LOSO needs them).
pub fn offline_analysis(
    dataset: &Dataset,
    exec: &dyn TaskExecutor,
    cfg: &AnalysisConfig,
) -> OfflineResult {
    let n_subjects = dataset.n_subjects();
    assert!(n_subjects >= 3, "offline analysis needs >= 3 subjects for nested LOSO");
    let full_ctx = TaskContext::full(dataset);
    let mut folds = Vec::with_capacity(n_subjects);
    for held in 0..n_subjects {
        let keep: Vec<usize> =
            (0..dataset.n_epochs()).filter(|&e| dataset.epochs()[e].subject != held).collect();
        let train_ctx = TaskContext::subset(dataset, &keep);
        let scores = score_all_voxels(&train_ctx, exec, cfg.task_size, None);
        let selected = select_top_k(&scores, cfg.top_k);
        let test_accuracy = final_classifier_accuracy(&full_ctx, dataset, &selected, held);
        folds.push(FoldOutcome { held_out: held, selected, test_accuracy });
    }
    let mean_test_accuracy =
        folds.iter().map(|f| f.test_accuracy).sum::<f64>() / f64_from_usize(folds.len());
    let stable = stable_voxels(
        &folds.iter().map(|f| f.selected.clone()).collect::<Vec<_>>(),
        folds.len().div_ceil(2),
    );
    OfflineResult { folds, mean_test_accuracy, stable }
}

/// Train the final classifier on the selected voxels' correlation
/// patterns (training subjects) and test on the held-out subject.
fn final_classifier_accuracy(
    full_ctx: &TaskContext,
    dataset: &Dataset,
    selected: &[usize],
    held: usize,
) -> f64 {
    let m = full_ctx.n_epochs();
    let n = full_ctx.n_voxels();
    // Sample matrix: epoch × (selected voxels' correlation vectors,
    // concatenated).
    let mut samples = Mat::zeros(m, selected.len() * n);
    for (si, &v) in selected.iter().enumerate() {
        let corr = corr_normalized_merged(
            full_ctx,
            VoxelTask { start: v, count: 1 },
            TallSkinnyOpts::default(),
        );
        for e in 0..m {
            samples.row_mut(e)[si * n..(si + 1) * n].copy_from_slice(corr.row(0, e));
        }
    }
    let kernel = KernelMatrix::precompute(&samples);
    let train_idx: Vec<usize> = (0..m).filter(|&e| dataset.epochs()[e].subject != held).collect();
    let test_idx: Vec<usize> = (0..m).filter(|&e| dataset.epochs()[e].subject == held).collect();
    let train_y: Vec<f32> = train_idx.iter().map(|&e| full_ctx.y[e]).collect();
    let test_y: Vec<f32> = test_idx.iter().map(|&e| full_ctx.y[e]).collect();
    let model = train_phisvm(&kernel, &train_idx, &train_y, &SmoParams::default());
    model.accuracy(&kernel, &test_idx, &test_y)
}

/// Result of the online (single-session) voxel selection.
#[derive(Debug, Clone)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct OnlineResult {
    /// Selected voxels for the neurofeedback classifier.
    pub selected: Vec<usize>,
    /// All voxel scores (for inspection).
    pub scores: Vec<VoxelScore>,
}

/// Online analysis: select voxels from one session's data using k-fold
/// cross validation over epochs (no nested CV — §5.2.2).
///
/// Folds are stratified by condition so every fold sees both classes.
pub fn online_voxel_selection(
    dataset: &Dataset,
    exec: &dyn TaskExecutor,
    cfg: &AnalysisConfig,
    n_folds: usize,
) -> OnlineResult {
    assert!(n_folds >= 2, "online selection needs >= 2 folds");
    let ctx = TaskContext::full(dataset);
    let groups = stratified_folds(&ctx.y, n_folds);
    let scores = score_all_voxels(&ctx, exec, cfg.task_size, Some(&groups));
    let selected = select_top_k(&scores, cfg.top_k);
    OnlineResult { selected, scores }
}

/// Assign epochs to `n_folds` groups, round-robin within each condition,
/// so every fold contains both classes.
///
/// # Panics
/// If `n_folds == 0`.
pub fn stratified_folds(y: &[f32], n_folds: usize) -> Vec<usize> {
    let mut groups = vec![0usize; y.len()];
    let mut pos = 0usize;
    let mut neg = 0usize;
    for (e, &label) in y.iter().enumerate() {
        if label > 0.0 {
            groups[e] = pos % n_folds;
            pos += 1;
        } else {
            groups[e] = neg % n_folds;
            neg += 1;
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::OptimizedExecutor;
    use crate::selection::recovery_rate;
    use fcma_fmri::presets;

    #[test]
    fn stratified_folds_cover_both_classes() {
        let y = vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let g = stratified_folds(&y, 2);
        for fold in 0..2 {
            let labels: Vec<f32> =
                y.iter().zip(&g).filter(|(_, &gg)| gg == fold).map(|(&l, _)| l).collect();
            assert!(labels.contains(&1.0) && labels.contains(&-1.0));
        }
    }

    /// End-to-end offline analysis on the tiny planted dataset: FCMA must
    /// recover the planted network and classify held-out subjects above
    /// chance — the reproduction of "We reproduced the results used in
    /// [30] and [16]" (§5.2.1) against a verifiable ground truth.
    #[test]
    fn offline_analysis_recovers_planted_network() {
        let mut cfg_data = presets::tiny();
        cfg_data.coupling = 1.8;
        let (d, gt) = cfg_data.generate();
        let exec = OptimizedExecutor::default();
        let cfg = AnalysisConfig { task_size: 32, top_k: gt.informative.len() };
        let result = offline_analysis(&d, &exec, &cfg);

        assert_eq!(result.folds.len(), d.n_subjects());
        assert!(
            result.mean_test_accuracy > 0.7,
            "held-out accuracy {:.3}",
            result.mean_test_accuracy
        );
        let rec = recovery_rate(&result.stable, &gt.informative);
        assert!(rec >= 0.5, "stable ROI recovered only {rec:.2} of the planted network");
    }

    #[test]
    fn online_selection_finds_informative_voxels() {
        let mut cfg_data = presets::tiny();
        cfg_data.coupling = 2.0;
        cfg_data.n_subjects = 1;
        cfg_data.epochs_per_subject = 16;
        let (d, gt) = cfg_data.generate();
        let exec = OptimizedExecutor::default();
        let cfg = AnalysisConfig { task_size: 32, top_k: gt.informative.len() };
        let r = online_voxel_selection(&d, &exec, &cfg, 4);
        let rec = recovery_rate(&r.selected, &gt.informative);
        assert!(rec >= 0.5, "online selection recovered only {rec:.2}");
        assert_eq!(r.scores.len(), d.n_voxels());
    }
}
