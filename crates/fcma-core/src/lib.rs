//! # fcma-core — the FCMA three-stage pipeline
//!
//! The paper's primary contribution: full correlation matrix analysis
//! with both the §3.2 **baseline** implementation (generic blocked GEMM,
//! three-pass normalization, generic SYRK, LibSVM-replica solver) and the
//! §4 **optimized** implementation (tall-skinny strip-blocked correlation
//! fused with within-subject normalization, panel SYRK, PhiSVM).
//!
//! * [`context::TaskContext`] — shared normalized data + epoch structure;
//! * [`task`] — voxel-block partitioning (the cluster work unit);
//! * [`stage1`] — correlation computation;
//! * [`stage2`] — Fisher + within-subject z-scoring, three schedules
//!   (baseline / separated / merged) that agree bit-for-bit within f32
//!   tolerance;
//! * [`stage3`] — kernel precompute + per-voxel SVM cross validation;
//! * [`executor`] — the baseline and optimized single-node pipelines;
//! * [`selection`] — ROI ranking and cross-fold stability;
//! * [`analysis`] — offline nested LOSO and online voxel selection.

pub mod analysis;
pub mod context;
pub mod control;
pub mod executor;
pub mod realtime;
pub mod selection;
pub mod stage1;
pub mod stage2;
pub mod stage3;
pub mod stats;
pub mod task;

pub use analysis::{offline_analysis, online_voxel_selection, score_all_voxels, AnalysisConfig};
pub use analysis::{FoldOutcome, OfflineResult, OnlineResult};
pub use context::TaskContext;
pub use control::{CancelToken, TaskControls};
pub use executor::{BaselineExecutor, OptimizedExecutor, TaskExecutor};
pub use realtime::{FeedbackModel, SessionError};
pub use realtime::{OnlineSession, SessionConfig};
pub use selection::{recovery_rate, select_top_k};
pub use stage1::CorrData;
pub use stage1::{corr_baseline, corr_baseline_parallel, corr_optimized};
pub use stage2::{
    corr_normalized_merged, corr_normalized_merged_parallel, normalize_baseline,
    normalize_separated,
};
pub use stage3::{score_task, KernelPrecompute};
pub use stats::{benjamini_hochberg, voxel_permutation_test};
pub use task::{partition, VoxelScore, VoxelTask};
