//! Cooperative task controls: cancellation tokens and soft deadlines.
//!
//! The cluster master cannot forcibly kill a worker thread the way an MPI
//! runtime can fence a node, so hang recovery is cooperative: every task
//! dispatch carries a [`TaskControls`] handle and well-behaved executors
//! poll [`CancelToken::is_cancelled`] at convenient points (between
//! voxels, inside injected delays). When the master condemns a worker as
//! hung it flips the token; the worker unwinds on its own schedule while
//! the master has already re-dispatched the task elsewhere and will
//! ignore the condemned worker's late results.

use fcma_sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A cheaply cloneable cancellation flag shared between the cluster
/// master and one worker.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Per-dispatch execution controls handed to
/// [`crate::TaskExecutor::process_with_controls`].
#[derive(Debug, Clone, Default)]
pub struct TaskControls {
    /// Cooperative cancellation flag; executors should return early
    /// (with a partial or empty score vector) once it is set.
    pub cancel: CancelToken,
    /// Advisory per-task deadline. The scheduler enforces it on its own
    /// clock; executors may additionally use it to bound internal waits.
    pub deadline: Option<Duration>,
}

impl TaskControls {
    /// Controls with no deadline and a token nobody will cancel — the
    /// right default for sequential (non-cluster) execution.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Controls bounded by a per-task deadline.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn with_deadline(deadline: Duration) -> Self {
        TaskControls { cancel: CancelToken::new(), deadline: Some(deadline) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn controls_defaults() {
        let c = TaskControls::unbounded();
        assert!(c.deadline.is_none());
        assert!(!c.cancel.is_cancelled());
        let d = TaskControls::with_deadline(Duration::from_millis(5));
        assert_eq!(d.deadline, Some(Duration::from_millis(5)));
    }
}
