//! Single-node task executors: the paper's baseline vs. optimized
//! implementations of the three-stage pipeline.

use crate::context::TaskContext;
use crate::control::TaskControls;
use crate::stage1::corr_baseline_parallel;
use crate::stage2::{corr_normalized_merged_parallel, normalize_baseline};
use crate::stage3::{score_task, KernelPrecompute};
use crate::task::{VoxelScore, VoxelTask};
use fcma_linalg::tall_skinny::TallSkinnyOpts;
use fcma_svm::{LibSvmParams, SmoParams, SolverKind};
use fcma_sync::pool::Pool;
use fcma_trace::span;

/// A single-node implementation of the three-stage FCMA pipeline.
pub trait TaskExecutor: Send + Sync {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;

    /// Run the full pipeline for one voxel task, optionally overriding the
    /// cross-validation grouping (defaults to the context's subjects).
    fn process_grouped(
        &self,
        ctx: &TaskContext,
        task: VoxelTask,
        groups: Option<&[usize]>,
    ) -> Vec<VoxelScore>;

    /// Run the pipeline with subject-wise (LOSO) cross validation.
    fn process(&self, ctx: &TaskContext, task: VoxelTask) -> Vec<VoxelScore> {
        self.process_grouped(ctx, task, None)
    }

    /// Like [`Self::process_grouped`], but with cooperative cancellation
    /// and deadline controls (see [`TaskControls`]). The default
    /// implementation ignores the controls — the three-stage pipeline is
    /// short per task, so the cluster scheduler's own deadline clock is
    /// the enforcement point. Executors that can block for long periods
    /// (fault injectors, remote backends) should poll
    /// `controls.cancel` and return early when it fires; the scheduler
    /// discards results from cancelled dispatches.
    fn process_with_controls(
        &self,
        ctx: &TaskContext,
        task: VoxelTask,
        groups: Option<&[usize]>,
        controls: &TaskControls,
    ) -> Vec<VoxelScore> {
        let _ = controls;
        self.process_grouped(ctx, task, groups)
    }
}

/// The paper's §3.2 baseline: per-epoch generic blocked GEMM, three-pass
/// normalization, generic SYRK, and the LibSVM-replica solver.
#[derive(Debug, Clone, Default)]
pub struct BaselineExecutor {
    /// LibSVM parameters for stage 3.
    pub svm: LibSvmParams,
    /// Worker pool for the kernel loops (defaults to single-threaded;
    /// see [`Pool::from_env`] for the `FCMA_THREADS` plumbing).
    pub pool: Pool,
}

impl TaskExecutor for BaselineExecutor {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn process_grouped(
        &self,
        ctx: &TaskContext,
        task: VoxelTask,
        groups: Option<&[usize]>,
    ) -> Vec<VoxelScore> {
        let _span =
            span!("task.process", start = task.start, count = task.count, executor = "baseline");
        let mut corr = corr_baseline_parallel(ctx, task, &self.pool);
        normalize_baseline(&mut corr, ctx);
        let groups = groups.unwrap_or(&ctx.subjects);
        score_task(
            &corr,
            task,
            &ctx.y,
            groups,
            &SolverKind::LibSvm(self.svm),
            KernelPrecompute::Baseline,
            &self.pool,
        )
    }
}

/// The paper's §4 optimized pipeline: merged stage 1+2 with tall-skinny
/// blocking, panel SYRK, and PhiSVM.
#[derive(Debug, Clone, Default)]
pub struct OptimizedExecutor {
    /// Strip width of the tall-skinny kernel.
    pub opts: TallSkinnyOpts,
    /// PhiSVM parameters for stage 3.
    pub svm: SmoParams,
    /// Worker pool for the kernel loops (defaults to single-threaded;
    /// see [`Pool::from_env`] for the `FCMA_THREADS` plumbing).
    pub pool: Pool,
}

impl TaskExecutor for OptimizedExecutor {
    fn name(&self) -> &'static str {
        "optimized"
    }

    fn process_grouped(
        &self,
        ctx: &TaskContext,
        task: VoxelTask,
        groups: Option<&[usize]>,
    ) -> Vec<VoxelScore> {
        let _span =
            span!("task.process", start = task.start, count = task.count, executor = "optimized");
        let corr = corr_normalized_merged_parallel(ctx, task, self.opts, &self.pool);
        let groups = groups.unwrap_or(&ctx.subjects);
        score_task(
            &corr,
            task,
            &ctx.y,
            groups,
            &SolverKind::PhiSvm(self.svm),
            KernelPrecompute::Optimized,
            &self.pool,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_fmri::presets;

    #[test]
    fn executors_agree_on_voxel_ranking_quality() {
        let mut cfg = presets::tiny();
        cfg.coupling = 1.6;
        let (d, gt) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let task = VoxelTask { start: 0, count: d.n_voxels() };

        let base = BaselineExecutor::default().process(&ctx, task);
        let opt = OptimizedExecutor::default().process(&ctx, task);
        assert_eq!(base.len(), opt.len());

        // Both implementations must put informative voxels on top.
        for scores in [&base, &opt] {
            let mut ranked: Vec<_> = scores.clone();
            ranked.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).unwrap());
            let top: Vec<usize> =
                ranked.iter().take(gt.informative.len()).map(|s| s.voxel).collect();
            let hits = top.iter().filter(|v| gt.informative.contains(v)).count();
            assert!(
                hits * 2 >= gt.informative.len(),
                "only {hits}/{} informative voxels in top set",
                gt.informative.len()
            );
        }

        // And their per-voxel accuracies must track each other.
        let mean_gap: f64 =
            base.iter().zip(&opt).map(|(a, b)| (a.accuracy - b.accuracy).abs()).sum::<f64>()
                / base.len() as f64;
        assert!(mean_gap < 0.1, "executor agreement gap {mean_gap}");
    }

    #[test]
    fn custom_groups_override_subjects() {
        let (d, _) = presets::tiny().generate();
        let ctx = TaskContext::full(&d);
        let task = VoxelTask { start: 0, count: 4 };
        // 4 groups by epoch index — the online-analysis style grouping.
        let groups: Vec<usize> = (0..ctx.n_epochs()).map(|e| e % 4).collect();
        let scores = OptimizedExecutor::default().process_grouped(&ctx, task, Some(&groups));
        assert_eq!(scores.len(), 4);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(&s.accuracy)));
    }
}
