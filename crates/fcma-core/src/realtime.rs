//! Streaming closed-loop session — the online half of the paper's Fig. 1.
//!
//! In a closed-loop experiment the scanner emits one brain volume every
//! 1–2 s; epochs accumulate during the session. This module provides an
//! [`OnlineSession`] that ingests labeled epochs incrementally, re-selects
//! voxels and retrains the feedback classifier on demand, and scores new
//! epochs as they complete — the software half of the paper's
//! scanner-to-cluster loop, with the scanner replaced by the caller
//! feeding volumes.

use crate::analysis::stratified_folds;
use crate::context::TaskContext;
use crate::selection::select_top_k;
use crate::stage2::corr_normalized_merged;
use crate::task::VoxelTask;
use fcma_fmri::{Condition, Dataset, EpochSpec};
use fcma_linalg::tall_skinny::TallSkinnyOpts;
use fcma_linalg::Mat;
use fcma_svm::{train_phisvm, KernelMatrix, SmoParams, SvmModel};

/// Configuration for the streaming session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Brain voxels per acquired volume.
    pub n_voxels: usize,
    /// Time points per epoch.
    pub epoch_len: usize,
    /// Voxels to select for the feedback classifier.
    pub top_k: usize,
    /// Epoch folds for the online selection CV.
    pub n_folds: usize,
    /// Voxels per selection task.
    pub task_size: usize,
    /// SVM parameters.
    pub svm: SmoParams,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            n_voxels: 0,
            epoch_len: 12,
            top_k: 16,
            n_folds: 4,
            task_size: 64,
            svm: SmoParams::default(),
        }
    }
}

/// A trained feedback state: selected voxels + classifier.
#[derive(Debug, Clone)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct FeedbackModel {
    /// Selected voxel indices.
    pub selected: Vec<usize>,
    /// The trained classifier over the selected voxels' correlation
    /// patterns.
    pub model: SvmModel,
    /// Kernel over all epochs seen at training time (prediction for newer
    /// epochs rebuilds features; see [`OnlineSession::score_epoch`]).
    kernel: KernelMatrix,
    /// Number of epochs the kernel covers.
    trained_epochs: usize,
}

/// Streaming session state.
pub struct OnlineSession {
    cfg: SessionConfig,
    /// Raw activity columns accumulated so far (`n_voxels × t`).
    volumes: Vec<Vec<f32>>,
    /// Completed labeled epochs.
    epochs: Vec<EpochSpec>,
    /// Currently open epoch (label, start) if any.
    open: Option<(Condition, usize)>,
}

/// Errors from session misuse.
#[derive(Debug, PartialEq, Eq)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub enum SessionError {
    /// `begin_epoch` while another epoch is open.
    EpochAlreadyOpen,
    /// `end_epoch` without an open epoch.
    NoOpenEpoch,
    /// Open epoch does not yet span `epoch_len` volumes.
    EpochTooShort { have: usize, need: usize },
    /// Not enough epochs/conditions to train.
    NotEnoughData(String),
    /// Volume length does not match `n_voxels`.
    BadVolume { got: usize, want: usize },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::EpochAlreadyOpen => write!(f, "an epoch is already open"),
            SessionError::NoOpenEpoch => write!(f, "no epoch is open"),
            SessionError::EpochTooShort { have, need } => {
                write!(f, "open epoch has {have} volumes, needs {need}")
            }
            SessionError::NotEnoughData(m) => write!(f, "not enough data: {m}"),
            SessionError::BadVolume { got, want } => {
                write!(f, "volume has {got} voxels, expected {want}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl OnlineSession {
    /// Start an empty session for `n_voxels`-voxel volumes.
    pub fn new(mut cfg: SessionConfig, n_voxels: usize) -> Self {
        cfg.n_voxels = n_voxels;
        OnlineSession { cfg, volumes: Vec::new(), epochs: Vec::new(), open: None }
    }

    /// Number of volumes ingested.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn n_volumes(&self) -> usize {
        self.volumes.len()
    }

    /// Number of completed labeled epochs.
    pub fn n_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Ingest one acquired brain volume (all voxels at one time point).
    pub fn push_volume(&mut self, volume: &[f32]) -> Result<(), SessionError> {
        if volume.len() != self.cfg.n_voxels {
            return Err(SessionError::BadVolume { got: volume.len(), want: self.cfg.n_voxels });
        }
        self.volumes.push(volume.to_vec());
        Ok(())
    }

    /// Mark the start of a labeled epoch at the *next* volume.
    pub fn begin_epoch(&mut self, label: Condition) -> Result<(), SessionError> {
        if self.open.is_some() {
            return Err(SessionError::EpochAlreadyOpen);
        }
        self.open = Some((label, self.volumes.len()));
        Ok(())
    }

    /// Close the open epoch; it must span exactly `epoch_len` volumes or
    /// more (extra volumes are kept; the epoch window is the first
    /// `epoch_len`).
    pub fn end_epoch(&mut self) -> Result<usize, SessionError> {
        let (label, start) = self.open.take().ok_or(SessionError::NoOpenEpoch)?;
        let have = self.volumes.len() - start;
        if have < self.cfg.epoch_len {
            self.open = Some((label, start));
            return Err(SessionError::EpochTooShort { have, need: self.cfg.epoch_len });
        }
        self.epochs.push(EpochSpec { subject: 0, label, start, len: self.cfg.epoch_len });
        Ok(self.epochs.len() - 1)
    }

    /// Snapshot the accumulated data as a [`Dataset`].
    pub fn dataset(&self) -> Result<Dataset, SessionError> {
        if self.epochs.len() < 2 {
            return Err(SessionError::NotEnoughData("need >= 2 epochs".into()));
        }
        let t = self.volumes.len();
        let mut data = Mat::zeros(self.cfg.n_voxels, t);
        for (ti, vol) in self.volumes.iter().enumerate() {
            for (v, &x) in vol.iter().enumerate() {
                data.set(v, ti, x);
            }
        }
        Dataset::new(data, self.epochs.clone())
            .map_err(|e| SessionError::NotEnoughData(e.to_string()))
    }

    /// Select voxels and train the feedback classifier on everything seen
    /// so far (paper §5.2.2: k-fold over epochs, no nested CV).
    pub fn train_feedback(&self) -> Result<FeedbackModel, SessionError> {
        let dataset = self.dataset()?;
        let ctx = TaskContext::full(&dataset);
        let groups = stratified_folds(&ctx.y, self.cfg.n_folds.min(ctx.n_epochs()));
        let exec = crate::executor::OptimizedExecutor { svm: self.cfg.svm, ..Default::default() };
        let scores =
            crate::analysis::score_all_voxels(&ctx, &exec, self.cfg.task_size, Some(&groups));
        let selected = select_top_k(&scores, self.cfg.top_k.min(scores.len()));

        let (kernel, _) = self.selected_kernel(&ctx, &selected);
        let idx: Vec<usize> = (0..ctx.n_epochs()).collect();
        let model = train_phisvm(&kernel, &idx, &ctx.y, &self.cfg.svm);
        Ok(FeedbackModel { selected, model, kernel, trained_epochs: ctx.n_epochs() })
    }

    /// Score epoch `e` (any completed epoch, typically one newer than the
    /// training set) with a feedback model: returns the decision value
    /// whose sign is the predicted condition.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn score_epoch(&self, fb: &FeedbackModel, e: usize) -> Result<f32, SessionError> {
        if e >= self.epochs.len() {
            return Err(SessionError::NotEnoughData(format!("epoch {e} not completed")));
        }
        if e < fb.trained_epochs && fb.kernel.n() == fb.trained_epochs {
            // Covered by the training-time kernel: one row read.
            return Ok(fb.model.decision(&fb.kernel, e));
        }
        // Newer epoch: rebuild the kernel over all epochs (the correlation
        // features of *training* epochs are unchanged; the full rebuild
        // keeps the code simple at session scale).
        let dataset = self.dataset()?;
        let ctx = TaskContext::full(&dataset);
        let (kernel, _) = self.selected_kernel(&ctx, &fb.selected);
        Ok(fb.model.decision(&kernel, e))
    }

    /// Build the kernel over every epoch's selected-voxel correlation
    /// patterns.
    // audit: allow(panicpath) — row slices are sized by the same m/n/selected that sized the samples matrix
    fn selected_kernel(&self, ctx: &TaskContext, selected: &[usize]) -> (KernelMatrix, usize) {
        let m = ctx.n_epochs();
        let n = ctx.n_voxels();
        let mut samples = Mat::zeros(m, selected.len() * n);
        for (si, &v) in selected.iter().enumerate() {
            let corr = corr_normalized_merged(
                ctx,
                VoxelTask { start: v, count: 1 },
                TallSkinnyOpts::default(),
            );
            for e in 0..m {
                samples.row_mut(e)[si * n..(si + 1) * n].copy_from_slice(corr.row(0, e));
            }
        }
        (KernelMatrix::precompute(&samples), m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_fmri::presets;

    /// Feed a pre-generated dataset through the streaming interface.
    fn stream(dataset: &Dataset, cfg: SessionConfig, epochs: usize) -> OnlineSession {
        let mut s = OnlineSession::new(cfg, dataset.n_voxels());
        for (ei, ep) in dataset.epochs().iter().take(epochs).enumerate() {
            s.begin_epoch(ep.label).unwrap();
            for t in ep.start..ep.start + ep.len {
                let vol: Vec<f32> =
                    (0..dataset.n_voxels()).map(|v| dataset.data().get(v, t)).collect();
                s.push_volume(&vol).unwrap();
            }
            assert_eq!(s.end_epoch().unwrap(), ei);
        }
        s
    }

    fn single_subject() -> (Dataset, fcma_fmri::GroundTruth, SessionConfig) {
        let mut cfg = presets::tiny();
        cfg.n_subjects = 1;
        cfg.epochs_per_subject = 20;
        cfg.n_voxels = 96;
        cfg.n_informative = 12;
        cfg.coupling = 1.8;
        cfg.gap = 0; // streaming feeds epoch windows back-to-back
        let (d, gt) = cfg.generate();
        let scfg = SessionConfig { top_k: 12, task_size: 48, ..Default::default() };
        (d, gt, scfg)
    }

    #[test]
    fn protocol_errors_are_reported() {
        let (d, _, scfg) = single_subject();
        let mut s = OnlineSession::new(scfg, d.n_voxels());
        assert_eq!(s.end_epoch().unwrap_err(), SessionError::NoOpenEpoch);
        s.begin_epoch(Condition::A).unwrap();
        assert_eq!(s.begin_epoch(Condition::B).unwrap_err(), SessionError::EpochAlreadyOpen);
        assert!(matches!(s.end_epoch().unwrap_err(), SessionError::EpochTooShort { .. }));
        assert!(matches!(
            s.push_volume(&[0.0; 3]).unwrap_err(),
            SessionError::BadVolume { got: 3, .. }
        ));
        assert!(s.dataset().is_err());
    }

    #[test]
    fn streamed_dataset_matches_source() {
        let (d, _, scfg) = single_subject();
        let s = stream(&d, scfg, d.n_epochs());
        let snap = s.dataset().unwrap();
        assert_eq!(snap.n_epochs(), d.n_epochs());
        // The streamed time axis is the concatenation of epoch windows.
        for (e, ep) in snap.epochs().iter().enumerate() {
            let src = d.epochs()[e];
            for v in [0usize, 13, 95] {
                for t in 0..ep.len {
                    assert_eq!(
                        snap.data().get(v, ep.start + t),
                        d.data().get(v, src.start + t),
                        "voxel {v} epoch {e} t {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn feedback_model_selects_planted_voxels_and_predicts() {
        let (d, gt, scfg) = single_subject();
        // Train on the first 14 epochs; stream all 20.
        let s = stream(&d, scfg, 14);
        let fb = s.train_feedback().unwrap();
        let hits = fb.selected.iter().filter(|v| gt.is_informative(**v)).count();
        assert!(hits * 2 >= fb.selected.len(), "only {hits}/{} planted", fb.selected.len());

        // Now keep streaming and score the new epochs live.
        let s = stream(&d, SessionConfig { top_k: 12, task_size: 48, ..Default::default() }, 20);
        let mut correct = 0;
        for e in 14..20 {
            let dec = s.score_epoch(&fb, e).unwrap();
            let want = d.epochs()[e].label.sign();
            if dec.signum() == want {
                correct += 1;
            }
        }
        assert!(correct >= 4, "online feedback got {correct}/6 correct");
    }

    #[test]
    fn scoring_unknown_epoch_errors() {
        let (d, _, scfg) = single_subject();
        // 11 of 20 epochs: with 10 per condition, any prefix of 11 is
        // guaranteed to contain both classes whatever the shuffle order,
        // so training cannot fail on an unlucky label arrangement.
        let s = stream(&d, scfg, 11);
        let fb = s.train_feedback().unwrap();
        assert!(s.score_epoch(&fb, 99).is_err());
    }
}
