//! Stage 1 — correlation computation.
//!
//! A worker computes, for its assigned voxel block, the Pearson
//! correlation vector against the whole brain for every epoch, storing
//! the results grouped by voxel (row `v·M + e`). Two implementations:
//!
//! * [`corr_baseline`] — the paper's §3.2 baseline: one generic blocked
//!   GEMM call per epoch, using the output leading dimension to interleave
//!   (the `cblas_sgemm`+`ldc` trick);
//! * [`corr_optimized`] — the paper's §4.2 kernel: tall-skinny-specialized
//!   blocking via [`fcma_linalg::corr_tall_skinny`].

use crate::context::TaskContext;
use crate::task::VoxelTask;
use fcma_linalg::tall_skinny::{EpochPair, TallSkinnyOpts};
use fcma_linalg::{
    corr_tall_skinny, gemm_blocked_parallel, gemm_blocked_scratch, BlockSizes, CorrLayout,
    GemmScratch, Mat,
};
use fcma_sim::analytic::CorrShape;
use fcma_sync::pool::{Pool, PoolStats, WorkerLane};
use fcma_trace::{counter, labeled_counter, span};

/// Bridge one parallel region's [`PoolStats`] into the trace counters.
/// The pool itself is trace-free (fcma-sync stays a leaf crate), so the
/// kernel call sites own the `pool.*` counter taxonomy (DESIGN.md §11).
/// Region totals land in plain counters; the per-worker lanes land in
/// `worker`-labeled series so load imbalance (one worker stealing or
/// parking far more than its peers) survives the aggregation.
pub(crate) fn bridge_pool_counters(stats: &PoolStats) {
    counter!("pool.tasks.run", stats.tasks);
    counter!("pool.steals", stats.steals);
    counter!("pool.idle.parks", stats.idle_parks);
    let lanes: &[WorkerLane] = &stats.per_worker;
    for (wid, lane) in lanes.iter().enumerate() {
        labeled_counter!("pool.worker.tasks", worker = wid, lane.tasks);
        labeled_counter!("pool.worker.steals", worker = wid, lane.steals);
        labeled_counter!("pool.worker.parks", worker = wid, lane.parks);
    }
}

/// Widen a shape dimension for the analytic counter models.
fn dim(x: usize) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

/// Bridge the analytic [`fcma_sim::counters::KernelCounters`] model for
/// this task's shape into the trace counters, so a traced run can put
/// the model's FLOP / memory-reference tallies next to measured wall
/// time in one report. `model` picks the analytic variant (MKL-like
/// baseline vs the tall-skinny kernel).
fn bridge_stage1_counters(
    assigned: &[Mat],
    v: usize,
    n: usize,
    model: fn(&CorrShape, &fcma_sim::machine::MachineConfig) -> fcma_sim::counters::KernelCounters,
) {
    let mach = fcma_sim::machine::phi_5110p();
    let mut flops = 0u64;
    let mut mem_refs = 0u64;
    for a in assigned {
        // Epoch lengths may differ, so model one epoch at a time.
        let shape = CorrShape { v: dim(v), n: dim(n), m: 1, k: dim(a.cols()) };
        let c = model(&shape, &mach);
        flops = flops.saturating_add(c.flops);
        mem_refs = mem_refs.saturating_add(c.mem_refs);
    }
    counter!("stage1.flops", flops);
    counter!("stage1.mem_refs", mem_refs);
}

/// The interleaved correlation buffer for one task: `V·M` rows of `N`
/// floats, row `v·M + e` holding voxel `v`'s correlation vector for
/// epoch `e`.
#[derive(Debug, Clone)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct CorrData {
    /// Backing buffer.
    pub buf: Vec<f32>,
    /// Shape descriptor.
    pub layout: CorrLayout,
}

impl CorrData {
    /// Voxel `v`'s full `M × N` correlation data matrix (rows are epochs)
    /// — exactly the stage-3 SVM data matrix, contiguous by construction.
    ///
    /// # Panics
    /// If `v` is out of range for the layout.
    pub fn voxel_matrix(&self, v: usize) -> &[f32] {
        let m = self.layout.n_epochs;
        let n = self.layout.n_brain;
        &self.buf[v * m * n..(v + 1) * m * n]
    }

    /// Mutable row for (voxel, epoch).
    ///
    /// # Panics
    /// If `(v, e)` is out of range for the layout.
    pub fn row_mut(&mut self, v: usize, e: usize) -> &mut [f32] {
        let n = self.layout.n_brain;
        let r = self.layout.row(v, e);
        &mut self.buf[r * n..(r + 1) * n]
    }

    /// Row for (voxel, epoch).
    ///
    /// # Panics
    /// If `(v, e)` is out of range for the layout.
    pub fn row(&self, v: usize, e: usize) -> &[f32] {
        let n = self.layout.n_brain;
        let r = self.layout.row(v, e);
        &self.buf[r * n..(r + 1) * n]
    }
}

/// Extract the per-epoch assigned-voxel matrices for a task.
pub(crate) fn assigned_blocks(ctx: &TaskContext, task: VoxelTask) -> Vec<Mat> {
    ctx.norm.assigned_blocks(task.range())
}

/// Baseline stage 1: per-epoch generic blocked GEMM with interleaved
/// output via the leading dimension.
///
/// # Panics
/// If `task` is out of range for `ctx`.
pub fn corr_baseline(ctx: &TaskContext, task: VoxelTask) -> CorrData {
    let v = task.count;
    let n = ctx.n_voxels();
    let m = ctx.n_epochs();
    let layout = CorrLayout { n_assigned: v, n_epochs: m, n_brain: n };
    let mut buf = vec![0.0f32; layout.out_len()];
    let assigned = assigned_blocks(ctx, task);
    let _span = span!("stage1.corr", voxels = v, brain = n, epochs = m, kernel = "baseline");
    if fcma_trace::is_enabled() {
        bridge_stage1_counters(&assigned, v, n, fcma_sim::analytic::corr_mkl);
    }
    // One scratch serves every epoch's multiply (DESIGN.md §14: no
    // per-iteration allocation on the correlation path).
    let mut scratch = GemmScratch::new(BlockSizes::default());
    for (e, a) in assigned.iter().enumerate() {
        let b = ctx.norm.brain(e);
        let k = a.cols();
        gemm_blocked_scratch(
            v,
            n,
            k,
            a.as_slice(),
            k.max(1),
            b.as_slice(),
            n,
            &mut buf[e * n..],
            m * n,
            &mut scratch,
        );
    }
    fcma_linalg::debug_assert_finite!(&buf, "stage1 baseline correlation output");
    CorrData { buf, layout }
}

/// Parallel baseline stage 1: the same per-epoch generic blocked GEMM,
/// with each epoch's multiply banded across `pool` workers along the
/// (small) assigned-voxel dimension. Bit-identical to [`corr_baseline`]
/// at every thread count — the bands are `mc`-aligned, so the per-element
/// FMA sequences match the serial schedule exactly (DESIGN.md §15).
///
/// # Panics
/// If `task` is out of range for `ctx`.
pub fn corr_baseline_parallel(ctx: &TaskContext, task: VoxelTask, pool: &Pool) -> CorrData {
    if pool.threads() <= 1 {
        return corr_baseline(ctx, task);
    }
    let v = task.count;
    let n = ctx.n_voxels();
    let m = ctx.n_epochs();
    let layout = CorrLayout { n_assigned: v, n_epochs: m, n_brain: n };
    let mut buf = vec![0.0f32; layout.out_len()];
    let assigned = assigned_blocks(ctx, task);
    let _span = span!("stage1.corr", voxels = v, brain = n, epochs = m, kernel = "baseline");
    if fcma_trace::is_enabled() {
        bridge_stage1_counters(&assigned, v, n, fcma_sim::analytic::corr_mkl);
    }
    // Merge the per-epoch parallel regions into one stats record so the
    // trace sees one bridge per task, not one per epoch.
    let mut pool_stats = PoolStats::default();
    for (e, a) in assigned.iter().enumerate() {
        let b = ctx.norm.brain(e);
        let k = a.cols();
        pool_stats.merge(&gemm_blocked_parallel(
            pool,
            BlockSizes::default(),
            v,
            n,
            k,
            a.as_slice(),
            k.max(1),
            b.as_slice(),
            n,
            &mut buf[e * n..],
            m * n,
        ));
    }
    bridge_pool_counters(&pool_stats);
    fcma_linalg::debug_assert_finite!(&buf, "stage1 baseline correlation output");
    CorrData { buf, layout }
}

/// Optimized stage 1: the tall-skinny strip-blocked kernel.
pub fn corr_optimized(ctx: &TaskContext, task: VoxelTask, opts: TallSkinnyOpts) -> CorrData {
    let v = task.count;
    let n = ctx.n_voxels();
    let m = ctx.n_epochs();
    let layout = CorrLayout { n_assigned: v, n_epochs: m, n_brain: n };
    let mut buf = vec![0.0f32; layout.out_len()];
    let assigned = assigned_blocks(ctx, task);
    let _span = span!("stage1.corr", voxels = v, brain = n, epochs = m, kernel = "tall_skinny");
    if fcma_trace::is_enabled() {
        bridge_stage1_counters(&assigned, v, n, fcma_sim::analytic::corr_optimized);
    }
    let pairs: Vec<EpochPair<'_>> = assigned
        .iter()
        .enumerate()
        .map(|(e, a)| EpochPair { assigned: a, brain: ctx.norm.brain(e) })
        .collect();
    let got = corr_tall_skinny(&pairs, &mut buf, opts);
    debug_assert_eq!(got, layout);
    fcma_linalg::debug_assert_finite!(&buf, "stage1 optimized correlation output");
    CorrData { buf, layout }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_fmri::presets;
    use fcma_linalg::dot;

    fn ctx() -> TaskContext {
        let (d, _) = presets::tiny().generate();
        TaskContext::full(&d)
    }

    #[test]
    fn baseline_and_optimized_agree() {
        let ctx = ctx();
        let task = VoxelTask { start: 8, count: 13 };
        let a = corr_baseline(&ctx, task);
        let b = corr_optimized(&ctx, task, TallSkinnyOpts::default());
        assert_eq!(a.buf.len(), b.buf.len());
        for (i, (x, y)) in a.buf.iter().zip(&b.buf).enumerate() {
            assert!((x - y).abs() < 1e-4, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn self_correlation_is_one() {
        let ctx = ctx();
        let task = VoxelTask { start: 0, count: 6 };
        let c = corr_optimized(&ctx, task, TallSkinnyOpts::default());
        for v in 0..6 {
            for e in 0..ctx.n_epochs() {
                let r = c.row(v, e)[task.start + v];
                assert!((r - 1.0).abs() < 1e-3, "voxel {v} epoch {e}: self-corr {r}");
            }
        }
    }

    #[test]
    fn correlations_match_direct_dot_products() {
        let ctx = ctx();
        let task = VoxelTask { start: 3, count: 2 };
        let c = corr_baseline(&ctx, task);
        for e in [0usize, 5] {
            let b = ctx.norm.brain(e);
            for vi in 0..2 {
                let col_a: Vec<f32> = (0..b.rows()).map(|t| b.get(t, 3 + vi)).collect();
                for j in [0usize, 17, 95] {
                    let col_b: Vec<f32> = (0..b.rows()).map(|t| b.get(t, j)).collect();
                    let want = dot(&col_a, &col_b);
                    let got = c.row(vi, e)[j];
                    assert!((got - want).abs() < 1e-4, "v{vi} e{e} j{j}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn voxel_matrix_is_contiguous_epoch_rows() {
        let ctx = ctx();
        let task = VoxelTask { start: 0, count: 3 };
        let c = corr_baseline(&ctx, task);
        let m = ctx.n_epochs();
        let n = ctx.n_voxels();
        let vm = c.voxel_matrix(1);
        assert_eq!(vm.len(), m * n);
        for e in 0..m {
            assert_eq!(&vm[e * n..(e + 1) * n], c.row(1, e));
        }
    }

    #[test]
    fn correlations_bounded_by_one() {
        let ctx = ctx();
        let task = VoxelTask { start: 0, count: 4 };
        let c = corr_optimized(&ctx, task, TallSkinnyOpts::default());
        for &x in &c.buf {
            assert!(x.abs() <= 1.0 + 1e-3, "correlation {x} out of range");
        }
    }
}
