//! Statistical validation of selected voxels: permutation testing and
//! false-discovery-rate control.
//!
//! The paper notes that "the selected voxels across different folds can
//! be statistically compared to identify the reliable voxels whose
//! correlation patterns ... are informative" (§5.2.1). This module
//! provides the standard machinery: a within-subject label-permutation
//! null distribution for a voxel's CV accuracy, permutation p-values, and
//! Benjamini–Hochberg FDR selection over the whole brain.

use crate::stage1::CorrData;
use fcma_linalg::f64_from_usize;
use fcma_svm::{loso_cross_validate, KernelMatrix, SolverKind};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Permute labels *within each subject* (the exchangeable unit in a
/// subject-level design), preserving each subject's class balance.
///
/// # Panics
/// If `y` and `subjects` differ in length.
pub(crate) fn permute_labels_within_subject(
    y: &[f32],
    subjects: &[usize],
    rng: &mut ChaCha8Rng,
) -> Vec<f32> {
    assert_eq!(y.len(), subjects.len(), "permute: length mismatch");
    let mut out = y.to_vec();
    let n_subjects = subjects.iter().copied().max().map_or(0, |s| s + 1);
    for s in 0..n_subjects {
        let idx: Vec<usize> = (0..y.len()).filter(|&t| subjects[t] == s).collect();
        let mut labels: Vec<f32> = idx.iter().map(|&t| y[t]).collect();
        labels.shuffle(rng);
        for (&t, &l) in idx.iter().zip(&labels) {
            out[t] = l;
        }
    }
    out
}

/// Null distribution of one voxel's LOSO accuracy under label
/// permutation: `n_perms` re-runs of the cross validation with labels
/// shuffled within subject. Deterministic in `seed`.
pub(crate) fn null_accuracies(
    kernel: &KernelMatrix,
    y: &[f32],
    subjects: &[usize],
    solver: &SolverKind,
    n_perms: usize,
    seed: u64,
) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n_perms)
        .map(|_| {
            let y_perm = permute_labels_within_subject(y, subjects, &mut rng);
            loso_cross_validate(kernel, &y_perm, subjects, solver).accuracy
        })
        .collect()
}

/// Permutation p-value with the standard +1 correction:
/// `(1 + #{null ≥ observed}) / (1 + n_perms)`.
pub(crate) fn permutation_p_value(observed: f64, null: &[f64]) -> f64 {
    let ge = null.iter().filter(|&&v| v >= observed - 1e-12).count();
    f64_from_usize(1 + ge) / f64_from_usize(1 + null.len())
}

/// Full permutation test for one voxel of a task's correlation data.
#[allow(clippy::too_many_arguments)]
pub fn voxel_permutation_test(
    corr: &CorrData,
    vi: usize,
    y: &[f32],
    subjects: &[usize],
    solver: &SolverKind,
    n_perms: usize,
    seed: u64,
) -> (f64, f64) {
    let m = corr.layout.n_epochs;
    let n = corr.layout.n_brain;
    let kernel = KernelMatrix::precompute_raw(m, n, corr.voxel_matrix(vi));
    let observed = loso_cross_validate(&kernel, y, subjects, solver).accuracy;
    let null = null_accuracies(&kernel, y, subjects, solver, n_perms, seed);
    let p = permutation_p_value(observed, &null);
    (observed, p)
}

/// Benjamini–Hochberg FDR selection: returns the indices of hypotheses
/// rejected at false-discovery rate `q`.
///
/// # Panics
/// Panics if `q` is outside `(0, 1)` or any p-value is outside `[0, 1]`.
pub fn benjamini_hochberg(p_values: &[f64], q: f64) -> Vec<usize> {
    assert!((0.0..1.0).contains(&q) && q > 0.0, "BH: q must be in (0,1)");
    assert!(p_values.iter().all(|p| (0.0..=1.0).contains(p)), "BH: p-values must be in [0,1]");
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p_values[a].partial_cmp(&p_values[b]).expect("no NaN p-values"));
    // Largest k with p_(k) <= k/m * q (1-indexed k).
    let mut cutoff = None;
    for (rank0, &i) in order.iter().enumerate() {
        let k = rank0 + 1;
        if p_values[i] <= f64_from_usize(k) / f64_from_usize(m) * q {
            cutoff = Some(rank0);
        }
    }
    match cutoff {
        None => Vec::new(),
        Some(c) => {
            let mut rejected: Vec<usize> = order[..=c].to_vec();
            rejected.sort_unstable();
            rejected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TaskContext;
    use crate::stage2::corr_normalized_merged;
    use crate::task::VoxelTask;
    use fcma_fmri::presets;
    use fcma_svm::SmoParams;

    #[test]
    fn permutation_preserves_within_subject_balance() {
        let y = vec![1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0, -1.0];
        let subjects = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..20 {
            let p = permute_labels_within_subject(&y, &subjects, &mut rng);
            for s in 0..2 {
                let pos: f32 = (0..8).filter(|&t| subjects[t] == s).map(|t| p[t]).sum();
                let orig: f32 = (0..8).filter(|&t| subjects[t] == s).map(|t| y[t]).sum();
                assert_eq!(pos, orig, "subject {s} balance changed");
            }
        }
    }

    #[test]
    fn p_value_extremes() {
        let null = vec![0.4, 0.5, 0.45, 0.55, 0.5];
        // Observed above all nulls → smallest possible p = 1/(n+1).
        assert!((permutation_p_value(0.99, &null) - 1.0 / 6.0).abs() < 1e-12);
        // Observed below all nulls → p = 1.
        assert!((permutation_p_value(0.1, &null) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bh_rejects_nothing_on_uniform_ps() {
        let ps: Vec<f64> = (1..=20).map(|i| i as f64 / 20.0).collect();
        let rejected = benjamini_hochberg(&ps, 0.05);
        // p_(k) = k/20 vs threshold k/20·0.05: nothing passes.
        assert!(rejected.is_empty(), "{rejected:?}");
    }

    #[test]
    fn bh_rejects_strong_signals() {
        let mut ps = vec![0.5f64; 18];
        ps.push(0.001);
        ps.push(0.002);
        let rejected = benjamini_hochberg(&ps, 0.05);
        assert_eq!(rejected, vec![18, 19]);
    }

    #[test]
    fn bh_step_up_includes_borderline_below_cutoff() {
        // Classic step-up behavior: a p-value above its own threshold is
        // still rejected if a later one passes.
        let ps = vec![0.01, 0.049, 0.9, 0.9];
        // m=4, q=0.1: thresholds 0.025, 0.05, 0.075, 0.1.
        // p_(1)=0.01 <= 0.025 ✓; p_(2)=0.049 <= 0.05 ✓ → reject both.
        let rejected = benjamini_hochberg(&ps, 0.1);
        assert_eq!(rejected, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "q must be")]
    fn bh_rejects_bad_q() {
        let _ = benjamini_hochberg(&[0.5], 1.5);
    }

    /// End-to-end: a planted voxel on signal-bearing data is significant;
    /// the same voxel on a *signal-free* dataset is not. (Note: on
    /// signal-bearing data even "uninformative" voxels carry weak signal
    /// through their correlations *with* the planted network — the full
    /// correlation vector spans the whole brain — so the clean null
    /// requires removing the planted coupling entirely.)
    #[test]
    fn permutation_test_separates_signal_from_noise() {
        let solver = SolverKind::PhiSvm(SmoParams::default());
        let n_perms = 39; // min p = 0.025

        let mut cfg = presets::tiny();
        cfg.coupling = 2.0;
        let (d, gt) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let task = VoxelTask { start: gt.informative[0], count: 1 };
        let corr = corr_normalized_merged(&ctx, task, Default::default());
        let (acc_inf, p_inf) =
            voxel_permutation_test(&corr, 0, &ctx.y, &ctx.subjects, &solver, n_perms, 42);
        assert!(p_inf <= 0.05, "informative voxel p = {p_inf} (acc {acc_inf})");

        // Same voxel index, zero coupling: no condition signal anywhere.
        cfg.coupling = 0.0;
        let (d0, _) = cfg.generate();
        let ctx0 = TaskContext::full(&d0);
        let corr0 = corr_normalized_merged(&ctx0, task, Default::default());
        let (acc_null, p_null) =
            voxel_permutation_test(&corr0, 0, &ctx0.y, &ctx0.subjects, &solver, n_perms, 42);
        assert!(
            p_null > 0.05,
            "signal-free voxel p = {p_null} (acc {acc_null}) should be nonsignificant"
        );
        assert!(acc_inf > acc_null);
    }
}
