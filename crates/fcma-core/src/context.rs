//! Shared per-analysis context handed to every worker task.

use fcma_fmri::{Condition, Dataset, NormalizedEpochs};
use std::sync::Arc;

/// Everything a worker needs besides its voxel range: the normalized
/// epoch matrices and the label/subject structure of the epochs in play.
///
/// The context is built once per analysis (or per outer cross-validation
/// fold, where only a subset of epochs participate) and shared across
/// tasks — it corresponds to the brain data the master distributes to
/// workers up front (§3.1.1).
#[derive(Clone)]
pub struct TaskContext {
    /// Normalized epoch matrices (only the epochs in play, in order).
    pub norm: Arc<NormalizedEpochs>,
    /// ±1 target per epoch (parallel to the epochs in `norm`).
    pub y: Arc<Vec<f32>>,
    /// Owning subject per epoch, renumbered to be 0-based contiguous.
    pub subjects: Arc<Vec<usize>>,
    /// Epochs per (renumbered) subject, for the within-subject
    /// normalization grouping. Derived; cached for the hot paths.
    pub subject_ranges: Arc<Vec<std::ops::Range<usize>>>,
}

impl TaskContext {
    /// Build a context over **all** epochs of a dataset.
    pub fn full(dataset: &Dataset) -> Self {
        let keep: Vec<usize> = (0..dataset.n_epochs()).collect();
        Self::subset(dataset, &keep)
    }

    /// Build a context over a subset of epoch indices (must be sorted and
    /// grouped by subject, which any subsequence of the validated epoch
    /// table is). Subjects are renumbered contiguously.
    ///
    /// # Panics
    /// Panics if `keep` is empty or not strictly increasing.
    pub fn subset(dataset: &Dataset, keep: &[usize]) -> Self {
        assert!(!keep.is_empty(), "TaskContext: empty epoch subset");
        assert!(
            keep.windows(2).all(|w| w[0] < w[1]),
            "TaskContext: epoch subset must be strictly increasing"
        );
        let full_norm = NormalizedEpochs::from_dataset_subset(dataset, keep);
        let mut y = Vec::with_capacity(keep.len());
        let mut subjects = Vec::with_capacity(keep.len());
        let mut next_id = 0usize;
        let mut last_orig: Option<usize> = None;
        for &e in keep {
            let ep = &dataset.epochs()[e];
            y.push(match ep.label {
                Condition::A => 1.0,
                Condition::B => -1.0,
            });
            match last_orig {
                Some(prev) if prev == ep.subject => {}
                Some(_) => next_id += 1,
                None => {}
            }
            last_orig = Some(ep.subject);
            subjects.push(next_id);
        }
        let subject_ranges = ranges_of(&subjects);
        TaskContext {
            norm: Arc::new(full_norm),
            y: Arc::new(y),
            subjects: Arc::new(subjects),
            subject_ranges: Arc::new(subject_ranges),
        }
    }

    /// Number of epochs in play.
    pub fn n_epochs(&self) -> usize {
        self.y.len()
    }

    /// Number of brain voxels.
    pub fn n_voxels(&self) -> usize {
        self.norm.n_voxels()
    }

    /// Number of (renumbered) subjects.
    pub fn n_subjects(&self) -> usize {
        self.subject_ranges.len()
    }
}

fn ranges_of(subjects: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=subjects.len() {
        if i == subjects.len() || subjects[i] != subjects[start] {
            out.push(start..i);
            start = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_fmri::presets;

    #[test]
    fn full_context_shapes() {
        let (d, _) = presets::tiny().generate();
        let ctx = TaskContext::full(&d);
        assert_eq!(ctx.n_epochs(), d.n_epochs());
        assert_eq!(ctx.n_voxels(), d.n_voxels());
        assert_eq!(ctx.n_subjects(), d.n_subjects());
        assert_eq!(ctx.subject_ranges.len(), 4);
        for (s, r) in ctx.subject_ranges.iter().enumerate() {
            assert!(ctx.subjects[r.clone()].iter().all(|&x| x == s));
        }
    }

    #[test]
    fn subset_renumbers_subjects() {
        let (d, _) = presets::tiny().generate();
        // Drop subject 1's epochs entirely.
        let keep: Vec<usize> = (0..d.n_epochs()).filter(|&e| d.epochs()[e].subject != 1).collect();
        let ctx = TaskContext::subset(&d, &keep);
        assert_eq!(ctx.n_subjects(), 3);
        assert_eq!(ctx.n_epochs(), keep.len());
        // Renumbered ids are contiguous 0..3.
        let max = ctx.subjects.iter().copied().max().unwrap();
        assert_eq!(max, 2);
    }

    #[test]
    fn labels_follow_epoch_table() {
        let (d, _) = presets::tiny().generate();
        let ctx = TaskContext::full(&d);
        for (e, ep) in d.epochs().iter().enumerate() {
            let want = if ep.label == Condition::A { 1.0 } else { -1.0 };
            assert_eq!(ctx.y[e], want);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_subset() {
        let (d, _) = presets::tiny().generate();
        let _ = TaskContext::subset(&d, &[3, 1]);
    }
}
