//! Stage 2 — within-subject normalization (Fisher transform + z-scoring,
//! paper Eqs. 4–5).
//!
//! Every correlation coefficient is Fisher-transformed, then z-scored
//! against the population of the same (voxel, brain-voxel) pair's values
//! across one subject's epochs (the "vertical black line" of Fig. 4 —
//! `E` values per column per subject).
//!
//! Three schedules produce **bit-comparable results** and are tested for
//! agreement:
//!
//! * [`normalize_baseline`] — the §3.2 baseline: a full Fisher pass over
//!   the buffer, then a stats pass, then an apply pass (three trips to
//!   memory);
//! * [`normalize_separated`] — the optimized-but-unmerged variant of
//!   Table 7: a fused Fisher+stats pass followed by the apply pass (two
//!   trips);
//! * [`corr_normalized_merged`] — optimization idea #2 (§4.3): stage 1
//!   computes one (voxel-block × subject × column-strip) tile at a time,
//!   normalizes it *while it is still cache-resident*, and the z-apply is
//!   fused with the single write to the interleaved output buffer.
//!
//! Statistics accumulate in `f32`: the population is one subject's `E`
//! (≈12) epochs, far below any f32 summation-accuracy concern, and it
//! keeps the stat loops on the vector units (idea #3).

use crate::context::TaskContext;
use crate::stage1::{bridge_pool_counters, CorrData};
use crate::task::VoxelTask;
use fcma_linalg::tall_skinny::{
    corr_tile_block, corr_tile_block_rows, EpochPair, TallSkinnyOpts, MR,
};
use fcma_linalg::{f32_from_usize, fisher_z_slice, CorrLayout};
use fcma_sync::pool::Pool;
use fcma_trace::span;

/// Baseline schedule: Fisher pass, then stats pass, then apply pass.
///
/// # Panics
/// If `ctx`'s subject epoch ranges do not match `corr`'s layout.
pub fn normalize_baseline(corr: &mut CorrData, ctx: &TaskContext) {
    let n = corr.layout.n_brain;
    let v = corr.layout.n_assigned;
    let _span = span!("stage2.normalize", voxels = v, brain = n, schedule = "baseline");
    // Pass 1: Fisher-transform everything.
    for row in corr.buf.chunks_mut(n) {
        fisher_z_slice(row);
    }
    // Pass 2 + 3: per (voxel, subject): column stats, then apply.
    let mut sum = vec![0.0f32; n];
    let mut sumsq = vec![0.0f32; n];
    let mut mean = vec![0.0f32; n];
    let mut inv_std = vec![0.0f32; n];
    for vi in 0..v {
        for sr in ctx.subject_ranges.iter() {
            sum.fill(0.0);
            sumsq.fill(0.0);
            for e in sr.clone() {
                accumulate(corr.row(vi, e), &mut sum, &mut sumsq);
            }
            finish_stats(&sum, &sumsq, f32_from_usize(sr.len()), &mut mean, &mut inv_std);
            for e in sr.clone() {
                let row = corr.row_mut(vi, e);
                for (j, x) in row.iter_mut().enumerate() {
                    *x = (*x - mean[j]) * inv_std[j];
                }
            }
        }
    }
    fcma_linalg::debug_assert_finite!(&corr.buf, "stage2 normalization output");
}

/// Separated-optimized schedule: fused Fisher+stats pass, then apply.
///
/// # Panics
/// If `ctx`'s subject epoch ranges do not match `corr`'s layout.
pub fn normalize_separated(corr: &mut CorrData, ctx: &TaskContext) {
    let n = corr.layout.n_brain;
    let v = corr.layout.n_assigned;
    let _span = span!("stage2.normalize", voxels = v, brain = n, schedule = "separated");
    let mut sum = vec![0.0f32; n];
    let mut sumsq = vec![0.0f32; n];
    let mut mean = vec![0.0f32; n];
    let mut inv_std = vec![0.0f32; n];
    for vi in 0..v {
        for sr in ctx.subject_ranges.iter() {
            sum.fill(0.0);
            sumsq.fill(0.0);
            // Fused pass: Fisher each row while accumulating column sums.
            for e in sr.clone() {
                let row = corr.row_mut(vi, e);
                fisher_z_slice(row);
                accumulate(row, &mut sum, &mut sumsq);
            }
            finish_stats(&sum, &sumsq, f32_from_usize(sr.len()), &mut mean, &mut inv_std);
            for e in sr.clone() {
                let row = corr.row_mut(vi, e);
                for (j, x) in row.iter_mut().enumerate() {
                    *x = (*x - mean[j]) * inv_std[j];
                }
            }
        }
    }
    fcma_linalg::debug_assert_finite!(&corr.buf, "stage2 normalization output");
}

/// Merged schedule: stage 1 and stage 2 fused at tile granularity.
///
/// Equivalent to `corr_optimized` followed by `normalize_separated`, but
/// each tile is normalized immediately after being computed, before it
/// leaves cache (Fig. 5), and the z-apply doubles as the single write to
/// the interleaved output. Produces the finished normalized buffer.
///
/// # Panics
/// If `task` is out of range for `ctx`.
pub fn corr_normalized_merged(
    ctx: &TaskContext,
    task: VoxelTask,
    opts: TallSkinnyOpts,
) -> CorrData {
    let v = task.count;
    let n = ctx.n_voxels();
    let m = ctx.n_epochs();
    let layout = CorrLayout { n_assigned: v, n_epochs: m, n_brain: n };
    let mut buf = vec![0.0f32; layout.out_len()];
    let _span = span!("stage12.fused", voxels = v, brain = n, epochs = m);

    let assigned = crate::stage1::assigned_blocks(ctx, task);
    let pairs: Vec<EpochPair<'_>> = assigned
        .iter()
        .enumerate()
        .map(|(e, a)| EpochPair { assigned: a, brain: ctx.norm.brain(e) })
        .collect();

    let w_max = opts.tile_cols.max(16);
    let mut tile = vec![0.0f32; v * max_subject_epochs(ctx) * w_max];
    // Workhorse stat buffers reused across every tile.
    let mut sum = vec![0.0f32; w_max];
    let mut sumsq = vec![0.0f32; w_max];
    let mut mean = vec![0.0f32; w_max];
    let mut inv_std = vec![0.0f32; w_max];

    let mut j0 = 0;
    while j0 < n {
        let w = w_max.min(n - j0);
        for sr in ctx.subject_ranges.iter() {
            let e_cnt = sr.len();
            // Compute the (all task voxels × subject epochs × strip) tile.
            corr_tile_block(&pairs, sr.clone(), j0..j0 + w, &mut tile);
            for vi in 0..v {
                let base = vi * e_cnt * w;
                let block = &mut tile[base..base + e_cnt * w];
                sum[..w].fill(0.0);
                sumsq[..w].fill(0.0);
                for row in block.chunks_mut(w) {
                    fisher_z_slice(row);
                    accumulate(row, &mut sum[..w], &mut sumsq[..w]);
                }
                finish_stats(
                    &sum[..w],
                    &sumsq[..w],
                    f32_from_usize(e_cnt),
                    &mut mean[..w],
                    &mut inv_std[..w],
                );
                // Fused z-apply + scatter: the tile is read once (hot in
                // cache) and the finished values stream to memory once.
                for (ei, e) in sr.clone().enumerate() {
                    let src = &block[ei * w..(ei + 1) * w];
                    let dst_row = layout.row(vi, e);
                    let dst = &mut buf[dst_row * n + j0..dst_row * n + j0 + w];
                    for j in 0..w {
                        dst[j] = (src[j] - mean[j]) * inv_std[j];
                    }
                }
            }
        }
        j0 += w;
    }
    fcma_linalg::debug_assert_finite!(&buf, "stage2 merged pipeline output");
    CorrData { buf, layout }
}

/// Parallel merged schedule: the fused stage-1+2 pipeline banded across
/// `pool` workers along the assigned-voxel dimension.
///
/// Each worker owns a disjoint MR-aligned band of the task's voxels and
/// runs the full [`corr_normalized_merged`] tile loop for that band —
/// computing each correlation tile and normalizing it while cache-hot —
/// writing straight into its own contiguous slice of the interleaved
/// output. Bit-identical to the serial merged schedule at every thread
/// count (DESIGN.md §15): band boundaries respect the register-tile
/// grouping, per-voxel statistics never cross bands, and there is no
/// cross-thread reduction at all.
///
/// # Panics
/// If `task` is out of range for `ctx`.
pub fn corr_normalized_merged_parallel(
    ctx: &TaskContext,
    task: VoxelTask,
    opts: TallSkinnyOpts,
    pool: &Pool,
) -> CorrData {
    let v = task.count;
    let n_groups = v.div_ceil(MR);
    let bands = pool.threads().min(n_groups).max(1);
    if bands <= 1 {
        return corr_normalized_merged(ctx, task, opts);
    }
    let n = ctx.n_voxels();
    let m = ctx.n_epochs();
    let layout = CorrLayout { n_assigned: v, n_epochs: m, n_brain: n };
    let mut buf = vec![0.0f32; layout.out_len()];
    let _span = span!("stage12.fused", voxels = v, brain = n, epochs = m, threads = bands);

    let assigned = crate::stage1::assigned_blocks(ctx, task);
    let pairs: Vec<EpochPair<'_>> = assigned
        .iter()
        .enumerate()
        .map(|(e, a)| EpochPair { assigned: a, brain: ctx.norm.brain(e) })
        .collect();

    // Carve the interleaved buffer at band boundaries: voxels [v0, v1)
    // own rows v0·M .. v1·M, a contiguous slice.
    let mut tasks: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(bands);
    let mut rest: &mut [f32] = &mut buf;
    let mut v0 = 0usize;
    for band in 0..bands {
        let groups = n_groups / bands + usize::from(band < n_groups % bands);
        let v1 = (v0 + groups * MR).min(v);
        if band + 1 == bands {
            tasks.push((v0, v1, rest));
            rest = &mut [];
        } else {
            let (head, tail) = rest.split_at_mut((v1 - v0) * m * n);
            tasks.push((v0, v1, head));
            rest = tail;
        }
        v0 = v1;
    }
    let _ = rest;

    let w_max = opts.tile_cols.max(16);
    let max_se = max_subject_epochs(ctx);
    // audit: disjoint(tasks) — bands are carved by split_at_mut, one non-overlapping chunk per task
    let (_, stats) = pool.run_init_stats(
        tasks,
        || (),
        |(), _idx, (v0, v1, chunk)| {
            merged_band(ctx, &pairs, v0, v1, chunk, w_max, max_se, m, n);
        },
    );
    bridge_pool_counters(&stats);
    fcma_linalg::debug_assert_finite!(&buf, "stage2 merged pipeline output");
    CorrData { buf, layout }
}

/// One worker's share of the merged pipeline: voxels `[v0, v1)`, writing
/// the band's rows into `chunk` (local layout, row `(vi − v0)·M + e`).
#[allow(clippy::too_many_arguments)] // band-worker ABI: everything is loop-invariant context
fn merged_band(
    ctx: &TaskContext,
    pairs: &[EpochPair<'_>],
    v0: usize,
    v1: usize,
    chunk: &mut [f32],
    w_max: usize,
    max_se: usize,
    m: usize,
    n: usize,
) {
    let bv = v1 - v0;
    let mut tile = vec![0.0f32; bv * max_se * w_max];
    let mut sum = vec![0.0f32; w_max];
    let mut sumsq = vec![0.0f32; w_max];
    let mut mean = vec![0.0f32; w_max];
    let mut inv_std = vec![0.0f32; w_max];

    let mut j0 = 0;
    while j0 < n {
        let w = w_max.min(n - j0);
        for sr in ctx.subject_ranges.iter() {
            let e_cnt = sr.len();
            corr_tile_block_rows(pairs, v0..v1, sr.clone(), j0..j0 + w, &mut tile);
            for vi in 0..bv {
                let base = vi * e_cnt * w;
                let block = &mut tile[base..base + e_cnt * w];
                sum[..w].fill(0.0);
                sumsq[..w].fill(0.0);
                for row in block.chunks_mut(w) {
                    fisher_z_slice(row);
                    accumulate(row, &mut sum[..w], &mut sumsq[..w]);
                }
                finish_stats(
                    &sum[..w],
                    &sumsq[..w],
                    f32_from_usize(e_cnt),
                    &mut mean[..w],
                    &mut inv_std[..w],
                );
                for (ei, e) in sr.clone().enumerate() {
                    let src = &block[ei * w..(ei + 1) * w];
                    let dst_row = vi * m + e;
                    let dst = &mut chunk[dst_row * n + j0..dst_row * n + j0 + w];
                    for j in 0..w {
                        dst[j] = (src[j] - mean[j]) * inv_std[j];
                    }
                }
            }
        }
        j0 += w;
    }
}

fn max_subject_epochs(ctx: &TaskContext) -> usize {
    ctx.subject_ranges.iter().map(std::iter::ExactSizeIterator::len).max().unwrap_or(0)
}

/// Column-wise accumulation of sums and sums of squares (vectorizes: all
/// three slices are contiguous).
#[inline]
fn accumulate(row: &[f32], sum: &mut [f32], sumsq: &mut [f32]) {
    for (j, &z) in row.iter().enumerate() {
        sum[j] += z;
        sumsq[j] += z * z;
    }
}

/// Turn accumulated sums into (mean, 1/std) with the zero-variance
/// convention (constant populations z-score to 0).
#[inline]
fn finish_stats(sum: &[f32], sumsq: &[f32], cnt: f32, mean: &mut [f32], inv_std: &mut [f32]) {
    for j in 0..sum.len() {
        let m = sum[j] / cnt;
        let var = (sumsq[j] / cnt - m * m).max(0.0);
        mean[j] = m;
        inv_std[j] = if var <= f32::MIN_POSITIVE { 0.0 } else { 1.0 / var.sqrt() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::{corr_baseline, corr_optimized};
    use fcma_fmri::presets;

    fn ctx() -> TaskContext {
        let (d, _) = presets::tiny().generate();
        TaskContext::full(&d)
    }

    fn max_diff(a: &CorrData, b: &CorrData) -> f32 {
        a.buf.iter().zip(&b.buf).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max)
    }

    #[test]
    fn baseline_and_separated_agree() {
        let ctx = ctx();
        let task = VoxelTask { start: 4, count: 9 };
        let mut a = corr_baseline(&ctx, task);
        let mut b = corr_baseline(&ctx, task);
        normalize_baseline(&mut a, &ctx);
        normalize_separated(&mut b, &ctx);
        assert!(max_diff(&a, &b) < 1e-4);
    }

    #[test]
    fn merged_agrees_with_separated() {
        let ctx = ctx();
        let task = VoxelTask { start: 0, count: 11 };
        let mut sep = corr_optimized(&ctx, task, TallSkinnyOpts::default());
        normalize_separated(&mut sep, &ctx);
        let merged = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
        assert!(max_diff(&sep, &merged) < 1e-4);
    }

    #[test]
    fn merged_agrees_with_small_tiles() {
        let ctx = ctx();
        let task = VoxelTask { start: 2, count: 5 };
        let mut sep = corr_optimized(&ctx, task, TallSkinnyOpts::default());
        normalize_separated(&mut sep, &ctx);
        let merged = corr_normalized_merged(&ctx, task, TallSkinnyOpts { tile_cols: 24 });
        assert!(max_diff(&sep, &merged) < 1e-4);
    }

    #[test]
    fn parallel_merged_bit_identical_at_every_thread_count() {
        let ctx = ctx();
        // 19 voxels: 2 full MR groups + a 3-row edge, so band carving
        // exercises both aligned interior bands and the ragged tail.
        let task = VoxelTask { start: 2, count: 19 };
        let opts = TallSkinnyOpts { tile_cols: 48 };
        let serial = corr_normalized_merged(&ctx, task, opts);
        for threads in [1usize, 2, 3, 8] {
            let par = corr_normalized_merged_parallel(&ctx, task, opts, &Pool::new(threads));
            for (i, (p, s)) in par.buf.iter().zip(&serial.buf).enumerate() {
                assert_eq!(p.to_bits(), s.to_bits(), "threads={threads} idx={i}");
            }
        }
    }

    #[test]
    fn normalized_columns_have_zero_mean_per_subject() {
        let ctx = ctx();
        let task = VoxelTask { start: 0, count: 3 };
        let mut c = corr_baseline(&ctx, task);
        normalize_baseline(&mut c, &ctx);
        for vi in 0..3 {
            for sr in ctx.subject_ranges.iter() {
                for j in [0usize, 31, 77] {
                    let vals: Vec<f32> = sr.clone().map(|e| c.row(vi, e)[j]).collect();
                    let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
                    assert!(mean.abs() < 1e-4, "v{vi} j{j}: mean {mean}");
                    let var: f32 = vals.iter().map(|z| (z - mean) * (z - mean)).sum::<f32>()
                        / vals.len() as f32;
                    // Variance is 1 unless the column was constant.
                    assert!((var - 1.0).abs() < 1e-2 || var.abs() < 1e-6, "v{vi} j{j}: var {var}");
                }
            }
        }
    }

    #[test]
    fn self_correlation_column_zscores_to_zero() {
        // Voxel's correlation with itself is always ~1 (constant across
        // epochs) → Fisher clamps it, variance ≈ 0 → z-scored to 0.
        let ctx = ctx();
        let task = VoxelTask { start: 5, count: 2 };
        let mut c = corr_baseline(&ctx, task);
        normalize_baseline(&mut c, &ctx);
        for vi in 0..2 {
            for e in 0..ctx.n_epochs() {
                let z = c.row(vi, e)[5 + vi];
                assert!(z.abs() < 1e-2, "self column not degenerate: {z}");
            }
        }
    }
}
