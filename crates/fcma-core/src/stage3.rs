//! Stage 3 — SVM cross validation (kernel precompute + per-voxel CV).
//!
//! For each assigned voxel, the worker precomputes the linear kernel
//! matrix over that voxel's correlation vectors (a symmetric rank-k
//! update, §4.4) and runs leave-one-group-out cross validation with the
//! configured SVM solver. The resulting accuracy is the voxel's
//! "informativeness" score.
//!
//! One pool task handles one voxel — the paper's "a thread takes full
//! responsibility for the cross validation of one voxel".

use crate::stage1::{bridge_pool_counters, CorrData};
use crate::task::{VoxelScore, VoxelTask};
use fcma_linalg::{SyrkScratch, PANEL_K};
use fcma_svm::{loso_cross_validate, loso_cross_validate_pool, KernelMatrix, SolverKind};
use fcma_sync::pool::Pool;
use fcma_trace::{counter, span};

/// Which SYRK implementation precomputes the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPrecompute {
    /// Generic library-style SYRK (baseline).
    Baseline,
    /// The paper's 96-deep panel SYRK.
    Optimized,
}

/// Score one voxel: kernel precompute + leave-one-group-out CV.
///
/// `vi` is the task-relative voxel index into `corr`; `y` and `groups`
/// are parallel to the epochs of `corr` (groups are subjects for offline
/// analysis, epoch folds for the online case). When `fold_pool` is set
/// the CV folds run fold-parallel — bit-identical to the serial CV at
/// every thread count (DESIGN.md §15), used when the task is narrower
/// than the pool.
#[allow(clippy::too_many_arguments)] // per-voxel scoring ABI shared by both executors
pub(crate) fn score_voxel(
    corr: &CorrData,
    vi: usize,
    y: &[f32],
    groups: &[usize],
    solver: &SolverKind,
    precompute: KernelPrecompute,
    scratch: &mut SyrkScratch,
    fold_pool: Option<&Pool>,
) -> f64 {
    let m = corr.layout.n_epochs;
    let n = corr.layout.n_brain;
    assert_eq!(y.len(), m, "score_voxel: targets/epochs mismatch");
    assert_eq!(groups.len(), m, "score_voxel: groups/epochs mismatch");
    let data = corr.voxel_matrix(vi);
    let kernel = match precompute {
        KernelPrecompute::Baseline => KernelMatrix::precompute_baseline_raw(m, n, data),
        KernelPrecompute::Optimized => KernelMatrix::precompute_raw_with(m, n, data, scratch),
    };
    match fold_pool {
        Some(pool) => loso_cross_validate_pool(&kernel, y, groups, solver, pool).accuracy,
        None => loso_cross_validate(&kernel, y, groups, solver).accuracy,
    }
}

/// Score every voxel of a task in parallel.
///
/// Returns global-voxel-indexed scores (using `task.start` as the base).
pub fn score_task(
    corr: &CorrData,
    task: VoxelTask,
    y: &[f32],
    groups: &[usize],
    solver: &SolverKind,
    precompute: KernelPrecompute,
    pool: &Pool,
) -> Vec<VoxelScore> {
    assert_eq!(corr.layout.n_assigned, task.count, "score_task: task/corr shape mismatch");
    let _span = span!("stage3.score", voxels = task.count, epochs = corr.layout.n_epochs);
    counter!("stage3.voxels", task.count);
    if task.count == 1 && pool.threads() > 1 {
        // A single-voxel task (the online/realtime shape) has no voxel
        // parallelism to exploit; push the pool down one level and run
        // the CV folds in parallel instead. Same score either way — the
        // fold-parallel CV is bit-identical to serial (DESIGN.md §15).
        let mut scratch = SyrkScratch::new(corr.layout.n_epochs, PANEL_K);
        let accuracy =
            score_voxel(corr, 0, y, groups, solver, precompute, &mut scratch, Some(pool));
        return vec![VoxelScore { voxel: task.start, accuracy }];
    }
    // One SYRK scratch per pool worker, reused across that worker's
    // voxels — the paper's per-thread A_local buffers (§4.4). Scores come
    // back in task-index order regardless of which worker ran them.
    let (scores, stats) = pool.run_init_stats(
        (0..task.count).collect(),
        || SyrkScratch::new(corr.layout.n_epochs, PANEL_K),
        |scratch, _idx, vi| VoxelScore {
            voxel: task.start + vi,
            accuracy: score_voxel(corr, vi, y, groups, solver, precompute, scratch, None),
        },
    );
    bridge_pool_counters(&stats);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TaskContext;
    use crate::stage2::corr_normalized_merged;
    use fcma_fmri::presets;
    use fcma_linalg::tall_skinny::TallSkinnyOpts;
    use fcma_svm::{LibSvmParams, SmoParams};

    fn scored(preset_coupling: f32) -> (Vec<VoxelScore>, Vec<usize>, TaskContext) {
        let mut cfg = presets::tiny();
        cfg.coupling = preset_coupling;
        let (d, gt) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let task = VoxelTask { start: 0, count: d.n_voxels() };
        let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
        let scores = score_task(
            &corr,
            task,
            &ctx.y,
            &ctx.subjects,
            &SolverKind::PhiSvm(SmoParams::default()),
            KernelPrecompute::Optimized,
            &Pool::new(2),
        );
        (scores, gt.informative, ctx)
    }

    #[test]
    fn informative_voxels_score_higher() {
        let (scores, informative, _) = scored(1.6);
        let mean_inf: f64 =
            informative.iter().map(|&v| scores[v].accuracy).sum::<f64>() / informative.len() as f64;
        let outsiders: Vec<f64> =
            scores.iter().filter(|s| !informative.contains(&s.voxel)).map(|s| s.accuracy).collect();
        let mean_out: f64 = outsiders.iter().sum::<f64>() / outsiders.len() as f64;
        assert!(
            mean_inf > mean_out + 0.15,
            "informative {mean_inf:.3} vs uninformative {mean_out:.3}"
        );
        assert!(mean_inf > 0.7, "informative accuracy too low: {mean_inf:.3}");
    }

    #[test]
    fn both_precompute_paths_agree() {
        let mut cfg = presets::tiny();
        cfg.n_voxels = 48;
        cfg.n_informative = 8;
        let (d, _) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let task = VoxelTask { start: 0, count: 16 };
        let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
        let solver = SolverKind::PhiSvm(SmoParams::default());
        let pool = Pool::new(2);
        let a = score_task(
            &corr,
            task,
            &ctx.y,
            &ctx.subjects,
            &solver,
            KernelPrecompute::Optimized,
            &pool,
        );
        let b = score_task(
            &corr,
            task,
            &ctx.y,
            &ctx.subjects,
            &solver,
            KernelPrecompute::Baseline,
            &pool,
        );
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x.accuracy - y.accuracy).abs() < 0.101,
                "voxel {}: {} vs {}",
                x.voxel,
                x.accuracy,
                y.accuracy
            );
        }
    }

    #[test]
    fn libsvm_and_phisvm_give_similar_scores() {
        let mut cfg = presets::tiny();
        cfg.n_voxels = 32;
        cfg.n_informative = 6;
        let (d, _) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let task = VoxelTask { start: 0, count: 12 };
        let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
        let a = score_task(
            &corr,
            task,
            &ctx.y,
            &ctx.subjects,
            &SolverKind::PhiSvm(SmoParams::default()),
            KernelPrecompute::Optimized,
            &Pool::new(2),
        );
        let b = score_task(
            &corr,
            task,
            &ctx.y,
            &ctx.subjects,
            &SolverKind::LibSvm(LibSvmParams::default()),
            KernelPrecompute::Optimized,
            &Pool::new(2),
        );
        let mean_gap: f64 =
            a.iter().zip(&b).map(|(x, y)| (x.accuracy - y.accuracy).abs()).sum::<f64>()
                / a.len() as f64;
        assert!(mean_gap < 0.12, "solver score gap {mean_gap}");
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let (scores, _, _) = scored(1.0);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(&s.accuracy)));
    }

    #[test]
    fn single_voxel_task_fold_parallel_matches_serial() {
        // task.count == 1 at threads > 1 takes the fold-parallel CV
        // path; the score must still be bit-identical to the serial run.
        let mut cfg = presets::tiny();
        cfg.n_voxels = 24;
        cfg.n_informative = 4;
        let (d, _) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let task = VoxelTask { start: 7, count: 1 };
        let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
        let solver = SolverKind::PhiSvm(SmoParams::default());
        let serial = score_task(
            &corr,
            task,
            &ctx.y,
            &ctx.subjects,
            &solver,
            KernelPrecompute::Optimized,
            &Pool::new(1),
        );
        for threads in [2usize, 8] {
            let par = score_task(
                &corr,
                task,
                &ctx.y,
                &ctx.subjects,
                &solver,
                KernelPrecompute::Optimized,
                &Pool::new(threads),
            );
            assert_eq!(par.len(), 1);
            assert_eq!(par[0].voxel, 7);
            assert_eq!(par[0].accuracy.to_bits(), serial[0].accuracy.to_bits());
        }
    }

    #[test]
    fn task_offset_respected() {
        let mut cfg = presets::tiny();
        cfg.n_voxels = 24;
        cfg.n_informative = 4;
        let (d, _) = cfg.generate();
        let ctx = TaskContext::full(&d);
        let task = VoxelTask { start: 10, count: 5 };
        let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
        let scores = score_task(
            &corr,
            task,
            &ctx.y,
            &ctx.subjects,
            &SolverKind::PhiSvm(SmoParams::default()),
            KernelPrecompute::Optimized,
            &Pool::new(3),
        );
        let voxels: Vec<usize> = scores.iter().map(|s| s.voxel).collect();
        assert_eq!(voxels, vec![10, 11, 12, 13, 14]);
    }
}
