//! Voxel selection: ranking stage-3 accuracies into regions of interest.
//!
//! The master collects every voxel's cross-validation accuracy, sorts,
//! and takes the top voxels as the ROI (paper §3.1.2). Across outer
//! cross-validation folds, voxels selected repeatedly are the "reliable"
//! ones (§5.2.1).

use crate::task::VoxelScore;

/// Sort scores descending by accuracy (ties broken by voxel index for
/// determinism) and return the top `k` voxel indices.
pub fn select_top_k(scores: &[VoxelScore], k: usize) -> Vec<usize> {
    let mut ranked: Vec<&VoxelScore> = scores.iter().collect();
    ranked.sort_by(|a, b| b.accuracy.total_cmp(&a.accuracy).then(a.voxel.cmp(&b.voxel)));
    ranked.iter().take(k).map(|s| s.voxel).collect()
}

/// Voxels selected in at least `min_folds` of the per-fold selections —
/// the reliable ROI.
pub(crate) fn stable_voxels(fold_selections: &[Vec<usize>], min_folds: usize) -> Vec<usize> {
    use std::collections::HashMap;
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for sel in fold_selections {
        for &v in sel {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let mut out: Vec<usize> =
        counts.into_iter().filter(|&(_, c)| c >= min_folds).map(|(v, _)| v).collect();
    out.sort_unstable();
    out
}

/// Fraction of `truth` recovered by `selected` (recall of the planted
/// ground-truth network — the end-to-end correctness metric for the
/// synthetic datasets).
pub fn recovery_rate(selected: &[usize], truth: &[usize]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits = selected.iter().filter(|v| truth.contains(v)).count();
    fcma_linalg::f64_from_usize(hits) / fcma_linalg::f64_from_usize(truth.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(voxel: usize, accuracy: f64) -> VoxelScore {
        VoxelScore { voxel, accuracy }
    }

    #[test]
    fn top_k_orders_by_accuracy() {
        let scores = vec![vs(0, 0.5), vs(1, 0.9), vs(2, 0.7), vs(3, 0.6)];
        assert_eq!(select_top_k(&scores, 2), vec![1, 2]);
        assert_eq!(select_top_k(&scores, 10), vec![1, 2, 3, 0]);
    }

    #[test]
    fn top_k_ties_break_by_index() {
        let scores = vec![vs(5, 0.8), vs(2, 0.8), vs(9, 0.8)];
        assert_eq!(select_top_k(&scores, 3), vec![2, 5, 9]);
    }

    #[test]
    fn top_k_zero() {
        assert!(select_top_k(&[vs(0, 1.0)], 0).is_empty());
    }

    #[test]
    fn stable_voxels_requires_min_folds() {
        let folds = vec![vec![1, 2, 3], vec![2, 3, 4], vec![3, 4, 5]];
        assert_eq!(stable_voxels(&folds, 3), vec![3]);
        assert_eq!(stable_voxels(&folds, 2), vec![2, 3, 4]);
        assert_eq!(stable_voxels(&folds, 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn recovery_rate_bounds() {
        assert_eq!(recovery_rate(&[1, 2, 3], &[2, 3]), 1.0);
        assert_eq!(recovery_rate(&[1], &[2, 3]), 0.0);
        assert_eq!(recovery_rate(&[2], &[2, 3]), 0.5);
        assert_eq!(recovery_rate(&[], &[]), 1.0);
    }
}
