//! Task partitioning: the unit of work the master hands to workers.
//!
//! FCMA parallelizes across the cluster by partitioning the full
//! correlation matrix along its rows — each task is "run the three-stage
//! pipeline for this contiguous block of voxels" (paper §3.1.1).

use std::ops::Range;

/// A contiguous block of assigned voxels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VoxelTask {
    /// First assigned voxel.
    pub start: usize,
    /// Number of voxels in the task.
    pub count: usize,
}

impl VoxelTask {
    /// The voxel range this task covers.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.count
    }
}

/// Split `n_voxels` into tasks of at most `task_size` voxels.
///
/// # Panics
/// Panics if `task_size` is zero.
pub fn partition(n_voxels: usize, task_size: usize) -> Vec<VoxelTask> {
    assert!(task_size > 0, "partition: task_size must be positive");
    let mut out = Vec::with_capacity(n_voxels.div_ceil(task_size));
    let mut start = 0;
    while start < n_voxels {
        let count = task_size.min(n_voxels - start);
        out.push(VoxelTask { start, count });
        start += count;
    }
    out
}

/// Accuracy score assigned to one voxel by stage 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoxelScore {
    /// Global voxel index.
    pub voxel: usize,
    /// Cross-validation accuracy in `[0, 1]`.
    pub accuracy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_once() {
        let tasks = partition(1000, 120);
        assert_eq!(tasks.len(), 9);
        let mut covered = vec![false; 1000];
        for t in &tasks {
            for v in t.range() {
                assert!(!covered[v], "voxel {v} covered twice");
                covered[v] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        assert_eq!(tasks.last().unwrap().count, 40);
    }

    #[test]
    fn partition_exact_division() {
        let tasks = partition(240, 120);
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().all(|t| t.count == 120));
    }

    #[test]
    fn partition_single_small_task() {
        let tasks = partition(5, 120);
        assert_eq!(tasks, vec![VoxelTask { start: 0, count: 5 }]);
    }

    #[test]
    fn partition_empty() {
        assert!(partition(0, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "task_size")]
    fn partition_rejects_zero_size() {
        let _ = partition(10, 0);
    }
}
