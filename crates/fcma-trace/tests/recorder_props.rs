//! Property test for the flight recorder's wraparound contract: after
//! `N ≫ capacity` events, a quiescent ring holds **exactly** the newest
//! `capacity` events, oldest first, with contiguous sequence numbers —
//! at 1, 2, and 8 recording threads, under the virtual clock so the
//! property is about ring mechanics, not wall time.
//!
//! Each thread records into its own thread-local ring (the recorder is
//! single-writer by construction), so the per-thread assertion is exact:
//! no torn-slot skips are tolerated when the writer is the snapshotter.

use fcma_trace::recorder::{self, EventKind};
use fcma_trace::TraceOrigin;
use proptest::prelude::*;

/// Push `total` events on one fresh thread with ring capacity
/// `capacity`, snapshot from that same thread, and check the exact
/// newest-`capacity` window.
fn check_thread_window(thread_tag: u64, capacity: usize, total: u64) {
    for i in 0..total {
        recorder::record(
            "recorder.dispatch",
            thread_tag * 1_000_000 + i,
            u32::try_from(i % 7).unwrap_or(0),
            TraceOrigin::Dispatch,
            thread_tag,
        );
    }
    assert!(recorder::recorder_enabled(), "recorder defaults to on");
    let ring: std::sync::Arc<recorder::Ring> =
        recorder::current_ring().expect("recording thread has a ring");
    assert_eq!(ring.capacity(), capacity, "ring picked up the configured capacity");
    assert_eq!(ring.written(), total, "every push landed");
    let events: Vec<recorder::RecorderEvent> = ring.snapshot();
    let expect = u64::try_from(capacity).unwrap_or(u64::MAX).min(total);
    assert_eq!(
        events.len(),
        usize::try_from(expect).unwrap_or(usize::MAX),
        "quiescent ring must hold exactly min(written, capacity) events"
    );
    for (k, e) in events.iter().enumerate() {
        let k = u64::try_from(k).unwrap_or(u64::MAX);
        let seq = total - expect + k;
        assert_eq!(e.seq, seq, "sequence numbers are contiguous, oldest first");
        assert_eq!(e.task, thread_tag * 1_000_000 + seq, "payloads match their sequence");
        assert_eq!(e.attempt, u32::try_from(seq % 7).unwrap_or(0));
        assert_eq!(e.kind, EventKind::Dispatch);
        assert_eq!(e.arg, thread_tag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Wraparound keeps exactly the newest `capacity` events in order,
    /// for every thread of a 1-, 2-, or 8-thread recording burst.
    #[test]
    fn ring_window_is_exact_across_thread_counts(
        cap_exp in 3u32..7,          // capacities 8..64 (pow2 contract)
        extra in 1u64..200,          // how far past capacity each thread runs
        thread_sel in 0usize..3,     // index into the {1, 2, 8} thread ladder
    ) {
        let threads = [1usize, 2, 8][thread_sel];
        let _clock = fcma_sync::clock::VirtualClock::install();
        let capacity = 1usize << cap_exp;
        recorder::set_capacity(capacity);
        let total = u64::try_from(capacity).unwrap_or(u64::MAX) + extra;
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || check_thread_window(u64::try_from(t).unwrap_or(0) + 1, capacity, total));
            }
        });
    }
}
