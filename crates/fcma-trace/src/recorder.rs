//! The flight recorder: always-on, fixed-capacity, wait-free per-thread
//! rings of compact binary events.
//!
//! Where the collector is an opt-in, allocation-per-record tracing
//! substrate, the recorder is the black box that is *always* running:
//! every thread that records gets a fixed ring of `capacity` events
//! (32 bytes each), wraparound keeps the newest, and nothing on the
//! record path loops, allocates, or takes a lock — a single writer
//! stores four words and bumps the ring head. On a fault (task panic,
//! condemnation, fencing, resume mismatch) the cluster driver snapshots
//! every ring and dumps a postmortem (see [`crate::postmortem`]).
//!
//! The ring words are `fcma-sync` facade atomics, so under `fcma-mc`
//! every store is a scheduling point and the recorder is part of the
//! explored interleavings, and under the virtual clock timestamps are
//! deterministic. Readers run concurrently with writers: a snapshot
//! re-reads the head after copying the slots and conservatively drops
//! any entry the writer could have been overwriting mid-copy.

use std::cell::RefCell;
use std::sync::Arc;

use fcma_sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::ctx::TraceOrigin;

/// Events per ring unless [`set_capacity`] overrides it.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Words per ring slot: version, timestamp, packed meta, task, argument.
const WORDS: usize = 5;

/// Recorder on/off. On by default — the recorder exists for the runs
/// nobody planned to debug.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Capacity (rounded up to a power of two) applied to rings created
/// after the call; existing rings keep their size.
static CAPACITY: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(DEFAULT_CAPACITY);

/// Ring id allocator (stable across snapshots; one per recording thread).
static NEXT_RING_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Every ring ever registered (threads register lazily on first record).
static REGISTRY: std::sync::Mutex<Vec<Arc<Ring>>> = std::sync::Mutex::new(Vec::new());

thread_local! {
    static RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
}

/// What happened, compactly. The wire names (`recorder.*`) are part of
/// the DESIGN.md §11 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A worker began executing a dispatched attempt.
    TaskStart,
    /// A worker finished an attempt (arg: 0 ok, 1 failed).
    TaskEnd,
    /// A worker's attempt panicked (caught at the worker boundary).
    TaskPanic,
    /// The master dispatched an attempt (arg: worker id).
    Dispatch,
    /// The master discarded a late message from a condemned worker.
    Fence,
    /// The master condemned a worker past its deadline (arg: worker id).
    Condemn,
    /// The master dispatched a speculative clone (arg: worker id).
    Speculate,
    /// Checkpoint resume rejected a mismatched file.
    ResumeMismatch,
}

impl EventKind {
    /// The taxonomy name this kind appears under in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TaskStart => "recorder.task.start",
            EventKind::TaskEnd => "recorder.task.end",
            EventKind::TaskPanic => "recorder.task.panic",
            EventKind::Dispatch => "recorder.dispatch",
            EventKind::Fence => "recorder.fence",
            EventKind::Condemn => "recorder.condemn",
            EventKind::Speculate => "recorder.speculate",
            EventKind::ResumeMismatch => "recorder.resume.mismatch",
        }
    }

    fn code(self) -> u64 {
        match self {
            EventKind::TaskStart => 0,
            EventKind::TaskEnd => 1,
            EventKind::TaskPanic => 2,
            EventKind::Dispatch => 3,
            EventKind::Fence => 4,
            EventKind::Condemn => 5,
            EventKind::Speculate => 6,
            EventKind::ResumeMismatch => 7,
        }
    }

    fn from_code(code: u64) -> EventKind {
        match code {
            1 => EventKind::TaskEnd,
            2 => EventKind::TaskPanic,
            3 => EventKind::Dispatch,
            4 => EventKind::Fence,
            5 => EventKind::Condemn,
            6 => EventKind::Speculate,
            7 => EventKind::ResumeMismatch,
            _ => EventKind::TaskStart,
        }
    }

    /// Taxonomy name → kind, for the [`crate::record!`] macro (which
    /// passes the name as a checked string literal so the `tracename`
    /// audit pass covers recorder probes too). Unknown names record
    /// nothing.
    fn of(name: &str) -> Option<EventKind> {
        Some(match name {
            "recorder.task.start" => EventKind::TaskStart,
            "recorder.task.end" => EventKind::TaskEnd,
            "recorder.task.panic" => EventKind::TaskPanic,
            "recorder.dispatch" => EventKind::Dispatch,
            "recorder.fence" => EventKind::Fence,
            "recorder.condemn" => EventKind::Condemn,
            "recorder.speculate" => EventKind::Speculate,
            "recorder.resume.mismatch" => EventKind::ResumeMismatch,
            _ => return None,
        })
    }
}

/// One decoded flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderEvent {
    /// Which ring (recording thread) produced it.
    pub ring: u64,
    /// Per-ring sequence number (total events written before this one).
    pub seq: u64,
    /// Facade-clock nanoseconds (virtual under the virtual clock).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Task identity (start voxel), or 0 where not applicable.
    pub task: u64,
    /// Attempt number of the task.
    pub attempt: u32,
    /// How the attempt was dispatched.
    pub origin: TraceOrigin,
    /// Kind-specific argument (usually the worker id).
    pub arg: u64,
}

/// One thread's fixed-capacity event ring. Single writer (the owning
/// thread), any number of concurrent snapshot readers.
pub struct Ring {
    id: u64,
    capacity: usize,
    /// Total events ever written; `head % capacity` is the next slot.
    head: AtomicU64,
    slots: Vec<AtomicU64>,
}

impl Ring {
    fn new(id: u64, capacity: usize) -> Ring {
        let capacity = capacity.max(8).next_power_of_two();
        let mut slots = Vec::with_capacity(capacity * WORDS);
        for _ in 0..capacity * WORDS {
            slots.push(AtomicU64::new(0));
        }
        Ring { id, capacity, head: AtomicU64::new(0), slots }
    }

    /// Events the ring can hold before wrapping.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever written (not capped by capacity).
    #[must_use]
    pub fn written(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// The five words of the slot `seq` maps to. `None` is unreachable
    /// (`base + WORDS ≤ capacity · WORDS` by construction) but keeps the
    /// accessor panic-free for the `panicpath` audit pass.
    fn slot_words(&self, seq: u64) -> Option<&[AtomicU64; WORDS]> {
        let base = usize::try_from(seq).unwrap_or(0) % self.capacity * WORDS;
        self.slots.get(base..base + WORDS).and_then(|words| words.try_into().ok())
    }

    /// Append one event. Wait-free: the slot's version word goes odd
    /// (`2·seq + 1`, write in progress), the payload words land, the
    /// version settles even (`2·seq`), and the head advances — five
    /// stores, no loop, no lock, no allocation. Wraparound silently
    /// drops the oldest entry.
    fn push(&self, kind: EventKind, task: u64, attempt: u32, origin: TraceOrigin, arg: u64) {
        let ts = fcma_sync::time::Instant::now().nanos();
        let seq = self.head.load(Ordering::Relaxed);
        let Some([ver, w_ts, w_meta, w_task, w_arg]) = self.slot_words(seq) else {
            return;
        };
        let meta = kind.code() | origin.code() << 8 | u64::from(attempt) << 16;
        ver.store(2 * seq + 1, Ordering::Release);
        w_ts.store(ts, Ordering::Relaxed);
        w_meta.store(meta, Ordering::Relaxed);
        w_task.store(task, Ordering::Relaxed);
        w_arg.store(arg, Ordering::Relaxed);
        ver.store(2 * seq, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Decode the newest events, oldest first. Safe against a concurrent
    /// writer (seqlock-style): a slot is taken only when its version
    /// word reads `2·seq` both before and after the payload copy, so a
    /// slot the writer was overwriting mid-copy is skipped, never
    /// decoded torn. A quiescent ring yields exactly
    /// `min(written, capacity)` events.
    #[must_use]
    pub fn snapshot(&self) -> Vec<RecorderEvent> {
        let cap = u64::try_from(self.capacity).unwrap_or(u64::MAX);
        let head = self.head.load(Ordering::Acquire);
        let lo = head.saturating_sub(cap);
        let mut out = Vec::with_capacity(usize::try_from(head - lo).unwrap_or(0));
        for seq in lo..head {
            let Some([ver, w_ts, w_meta, w_task, w_arg]) = self.slot_words(seq) else {
                continue;
            };
            if ver.load(Ordering::Acquire) != 2 * seq {
                continue; // being overwritten (odd) or already recycled
            }
            let ts_ns = w_ts.load(Ordering::Relaxed);
            let meta = w_meta.load(Ordering::Relaxed);
            let task = w_task.load(Ordering::Relaxed);
            let arg = w_arg.load(Ordering::Relaxed);
            if ver.load(Ordering::Acquire) != 2 * seq {
                continue; // writer lapped us mid-copy; payload untrusted
            }
            out.push(RecorderEvent {
                ring: self.id,
                seq,
                ts_ns,
                kind: EventKind::from_code(meta & 0xff),
                task,
                attempt: u32::try_from(meta >> 16).unwrap_or(u32::MAX),
                origin: TraceOrigin::from_code(meta >> 8 & 0xff),
                arg,
            });
        }
        out
    }
}

/// Every registered ring's surviving events, merged and ordered by
/// `(ts_ns, ring, seq)` — a stable cross-thread timeline.
#[derive(Debug, Clone, Default)]
pub struct RecorderSnapshot {
    /// The merged events.
    pub events: Vec<RecorderEvent>,
}

impl RecorderSnapshot {
    /// Events touching `task`, in timeline order (the causal chain a
    /// postmortem prints for its trigger task).
    #[must_use]
    pub fn causal_chain(&self, task: u64) -> Vec<RecorderEvent> {
        self.events.iter().filter(|e| e.task == task).copied().collect()
    }
}

/// Turn the recorder on or off (it starts on). Off, [`record`] is one
/// relaxed atomic load.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the recorder is on.
#[must_use]
pub fn recorder_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Set the ring capacity (rounded up to a power of two, minimum 8) for
/// rings created after this call. Threads that already recorded keep
/// their ring.
pub fn set_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(8).next_power_of_two(), std::sync::atomic::Ordering::Relaxed);
}

fn register_ring() -> Arc<Ring> {
    let ring = Arc::new(Ring::new(
        NEXT_RING_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        CAPACITY.load(std::sync::atomic::Ordering::Relaxed),
    ));
    REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(Arc::clone(&ring));
    ring
}

/// Append one event to the calling thread's ring (created on first
/// record). Prefer the [`crate::record!`] macro, whose name literal the
/// `tracename` audit pass checks against the §11 taxonomy.
pub fn record(name: &'static str, task: u64, attempt: u32, origin: TraceOrigin, arg: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let Some(kind) = EventKind::of(name) else {
        return;
    };
    RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let ring = slot.get_or_insert_with(register_ring);
        ring.push(kind, task, attempt, origin, arg);
    });
}

/// The calling thread's ring, if it has recorded anything yet (tests
/// use this to assert on one ring without cross-test interference).
#[must_use]
pub fn current_ring() -> Option<Arc<Ring>> {
    RING.with(|cell| cell.borrow().clone())
}

/// Snapshot every registered ring into one merged timeline.
#[must_use]
pub fn snapshot() -> RecorderSnapshot {
    let rings: Vec<Arc<Ring>> =
        REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
    let mut events: Vec<RecorderEvent> = rings.iter().flat_map(|r| r.snapshot()).collect();
    events.sort_by_key(|e| (e.ts_ns, e.ring, e.seq));
    RecorderSnapshot { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_exactly_the_newest_capacity_events_in_order() {
        let ring = Ring::new(9000, 16);
        for i in 0..100u64 {
            ring.push(EventKind::Dispatch, i, 0, TraceOrigin::Dispatch, 0);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 16);
        let tasks: Vec<u64> = events.iter().map(|e| e.task).collect();
        assert_eq!(tasks, (84..100).collect::<Vec<_>>());
        assert_eq!(ring.written(), 100);
    }

    #[test]
    fn event_fields_round_trip_through_the_packed_words() {
        let ring = Ring::new(9001, 8);
        ring.push(EventKind::TaskPanic, 0xdead_beef, 513, TraceOrigin::Speculative, 42);
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        let e = events[0];
        assert_eq!(e.kind, EventKind::TaskPanic);
        assert_eq!(e.task, 0xdead_beef);
        assert_eq!(e.attempt, 513);
        assert_eq!(e.origin, TraceOrigin::Speculative);
        assert_eq!(e.arg, 42);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        set_enabled(false);
        record("recorder.dispatch", 7777, 0, TraceOrigin::Dispatch, 0);
        set_enabled(true);
        record("recorder.dispatch", 8888, 0, TraceOrigin::Dispatch, 0);
        let ring = current_ring().expect("enabled record created a ring");
        let tasks: Vec<u64> = ring.snapshot().iter().map(|e| e.task).collect();
        assert!(!tasks.contains(&7777), "disabled record must drop the event");
        assert!(tasks.contains(&8888));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            EventKind::TaskStart,
            EventKind::TaskEnd,
            EventKind::TaskPanic,
            EventKind::Dispatch,
            EventKind::Fence,
            EventKind::Condemn,
            EventKind::Speculate,
            EventKind::ResumeMismatch,
        ] {
            assert_eq!(EventKind::of(kind.name()), Some(kind));
            assert_eq!(EventKind::from_code(kind.code()), kind);
        }
        assert_eq!(EventKind::of("recorder.not.a.kind"), None);
    }
}
