//! Minimal JSON support: escaping for the exporters and a small
//! recursive-descent parser for `fcma report`'s trace parse-back.
//!
//! The workspace is std-only, so instead of a serde dependency this
//! module implements exactly the JSON subset the Chrome-trace exporter
//! emits: objects, arrays, strings (with `\uXXXX` escapes), numbers,
//! booleans, and null. It is a strict parser — trailing garbage or
//! malformed input yields an error with a byte offset, which is what
//! the CI trace-validation step relies on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys sorted (BTreeMap) for deterministic iteration.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub(crate) fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub(crate) fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => {
                // cast is exact here: guarded: non-negative integral f64
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Member lookup: `value.get("key")` on objects, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parse a complete JSON document (rejecting trailing garbage).
///
/// # Errors
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

// audit: allow(panicpath) — `bytes[*pos]` is guarded by `*pos < bytes.len()` in the loop condition
fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

// audit: allow(panicpath) — descent helpers bounds-guard every byte index; syntax errors are Err, not panics
fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, text: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(text.as_bytes()) {
        *pos += text.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number")?;
    text.parse::<f64>().map(Value::Number).map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("unterminated string at byte {pos}")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar. Find its byte length from the
                // leading byte so multibyte characters pass through.
                let b = bytes[*pos];
                let len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let end = (*pos + len).min(bytes.len());
                let chunk = std::str::from_utf8(&bytes[*pos..end])
                    .map_err(|_| format!("non-utf8 string at byte {pos}"))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap(), &Value::Bool(true));
        assert_eq!(v.get("b").unwrap().get("e").unwrap(), &Value::Null);
    }

    #[test]
    fn rejects_trailing_garbage_and_syntax_errors() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "line1\nline2\t\"quoted\" \\slash µ-unit";
        let mut encoded = String::new();
        escape_into(&mut encoded, original);
        let parsed = parse(&encoded).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""µs""#).unwrap();
        assert_eq!(v.as_str(), Some("µs"));
    }
}
