//! Postmortem dumps: when the cluster hits a fault, the flight
//! recorder's rings are snapshotted and rendered into a small,
//! self-describing text artifact (`fcma-postmortem v1`) that names the
//! trigger, prints the merged cross-thread timeline, and extracts the
//! causal chain of the task that tripped the fault.
//!
//! The driver emits one automatically (into `ClusterConfig::
//! postmortem_dir`) on a task panic, a worker condemnation, a deadline
//! fence discarding a late message, or a checkpoint-resume mismatch.
//! `fcma postmortem <file>` re-parses and summarizes a dump with
//! [`validate`].

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::recorder::{snapshot, RecorderSnapshot};

/// Magic first line of every dump; bump the suffix when the format
/// changes shape.
pub const POSTMORTEM_HEADER: &str = "fcma-postmortem v1";

/// Why a postmortem was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostmortemTrigger {
    /// Stable trigger kind: `task.panic`, `worker.condemned`,
    /// `deadline.fence`, or `resume.mismatch` (DESIGN.md §11 table).
    pub kind: &'static str,
    /// The task at fault (its start voxel).
    pub task: u64,
    /// The attempt at fault.
    pub attempt: u32,
    /// The worker involved.
    pub worker: u64,
}

/// Render a recorder snapshot plus trigger into the `fcma-postmortem
/// v1` text format. Pure function of its inputs, so the format is
/// golden-testable.
#[must_use]
pub fn render(snap: &RecorderSnapshot, trigger: &PostmortemTrigger) -> String {
    let mut out = String::new();
    let mut rings: Vec<u64> = snap.events.iter().map(|e| e.ring).collect();
    rings.sort_unstable();
    rings.dedup();
    let _ = writeln!(out, "{POSTMORTEM_HEADER}");
    let _ = writeln!(
        out,
        "trigger: {} task={} attempt={} worker={}",
        trigger.kind, trigger.task, trigger.attempt, trigger.worker
    );
    let _ = writeln!(out, "events: {}", snap.events.len());
    let _ = writeln!(out, "rings: {}", rings.len());
    let _ = writeln!(out, "-- timeline --");
    for e in &snap.events {
        let _ = writeln!(
            out,
            "ts={} ring={} seq={} {} task={} attempt={} origin={} arg={}",
            e.ts_ns,
            e.ring,
            e.seq,
            e.kind.name(),
            e.task,
            e.attempt,
            e.origin.as_str(),
            e.arg
        );
    }
    let _ = writeln!(out, "-- causal chain: task {} --", trigger.task);
    for e in snap.causal_chain(trigger.task) {
        let _ = writeln!(
            out,
            "ts={} ring={} seq={} {} attempt={} origin={} arg={}",
            e.ts_ns,
            e.ring,
            e.seq,
            e.kind.name(),
            e.attempt,
            e.origin.as_str(),
            e.arg
        );
    }
    out
}

/// Snapshot every ring and write a dump for `trigger` into `dir`
/// (created if absent). The file name is derived from the trigger so
/// repeated faults in one run produce distinct artifacts.
///
/// # Errors
/// Propagates filesystem errors creating the directory or writing the
/// file.
pub fn emit_to_dir(dir: &Path, trigger: &PostmortemTrigger) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let snap = snapshot();
    let kind = trigger.kind.replace('.', "-");
    let path =
        dir.join(format!("postmortem-{kind}-task{}-attempt{}.txt", trigger.task, trigger.attempt));
    std::fs::write(&path, render(&snap, trigger))?;
    Ok(path)
}

/// A parsed-back dump summary, as printed by `fcma postmortem`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostmortemSummary {
    /// The full `trigger:` line (minus the key).
    pub trigger: String,
    /// Declared event count from the header.
    pub events: usize,
    /// Declared ring count from the header.
    pub rings: usize,
    /// Lines in the causal-chain section.
    pub chain_len: usize,
}

/// Parse and check a dump: header magic, trigger line, event count
/// matching the timeline section, and a causal-chain section.
///
/// # Errors
/// Returns a human-readable description of the first malformation.
pub fn validate(text: &str) -> Result<PostmortemSummary, String> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if header != POSTMORTEM_HEADER {
        return Err(format!("bad header {header:?}: want {POSTMORTEM_HEADER:?}"));
    }
    let trigger = lines
        .next()
        .and_then(|l| l.strip_prefix("trigger: "))
        .ok_or_else(|| "missing trigger line".to_string())?
        .to_string();
    let events: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("events: "))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| "missing events line".to_string())?;
    let rings: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("rings: "))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| "missing rings line".to_string())?;
    if lines.next() != Some("-- timeline --") {
        return Err("missing timeline section".to_string());
    }
    let mut timeline = 0usize;
    let mut chain_len = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("-- causal chain: ") {
            if !rest.ends_with(" --") {
                return Err(format!("malformed causal-chain marker {line:?}"));
            }
            chain_len = Some(0);
            continue;
        }
        match &mut chain_len {
            None => timeline += 1,
            Some(n) => *n += 1,
        }
    }
    if timeline != events {
        return Err(format!("events header says {events} but timeline has {timeline} lines"));
    }
    let chain_len = chain_len.ok_or_else(|| "missing causal-chain section".to_string())?;
    Ok(PostmortemSummary { trigger, events, rings, chain_len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::TraceOrigin;
    use crate::recorder::{EventKind, RecorderEvent};

    fn sample_snapshot() -> RecorderSnapshot {
        let ev = |ring, seq, ts_ns, kind, task, attempt, origin, arg| RecorderEvent {
            ring,
            seq,
            ts_ns,
            kind,
            task,
            attempt,
            origin,
            arg,
        };
        RecorderSnapshot {
            events: vec![
                ev(0, 0, 100, EventKind::Dispatch, 64, 0, TraceOrigin::Dispatch, 1),
                ev(1, 0, 150, EventKind::TaskStart, 64, 0, TraceOrigin::Dispatch, 1),
                ev(0, 1, 200, EventKind::Dispatch, 128, 0, TraceOrigin::Dispatch, 2),
                ev(1, 1, 900, EventKind::TaskPanic, 64, 0, TraceOrigin::Dispatch, 1),
                ev(0, 2, 950, EventKind::Condemn, 64, 0, TraceOrigin::Dispatch, 1),
                ev(0, 3, 980, EventKind::Dispatch, 64, 1, TraceOrigin::Retry, 2),
            ],
        }
    }

    #[test]
    fn render_matches_golden() {
        let trigger = PostmortemTrigger { kind: "task.panic", task: 64, attempt: 0, worker: 1 };
        let got = render(&sample_snapshot(), &trigger);
        let want = "\
fcma-postmortem v1
trigger: task.panic task=64 attempt=0 worker=1
events: 6
rings: 2
-- timeline --
ts=100 ring=0 seq=0 recorder.dispatch task=64 attempt=0 origin=dispatch arg=1
ts=150 ring=1 seq=0 recorder.task.start task=64 attempt=0 origin=dispatch arg=1
ts=200 ring=0 seq=1 recorder.dispatch task=128 attempt=0 origin=dispatch arg=2
ts=900 ring=1 seq=1 recorder.task.panic task=64 attempt=0 origin=dispatch arg=1
ts=950 ring=0 seq=2 recorder.condemn task=64 attempt=0 origin=dispatch arg=1
ts=980 ring=0 seq=3 recorder.dispatch task=64 attempt=1 origin=retry arg=2
-- causal chain: task 64 --
ts=100 ring=0 seq=0 recorder.dispatch attempt=0 origin=dispatch arg=1
ts=150 ring=1 seq=0 recorder.task.start attempt=0 origin=dispatch arg=1
ts=900 ring=1 seq=1 recorder.task.panic attempt=0 origin=dispatch arg=1
ts=950 ring=0 seq=2 recorder.condemn attempt=0 origin=dispatch arg=1
ts=980 ring=0 seq=3 recorder.dispatch attempt=1 origin=retry arg=2
";
        assert_eq!(got, want);
    }

    #[test]
    fn rendered_dump_validates_and_summarizes() {
        let trigger =
            PostmortemTrigger { kind: "worker.condemned", task: 64, attempt: 0, worker: 1 };
        let text = render(&sample_snapshot(), &trigger);
        let summary = validate(&text).expect("rendered dump must validate");
        assert_eq!(summary.trigger, "worker.condemned task=64 attempt=0 worker=1");
        assert_eq!(summary.events, 6);
        assert_eq!(summary.rings, 2);
        assert_eq!(summary.chain_len, 5);
    }

    #[test]
    fn validate_rejects_malformed_dumps() {
        assert!(validate("not a postmortem").is_err());
        assert!(validate("fcma-postmortem v1\n").is_err());
        let trigger = PostmortemTrigger { kind: "task.panic", task: 1, attempt: 0, worker: 0 };
        let mut text = render(&sample_snapshot(), &trigger);
        text.push_str(
            "ts=999 ring=9 seq=9 recorder.fence task=1 attempt=0 origin=dispatch arg=0\n",
        );
        // Extra chain lines are fine; a missing timeline line is not.
        assert!(validate(&text).is_ok());
        let truncated = text.replace(
            "ts=200 ring=0 seq=1 recorder.dispatch task=128 attempt=0 origin=dispatch arg=2\n",
            "",
        );
        assert!(validate(&truncated).is_err());
    }

    #[test]
    fn emit_writes_a_validating_artifact() {
        let dir = std::env::temp_dir().join("fcma-postmortem-test");
        let trigger = PostmortemTrigger { kind: "resume.mismatch", task: 3, attempt: 2, worker: 0 };
        let path = emit_to_dir(&dir, &trigger).expect("emit");
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some("postmortem-resume-mismatch-task3-attempt2.txt")
        );
        let text = std::fs::read_to_string(&path).expect("read back");
        let summary = validate(&text).expect("validate");
        assert!(summary.trigger.starts_with("resume.mismatch"));
        let _ = std::fs::remove_file(&path);
    }
}
