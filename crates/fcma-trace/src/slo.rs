//! Service-level objectives over span-family latency quantiles.
//!
//! An SLO file is a TOML subset: any number of `[[slo]]` tables, each
//! naming a span family and a quantile bound:
//!
//! ```toml
//! [[slo]]
//! span = "stage1.corr"
//! p = 0.99
//! max_ms = 250.0
//! min_count = 10   # optional: skip the rule below this sample count
//! ```
//!
//! `fcma report --slo slo.toml` evaluates every rule against the
//! report's per-span-family duration histograms and exits nonzero if
//! any quantile exceeds its bound. Only the subset above is parsed —
//! no nesting, no arrays, no multi-line strings — which keeps the
//! parser dependency-free and the failure modes obvious.

use std::collections::BTreeMap;
use std::fmt;

use crate::report::Histogram;

/// One quantile bound on one span family.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Span family name (e.g. `stage1.corr`).
    pub span: String,
    /// Quantile in (0, 1], e.g. `0.99`.
    pub p: f64,
    /// Bound on that quantile, in milliseconds.
    pub max_ms: f64,
    /// Rule is skipped when the family has fewer samples than this.
    pub min_count: u64,
}

/// A parsed SLO file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloSpec {
    /// The rules, in file order.
    pub rules: Vec<SloRule>,
}

/// One rule the report failed.
#[derive(Debug, Clone, PartialEq)]
pub struct SloViolation {
    /// The failed rule.
    pub rule: SloRule,
    /// Observed quantile in milliseconds (`None`: family absent from
    /// the report entirely, which also violates).
    pub got_ms: Option<f64>,
    /// Samples observed for the family.
    pub count: u64,
}

impl fmt::Display for SloViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.got_ms {
            Some(got) => write!(
                f,
                "SLO violated: {} p{} = {:.3} ms > {:.3} ms (n={})",
                self.rule.span,
                self.rule.p * 100.0,
                got,
                self.rule.max_ms,
                self.count
            ),
            None => write!(
                f,
                "SLO violated: span family {:?} absent from report (rule p{} <= {:.3} ms)",
                self.rule.span,
                self.rule.p * 100.0,
                self.rule.max_ms
            ),
        }
    }
}

impl SloSpec {
    /// Parse the TOML subset described in the module docs.
    ///
    /// # Errors
    /// Returns a `line N: reason` message on the first malformed line,
    /// unknown key, or incomplete rule.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        struct Partial {
            line: usize,
            span: Option<String>,
            p: Option<f64>,
            max_ms: Option<f64>,
            min_count: u64,
        }
        fn finish(p: Partial) -> Result<SloRule, String> {
            let rule = SloRule {
                span: p.span.ok_or(format!("line {}: [[slo]] missing `span`", p.line))?,
                p: p.p.ok_or(format!("line {}: [[slo]] missing `p`", p.line))?,
                max_ms: p.max_ms.ok_or(format!("line {}: [[slo]] missing `max_ms`", p.line))?,
                min_count: p.min_count,
            };
            if rule.p <= 0.0 || rule.p > 1.0 || rule.p.is_nan() {
                return Err(format!("line {}: p = {} outside (0, 1]", p.line, rule.p));
            }
            if rule.max_ms <= 0.0 || rule.max_ms.is_nan() {
                return Err(format!("line {}: max_ms = {} not positive", p.line, rule.max_ms));
            }
            Ok(rule)
        }
        let mut rules = Vec::new();
        let mut current: Option<Partial> = None;
        for (idx, raw) in text.lines().enumerate() {
            let no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[slo]]" {
                if let Some(done) = current.take() {
                    rules.push(finish(done)?);
                }
                current =
                    Some(Partial { line: no, span: None, p: None, max_ms: None, min_count: 0 });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or(format!("line {no}: expected `key = value` or `[[slo]]`"))?;
            let cur = current.as_mut().ok_or(format!("line {no}: `{key}` before [[slo]]"))?;
            match key {
                "span" => {
                    let quoted = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or(format!("line {no}: span value must be a quoted string"))?;
                    cur.span = Some(quoted.to_string());
                }
                "p" => {
                    cur.p =
                        Some(value.parse().map_err(|_| format!("line {no}: bad float {value:?}"))?);
                }
                "max_ms" => {
                    cur.max_ms =
                        Some(value.parse().map_err(|_| format!("line {no}: bad float {value:?}"))?);
                }
                "min_count" => {
                    cur.min_count =
                        value.parse().map_err(|_| format!("line {no}: bad integer {value:?}"))?;
                }
                other => return Err(format!("line {no}: unknown key {other:?}")),
            }
        }
        if let Some(done) = current.take() {
            rules.push(finish(done)?);
        }
        Ok(SloSpec { rules })
    }

    /// Evaluate every rule against per-span-family duration histograms
    /// (recorded in microseconds, as
    /// `TraceReport::span_duration_histograms` builds them). Returns the
    /// violations, empty when the report meets the spec.
    #[must_use]
    pub fn check(&self, hists: &BTreeMap<String, Histogram>) -> Vec<SloViolation> {
        let mut out = Vec::new();
        for rule in &self.rules {
            match hists.get(&rule.span) {
                None => {
                    if rule.min_count == 0 {
                        out.push(SloViolation { rule: rule.clone(), got_ms: None, count: 0 });
                    }
                }
                Some(h) => {
                    if h.count < rule.min_count {
                        continue;
                    }
                    let got_ms = h.quantile(rule.p) / 1000.0;
                    if got_ms > rule.max_ms {
                        out.push(SloViolation {
                            rule: rule.clone(),
                            got_ms: Some(got_ms),
                            count: h.count,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[f64]) -> Histogram {
        let mut h = Histogram::default();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn parses_rules_with_comments_and_defaults() {
        let spec = SloSpec::parse(
            "# fleet SLOs\n\
             [[slo]]\n\
             span = \"stage1.corr\"  # the hot one\n\
             p = 0.99\n\
             max_ms = 250.0\n\
             \n\
             [[slo]]\n\
             span = \"cluster.dispatch\"\n\
             p = 0.5\n\
             max_ms = 1.5\n\
             min_count = 10\n",
        )
        .expect("parse");
        assert_eq!(spec.rules.len(), 2);
        assert_eq!(spec.rules[0].span, "stage1.corr");
        assert_eq!(spec.rules[0].min_count, 0);
        assert_eq!(spec.rules[1].min_count, 10);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(SloSpec::parse("span = \"x\"\n").is_err(), "key before table");
        assert!(SloSpec::parse("[[slo]]\nspan = \"x\"\np = 0.5\n").is_err(), "missing max_ms");
        assert!(SloSpec::parse("[[slo]]\nspan = x\np = 0.5\nmax_ms = 1\n").is_err(), "bare span");
        assert!(
            SloSpec::parse("[[slo]]\nspan = \"x\"\np = 1.5\nmax_ms = 1\n").is_err(),
            "p out of range"
        );
        assert!(
            SloSpec::parse("[[slo]]\nspan = \"x\"\np = 0.5\nmax_ms = 1\nnope = 2\n").is_err(),
            "unknown key"
        );
    }

    #[test]
    fn check_flags_quantile_over_bound_and_missing_families() {
        let spec = SloSpec::parse(
            "[[slo]]\nspan = \"fast\"\np = 0.95\nmax_ms = 1.0\n\
             [[slo]]\nspan = \"slow\"\np = 0.5\nmax_ms = 0.001\n\
             [[slo]]\nspan = \"absent\"\np = 0.5\nmax_ms = 1.0\n\
             [[slo]]\nspan = \"sparse\"\np = 0.5\nmax_ms = 0.001\nmin_count = 100\n",
        )
        .expect("parse");
        let mut hists = BTreeMap::new();
        hists.insert("fast".to_string(), hist_of(&[100.0, 200.0, 300.0])); // µs, under 1 ms
        hists.insert("slow".to_string(), hist_of(&[5000.0, 6000.0, 7000.0])); // over 1 µs
        hists.insert("sparse".to_string(), hist_of(&[9000.0])); // below min_count
        let violations = spec.check(&hists);
        let names: Vec<&str> = violations.iter().map(|v| v.rule.span.as_str()).collect();
        assert_eq!(names, ["slow", "absent"]);
        assert!(violations[0].got_ms.expect("measured") > 0.001);
        assert_eq!(violations[1].got_ms, None);
        assert!(violations[0].to_string().contains("SLO violated"));
    }
}
