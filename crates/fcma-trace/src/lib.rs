//! Runtime observability for the FCMA reproduction: hierarchical spans,
//! monotonic counters, value histograms, and exporters — std-only, with
//! a near-no-op disabled path.
//!
//! The paper's optimization story is measurement-driven (per-stage
//! wall-clock breakdowns and hardware-counter profiles motivate every
//! kernel change), and the cluster scheduler's fault handling is only
//! trustworthy if its decisions are visible. This crate provides the
//! runtime side of that: instrument code with [`span!`], [`event!`],
//! [`counter!`], and [`histogram!`]; install a [`Collector`] around the
//! region of interest; [`Collector::drain`] the merged [`TraceReport`];
//! and export it as Chrome `chrome://tracing` JSON
//! ([`export::to_chrome_json`]), Prometheus text
//! ([`export::to_prometheus_text`]), or a `perf report`-style summary
//! ([`TraceReport::summary_table`]).
//!
//! # Cost model
//!
//! With no collector installed every macro reduces to one relaxed atomic
//! load — attribute expressions are **not evaluated** and nothing
//! allocates, so instrumentation can live inside hot kernels. With a
//! collector installed, span records are buffered per thread and merged
//! only at drain, so recording never contends across worker threads.
//!
//! # Span taxonomy
//!
//! Span, event, counter, and histogram names form a stable dotted
//! snake-case contract documented in DESIGN.md §Observability and
//! enforced by `fcma-audit`'s `tracename` pass.
//!
//! ```
//! use fcma_trace::{span, counter, Collector};
//!
//! let collector = Collector::new();
//! let scope = collector.install_scoped();
//! {
//!     let _span = span!("stage1.corr", voxels = 64, epochs = 12);
//!     counter!("stage1.flops", 1_234_u64);
//! }
//! let report = scope.drain();
//! assert_eq!(report.span_count("stage1.corr"), 1);
//! assert_eq!(report.counter("stage1.flops"), 1_234);
//! ```

mod collector;
pub mod ctx;
pub mod export;
pub mod json;
pub mod postmortem;
pub mod recorder;
mod report;
pub mod slo;

pub use collector::{
    add_counter, add_labeled_counter, instant, is_enabled, record_span_elapsed, record_span_since,
    record_value, start_span, Collector, SpanGuard,
};
pub use collector::{IntoCount, ScopedCollector};
pub use ctx::{CtxGuard, TraceCtx, TraceOrigin};
pub use report::{AttrValue, HISTOGRAM_BUCKETS};
pub use report::{Histogram, LabeledCounter, SpanRecord, TraceReport};

/// Open a hierarchical span; it records its wall time when the returned
/// guard drops. Attributes are `key = value` pairs, where values are
/// anything convertible to [`AttrValue`] (integers, floats, bools,
/// strings). When no collector is installed the attribute expressions
/// are not evaluated.
///
/// ```
/// # use fcma_trace::span;
/// let _guard = span!("stage2.normalize", voxels = 64_usize, schedule = "merged");
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::is_enabled() {
            $crate::start_span($name, vec![$((stringify!($key), $crate::AttrValue::from($value))),*])
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Record an instant event (a point in time, not a duration), attached
/// to the innermost open span on this thread.
///
/// ```
/// # use fcma_trace::event;
/// event!("cluster.condemn", worker = 3_usize);
/// ```
#[macro_export]
macro_rules! event {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::is_enabled() {
            $crate::instant($name, vec![$((stringify!($key), $crate::AttrValue::from($value))),*]);
        }
    };
}

/// Add a delta to a named monotonic counter. Accepts `u64`, `u32`, or
/// `usize` deltas (via [`IntoCount`]), so pipeline code needs no casts.
///
/// ```
/// # use fcma_trace::counter;
/// counter!("svm.cv.folds", 12_usize);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:literal, $delta:expr) => {
        if $crate::is_enabled() {
            $crate::add_counter($name, $delta);
        }
    };
}

/// Record a value into a named histogram.
///
/// ```
/// # use fcma_trace::histogram;
/// histogram!("svm.smo.iterations_per_solve", 41.0);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:literal, $value:expr) => {
        if $crate::is_enabled() {
            $crate::record_value($name, $value);
        }
    };
}

/// Add a delta to one series of a labeled counter (`label = key`
/// selects the series; e.g. `worker = wid`). Unlike [`counter!`], one
/// name fans out into per-label-value Prometheus series.
///
/// ```
/// # use fcma_trace::labeled_counter;
/// labeled_counter!("pool.worker.tasks", worker = 3_usize, 17_u64);
/// ```
#[macro_export]
macro_rules! labeled_counter {
    ($name:literal, $label:ident = $key:expr, $delta:expr) => {
        if $crate::is_enabled() {
            $crate::add_labeled_counter($name, stringify!($label), $key, $delta);
        }
    };
}

/// Append one event to the calling thread's flight-recorder ring. The
/// recorder is **not** gated on a collector being installed — it is the
/// always-on black box — so this macro only names the event; see
/// [`recorder::record`].
///
/// ```
/// # use fcma_trace::{record, TraceOrigin};
/// record!("recorder.dispatch", 64, 1, TraceOrigin::Dispatch, 0);
/// ```
#[macro_export]
macro_rules! record {
    ($name:literal, $task:expr, $attempt:expr, $origin:expr, $arg:expr) => {
        $crate::recorder::record($name, $task, $attempt, $origin, $arg)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn disabled_macros_do_not_evaluate_attrs() {
        // No collector installed (and the scope lock is not held, but
        // is_enabled() may still be false even if another test holds it —
        // so serialize with the scope lock via an installed collector
        // that we immediately uninstall).
        let collector = Collector::new();
        let scope = collector.install_scoped();
        drop(scope); // uninstalled; scope lock released

        // Hold the scope lock again through a fresh collector so no
        // parallel test can install while we probe the disabled path.
        let sentinel = Collector::new();
        let scope = sentinel.install_scoped();
        sentinel.uninstall();
        assert!(!is_enabled());
        let mut evaluated = false;
        let _g = span!(
            "stage1.corr",
            voxels = {
                evaluated = true;
                1_usize
            }
        );
        counter!("stage1.flops", {
            evaluated = true;
            1_u64
        });
        assert!(!evaluated, "disabled macros must not evaluate attribute expressions");
        drop(scope);
    }

    #[test]
    fn span_nesting_records_parents() {
        let collector = Collector::new();
        let scope = collector.install_scoped();
        {
            let outer = span!("analysis.sweep", voxels = 8_usize);
            let outer_id = outer.id().unwrap();
            {
                let inner = span!("stage1.corr");
                assert_ne!(inner.id().unwrap(), outer_id);
            }
            event!("cluster.checkpoint", records = 2_usize);
        }
        let report = scope.drain();
        assert_eq!(report.spans.len(), 3);
        let sweep = report.spans.iter().find(|s| s.name == "analysis.sweep").unwrap();
        let corr = report.spans.iter().find(|s| s.name == "stage1.corr").unwrap();
        let ckpt = report.spans.iter().find(|s| s.name == "cluster.checkpoint").unwrap();
        assert_eq!(sweep.parent, None);
        assert_eq!(corr.parent, Some(sweep.id));
        assert_eq!(ckpt.parent, Some(sweep.id), "events attach to the open span");
        assert!(ckpt.is_event());
        assert_eq!(sweep.attr("voxels"), Some(&AttrValue::U64(8)));
    }

    #[test]
    fn drain_orders_spans_by_start_time_across_threads() {
        let collector = Collector::new();
        let scope = collector.install_scoped();
        {
            let _first = span!("stage1.corr");
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _worker = span!("stage2.normalize");
                std::thread::sleep(Duration::from_millis(1));
            });
        });
        {
            let _last = span!("stage3.score");
        }
        let report = scope.drain();
        let names: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["stage1.corr", "stage2.normalize", "stage3.score"]);
        let tids: Vec<u64> = report.spans.iter().map(|s| s.tid).collect();
        assert_ne!(tids[0], tids[1], "worker thread gets its own trace tid");
    }

    #[test]
    fn record_span_since_captures_external_start() {
        let collector = Collector::new();
        let scope = collector.install_scoped();
        let started = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        record_span_since("cluster.dispatch", vec![("attempt", AttrValue::U64(1))], started);
        let report = scope.drain();
        assert_eq!(report.span_count("cluster.dispatch"), 1);
        let span = &report.spans[0];
        assert!(span.dur_ns.unwrap() >= 1_000_000, "duration covers the sleep");
        assert_eq!(span.attr("attempt"), Some(&AttrValue::U64(1)));
    }

    #[test]
    fn counters_merge_across_threads() {
        let collector = Collector::new();
        let scope = collector.install_scoped();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    counter!("svm.smo.iterations", 10_u64);
                    histogram!("svm.smo.iterations_per_solve", 10.0);
                });
            }
        });
        let report = scope.drain();
        assert_eq!(report.counter("svm.smo.iterations"), 40);
        assert_eq!(report.histograms["svm.smo.iterations_per_solve"].count, 4);
    }

    #[test]
    fn drain_excludes_spans_still_open_then_sees_them_later() {
        let collector = Collector::new();
        let scope = collector.install_scoped();
        let open = span!("svm.cv.loso");
        let mid = scope.drain();
        assert_eq!(mid.span_count("svm.cv.loso"), 0, "open span not yet recorded");
        drop(open);
        let done = scope.drain();
        assert_eq!(done.span_count("svm.cv.loso"), 1);
    }

    #[test]
    fn uninstalled_collector_records_nothing() {
        let collector = Collector::new();
        let scope = collector.install_scoped();
        collector.uninstall();
        {
            let _g = span!("stage1.corr");
            counter!("stage1.flops", 5_u64);
        }
        assert!(collector.drain().spans.is_empty());
        drop(scope);
    }
}
