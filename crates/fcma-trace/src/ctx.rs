//! Causal task context: links every span, event, and recorder entry on
//! any thread back to the cluster dispatch that caused it.
//!
//! The master stamps a [`TraceCtx`] into each `ToWorker::Task` message;
//! the worker installs it ([`TraceCtx::install`]) around the executor
//! call, and the collector copies the current context into every record
//! made while the guard is live (`ctx_task` / `ctx_attempt` /
//! `ctx_origin` attributes). When the executor fans work out through
//! `fcma-sync::pool`, the pool's context hooks (registered here, once)
//! carry the same context onto the region's worker threads — so a span
//! recorded three layers down on a stolen pool task still names its
//! dispatch. `fcma report --check` closes the loop with cross-thread
//! causality invariants over these attributes.

use std::cell::Cell;

use fcma_sync::pool::{set_ctx_hooks, CtxHooks};

/// Where an attempt came from: the first dispatch of a task, a retry
/// after a failure, or a speculative clone of a straggler. Retries and
/// speculation clones share a task id; the origin is what tells them
/// apart in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOrigin {
    /// First dispatch of the task.
    Dispatch,
    /// Re-dispatch after a failed or condemned attempt.
    Retry,
    /// Speculative duplicate of a still-running straggler attempt.
    Speculative,
}

impl TraceOrigin {
    /// Stable string form (used as the `ctx_origin` attribute value).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOrigin::Dispatch => "dispatch",
            TraceOrigin::Retry => "retry",
            TraceOrigin::Speculative => "speculative",
        }
    }

    pub(crate) fn code(self) -> u64 {
        match self {
            TraceOrigin::Dispatch => 0,
            TraceOrigin::Retry => 1,
            TraceOrigin::Speculative => 2,
        }
    }

    pub(crate) fn from_code(code: u64) -> TraceOrigin {
        match code {
            1 => TraceOrigin::Retry,
            2 => TraceOrigin::Speculative,
            _ => TraceOrigin::Dispatch,
        }
    }
}

/// The causal identity of one dispatch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Task identity (the task's start voxel in the cluster scheduler).
    pub task: u64,
    /// 0-based attempt number for this task.
    pub attempt: u32,
    /// How this attempt came to be dispatched.
    pub origin: TraceOrigin,
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

impl TraceCtx {
    /// A context for `task`'s `attempt`-th dispatch.
    #[must_use]
    pub fn new(task: u64, attempt: u32, origin: TraceOrigin) -> TraceCtx {
        TraceCtx { task, attempt, origin }
    }

    /// The calling thread's current context, if one is installed.
    #[must_use]
    pub fn current() -> Option<TraceCtx> {
        CURRENT.with(Cell::get)
    }

    /// Install this context on the calling thread until the returned
    /// guard drops (the previous context, if any, is restored). Also
    /// registers the pool propagation hooks on first use, so any
    /// `fcma-sync::pool` region forked under the guard carries the
    /// context onto its worker threads.
    pub fn install(self) -> CtxGuard {
        register_pool_hooks();
        let prev = CURRENT.with(|c| c.replace(Some(self)));
        CtxGuard { prev }
    }

    pub(crate) fn pack(self) -> [u64; 2] {
        [self.task, u64::from(self.attempt) << 8 | self.origin.code()]
    }

    pub(crate) fn unpack(words: [u64; 2]) -> TraceCtx {
        TraceCtx {
            task: words[0],
            attempt: u32::try_from(words[1] >> 8).unwrap_or(u32::MAX),
            origin: TraceOrigin::from_code(words[1] & 0xff),
        }
    }
}

/// RAII guard from [`TraceCtx::install`]; restores the previous context
/// on drop.
#[must_use = "the context uninstalls when the guard drops"]
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev.take()));
    }
}

/// `capture` half of the pool hooks: snapshot this thread's context.
fn hook_capture() -> Option<[u64; 2]> {
    TraceCtx::current().map(TraceCtx::pack)
}

/// `apply` half of the pool hooks: install/clear on a pool worker.
fn hook_apply(words: Option<[u64; 2]>) {
    CURRENT.with(|c| c.set(words.map(TraceCtx::unpack)));
}

/// Register the pool context hooks exactly once per process.
fn register_pool_hooks() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| set_ctx_hooks(CtxHooks { capture: hook_capture, apply: hook_apply }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_restores_previous_context_on_drop() {
        assert_eq!(TraceCtx::current(), None);
        let outer = TraceCtx::new(3, 0, TraceOrigin::Dispatch);
        let g1 = outer.install();
        {
            let inner = TraceCtx::new(9, 2, TraceOrigin::Retry);
            let g2 = inner.install();
            assert_eq!(TraceCtx::current(), Some(inner));
            drop(g2);
        }
        assert_eq!(TraceCtx::current(), Some(outer));
        drop(g1);
        assert_eq!(TraceCtx::current(), None);
    }

    #[test]
    fn pack_unpack_round_trips() {
        for origin in [TraceOrigin::Dispatch, TraceOrigin::Retry, TraceOrigin::Speculative] {
            let ctx = TraceCtx::new(u64::MAX - 7, 41, origin);
            assert_eq!(TraceCtx::unpack(ctx.pack()), ctx);
        }
    }

    #[test]
    fn context_rides_pool_regions_onto_worker_threads() {
        let ctx = TraceCtx::new(16, 1, TraceOrigin::Speculative);
        let guard = ctx.install();
        let seen = fcma_sync::Pool::new(4).run(vec![(); 12], |_i, ()| TraceCtx::current());
        drop(guard);
        assert!(seen.iter().all(|&s| s == Some(ctx)), "pool workers saw {seen:?}");
    }
}
