//! Exporters: Chrome `chrome://tracing` JSON, Prometheus-style text,
//! and the inverse parse ([`from_chrome_json`]) used by `fcma report`.
//!
//! The Chrome export uses the trace-event *object* format: spans become
//! complete (`"ph":"X"`) events, instant events `"ph":"i"`, with
//! microsecond timestamps as the format requires. Counters and
//! histograms ride along in the extra top-level keys `fcmaCounters` /
//! `fcmaHistograms` (the object format explicitly allows unknown
//! top-level members), so one `trace.json` is self-contained: it opens
//! in `chrome://tracing` / Perfetto *and* round-trips back into a
//! [`TraceReport`] for `fcma report --check`.
//!
//! The Prometheus export is the text exposition format, `.` mapped to
//! `_` in metric names (Prometheus forbids dots) and span aggregates
//! emitted as `fcma_span_{count,duration_seconds_total}` with a
//! `span` label.

use crate::json::{self, Value};
use crate::report::{
    AttrValue, Histogram, LabeledCounter, SpanRecord, TraceReport, HISTOGRAM_BUCKETS,
};
use std::fmt::Write as _;

/// The quantiles every summary family exports (p50 / p95 / p99).
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

fn push_attr_value(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        AttrValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        AttrValue::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                json::escape_into(out, &x.to_string());
            }
        }
        AttrValue::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        AttrValue::Str(s) => json::escape_into(out, s),
    }
}

/// Serialize a report as Chrome trace JSON (object format).
// audit: allow(panicpath) — buckets[..last] bounded by rposition, in-bounds by construction
pub fn to_chrome_json(report: &TraceReport) -> String {
    let mut out = String::with_capacity(4096 + report.spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in report.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::escape_into(&mut out, &s.name);
        let _ = write!(out, ",\"cat\":\"fcma\",\"pid\":1,\"tid\":{},\"id\":{}", s.tid, s.id);
        // Chrome wants microseconds; keep sub-µs precision as a decimal.
        let _ = write!(out, ",\"ts\":{}.{:03}", s.start_ns / 1_000, s.start_ns % 1_000);
        match s.dur_ns {
            Some(d) => {
                let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}.{:03}", d / 1_000, d % 1_000);
            }
            None => {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            }
        }
        out.push_str(",\"args\":{");
        let mut first = true;
        if let Some(parent) = s.parent {
            let _ = write!(out, "\"parent\":{parent}");
            first = false;
        }
        for (k, v) in &s.attrs {
            if !first {
                out.push(',');
            }
            first = false;
            json::escape_into(&mut out, k);
            out.push(':');
            push_attr_value(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("],\"fcmaCounters\":{");
    for (i, (name, value)) in report.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push('}');
    // Elided entirely when empty, so pre-labeled-counter traces and
    // their goldens keep their exact bytes.
    if !report.labeled_counters.is_empty() {
        out.push_str(",\"fcmaLabeledCounters\":{");
        for (i, (name, lc)) in report.labeled_counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, name);
            out.push_str(":{\"label\":");
            json::escape_into(&mut out, &lc.label);
            out.push_str(",\"values\":{");
            for (j, (k, v)) in lc.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{v}");
            }
            out.push_str("}}");
        }
        out.push('}');
    }
    out.push_str(",\"fcmaHistograms\":{");
    for (i, (name, h)) in report.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(&mut out, name);
        let (min, max) = if h.count == 0 { (0.0, 0.0) } else { (h.min, h.max) };
        let _ =
            write!(out, ":{{\"count\":{},\"sum\":{},\"min\":{min},\"max\":{max}", h.count, h.sum);
        out.push_str(",\"buckets\":[");
        // Trailing zero buckets are elided; the parser re-pads.
        let last = h.buckets.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
        for (j, b) in h.buckets[..last].iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

fn attr_from_value(v: &Value) -> AttrValue {
    match v {
        Value::Bool(b) => AttrValue::Bool(*b),
        Value::Number(n) => {
            if n.fract() == 0.0 && *n >= 0.0 {
                AttrValue::U64(v.as_u64().unwrap_or(0))
            } else if n.fract() == 0.0 && *n >= -9_007_199_254_740_992.0 {
                // cast is exact here: guarded: integral f64 within i64 range
                AttrValue::I64(*n as i64)
            } else {
                AttrValue::F64(*n)
            }
        }
        Value::String(s) => AttrValue::Str(s.clone()),
        other => AttrValue::Str(format!("{other:?}")),
    }
}

fn ns_of(v: Option<&Value>) -> u64 {
    // Timestamps are decimal microseconds; convert back to integer ns.
    let us = v.and_then(Value::as_f64).unwrap_or(0.0);
    // cast is exact here: guarded below by max(0) semantics
    let ns = (us * 1_000.0).round();
    if ns <= 0.0 {
        0
    } else {
        // cast is exact here: non-negative after the guard above
        ns as u64
    }
}

/// Parse a Chrome trace JSON produced by [`to_chrome_json`] back into a
/// [`TraceReport`].
///
/// # Errors
/// Returns a description of the first structural problem: invalid JSON,
/// missing `traceEvents`, or malformed event members.
// audit: allow(panicpath) — bucket writes bounded by take(HISTOGRAM_BUCKETS)
pub fn from_chrome_json(input: &str) -> Result<TraceReport, String> {
    let doc = json::parse(input)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing traceEvents array".to_owned())?;
    let mut report = TraceReport::default();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_object().ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] has no name"))?
            .to_owned();
        let ph = obj.get("ph").and_then(Value::as_str).unwrap_or("X");
        let dur_ns = match ph {
            "X" => Some(ns_of(obj.get("dur"))),
            "i" | "I" => None,
            other => return Err(format!("traceEvents[{i}]: unsupported phase {other:?}")),
        };
        let mut parent = None;
        let mut attrs = Vec::new();
        if let Some(args) = obj.get("args").and_then(Value::as_object) {
            for (k, v) in args {
                if k == "parent" {
                    parent = v.as_u64();
                } else {
                    attrs.push((k.clone(), attr_from_value(v)));
                }
            }
        }
        report.spans.push(SpanRecord {
            name,
            tid: obj.get("tid").and_then(Value::as_u64).unwrap_or(0),
            id: obj.get("id").and_then(Value::as_u64).unwrap_or(0),
            parent,
            start_ns: ns_of(obj.get("ts")),
            dur_ns,
            attrs,
        });
    }
    report.spans.sort_by_key(|s| (s.start_ns, s.id));
    if let Some(counters) = doc.get("fcmaCounters").and_then(Value::as_object) {
        for (name, value) in counters {
            let v = value
                .as_u64()
                .ok_or_else(|| format!("counter {name} is not a non-negative integer"))?;
            report.counters.insert(name.clone(), v);
        }
    }
    if let Some(labeled) = doc.get("fcmaLabeledCounters").and_then(Value::as_object) {
        for (name, entry) in labeled {
            let label = entry.get("label").and_then(Value::as_str).unwrap_or("label").to_owned();
            let mut values = std::collections::BTreeMap::new();
            if let Some(obj) = entry.get("values").and_then(Value::as_object) {
                for (k, v) in obj {
                    if let (Ok(key), Some(val)) = (k.parse::<u64>(), v.as_u64()) {
                        values.insert(key, val);
                    }
                }
            }
            report.labeled_counters.insert(name.clone(), LabeledCounter { label, values });
        }
    }
    if let Some(histograms) = doc.get("fcmaHistograms").and_then(Value::as_object) {
        for (name, value) in histograms {
            let mut h = Histogram {
                count: value.get("count").and_then(Value::as_u64).unwrap_or(0),
                sum: value.get("sum").and_then(Value::as_f64).unwrap_or(0.0),
                min: value.get("min").and_then(Value::as_f64).unwrap_or(0.0),
                max: value.get("max").and_then(Value::as_f64).unwrap_or(0.0),
                buckets: [0; HISTOGRAM_BUCKETS],
            };
            if h.count == 0 {
                h.min = f64::INFINITY;
                h.max = f64::NEG_INFINITY;
            }
            if let Some(buckets) = value.get("buckets").and_then(Value::as_array) {
                for (j, b) in buckets.iter().take(HISTOGRAM_BUCKETS).enumerate() {
                    h.buckets[j] = b.as_u64().unwrap_or(0);
                }
            }
            report.histograms.insert(name.clone(), h);
        }
    }
    Ok(report)
}

/// Map a dotted taxonomy name to a Prometheus metric name.
fn prom_name(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

/// Serialize a report in the Prometheus text exposition format: every
/// metric family gets `# HELP` / `# TYPE` header lines, labeled
/// counters fan out into one series per label value, and latency
/// summaries (per-span-family durations plus every value histogram)
/// export p50/p95/p99 `quantile` series.
pub fn to_prometheus_text(report: &TraceReport) -> String {
    let mut out = String::new();
    for (name, value) in &report.counters {
        let metric = prom_name(name);
        let _ = writeln!(out, "# HELP fcma_{metric} FCMA monotonic counter {name}");
        let _ = writeln!(out, "# TYPE fcma_{metric} counter");
        let _ = writeln!(out, "fcma_{metric} {value}");
    }
    for (name, lc) in &report.labeled_counters {
        let metric = prom_name(name);
        let _ = writeln!(out, "# HELP fcma_{metric} FCMA counter {name} by {}", lc.label);
        let _ = writeln!(out, "# TYPE fcma_{metric} counter");
        for (key, value) in &lc.values {
            let _ = writeln!(out, "fcma_{metric}{{{}=\"{key}\"}} {value}", lc.label);
        }
    }
    let aggregates = report.aggregates();
    if !aggregates.is_empty() {
        let _ = writeln!(out, "# HELP fcma_span_count completed spans per span family");
        let _ = writeln!(out, "# TYPE fcma_span_count counter");
        for row in &aggregates {
            let _ = writeln!(out, "fcma_span_count{{span=\"{}\"}} {}", row.name, row.count);
        }
        let _ = writeln!(
            out,
            "# HELP fcma_span_duration_seconds_total total span wall time per span family"
        );
        let _ = writeln!(out, "# TYPE fcma_span_duration_seconds_total counter");
        for row in &aggregates {
            // cast is exact here: ns tally to seconds for display
            let secs = row.total_ns as f64 / 1e9;
            let _ =
                writeln!(out, "fcma_span_duration_seconds_total{{span=\"{}\"}} {secs}", row.name);
        }
    }
    let durations = report.span_duration_histograms();
    if !durations.is_empty() {
        let _ = writeln!(
            out,
            "# HELP fcma_span_duration_us span latency quantiles per span family, in microseconds"
        );
        let _ = writeln!(out, "# TYPE fcma_span_duration_us summary");
        for (name, h) in &durations {
            for (q, label) in QUANTILES {
                let _ = writeln!(
                    out,
                    "fcma_span_duration_us{{span=\"{name}\",quantile=\"{label}\"}} {}",
                    h.quantile(q)
                );
            }
            let _ = writeln!(out, "fcma_span_duration_us_count{{span=\"{name}\"}} {}", h.count);
            let _ = writeln!(out, "fcma_span_duration_us_sum{{span=\"{name}\"}} {}", h.sum);
        }
    }
    for (name, h) in &report.histograms {
        let metric = prom_name(name);
        let _ = writeln!(out, "# HELP fcma_{metric} FCMA value histogram {name}");
        let _ = writeln!(out, "# TYPE fcma_{metric} summary");
        for (q, label) in QUANTILES {
            let _ = writeln!(out, "fcma_{metric}{{quantile=\"{label}\"}} {}", h.quantile(q));
        }
        let _ = writeln!(out, "fcma_{metric}_count {}", h.count);
        let _ = writeln!(out, "fcma_{metric}_sum {}", h.sum);
        if h.count > 0 {
            let _ = writeln!(out, "fcma_{metric}_min {}", h.min);
            let _ = writeln!(out, "fcma_{metric}_max {}", h.max);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_report() -> TraceReport {
        let mut counters = BTreeMap::new();
        counters.insert("cluster.tasks.dispatched".to_owned(), 7);
        counters.insert("stage1.flops".to_owned(), 123_456);
        let mut labeled_counters = BTreeMap::new();
        labeled_counters.insert(
            "pool.worker.tasks".to_owned(),
            LabeledCounter {
                label: "worker".to_owned(),
                values: [(0, 3), (1, 4)].into_iter().collect(),
            },
        );
        let mut histograms = BTreeMap::new();
        let mut h = Histogram::default();
        h.record(3.0);
        h.record(17.0);
        histograms.insert("svm.smo.iterations_per_solve".to_owned(), h);
        TraceReport {
            spans: vec![
                SpanRecord {
                    name: "stage1.corr".to_owned(),
                    tid: 0,
                    id: 1,
                    parent: None,
                    start_ns: 1_500,
                    dur_ns: Some(2_000_250),
                    attrs: vec![
                        ("voxels".to_owned(), AttrValue::U64(64)),
                        ("kernel".to_owned(), AttrValue::Str("tall_skinny".to_owned())),
                    ],
                },
                SpanRecord {
                    name: "cluster.condemn".to_owned(),
                    tid: 1,
                    id: 2,
                    parent: Some(1),
                    start_ns: 9_000,
                    dur_ns: None,
                    attrs: vec![("worker".to_owned(), AttrValue::U64(3))],
                },
            ],
            counters,
            labeled_counters,
            histograms,
        }
    }

    /// Golden-file check: the Chrome export is byte-stable for a fixed
    /// report (determinism matters for CI diffs).
    #[test]
    fn chrome_json_matches_golden() {
        let got = to_chrome_json(&sample_report());
        let want = concat!(
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
            "{\"name\":\"stage1.corr\",\"cat\":\"fcma\",\"pid\":1,\"tid\":0,\"id\":1,",
            "\"ts\":1.500,\"ph\":\"X\",\"dur\":2000.250,",
            "\"args\":{\"voxels\":64,\"kernel\":\"tall_skinny\"}},",
            "{\"name\":\"cluster.condemn\",\"cat\":\"fcma\",\"pid\":1,\"tid\":1,\"id\":2,",
            "\"ts\":9.000,\"ph\":\"i\",\"s\":\"t\",",
            "\"args\":{\"parent\":1,\"worker\":3}}",
            "],\"fcmaCounters\":{",
            "\"cluster.tasks.dispatched\":7,\"stage1.flops\":123456",
            "},\"fcmaLabeledCounters\":{",
            "\"pool.worker.tasks\":{\"label\":\"worker\",\"values\":{\"0\":3,\"1\":4}}",
            "},\"fcmaHistograms\":{",
            "\"svm.smo.iterations_per_solve\":",
            "{\"count\":2,\"sum\":20,\"min\":3,\"max\":17,\"buckets\":[0,1,0,0,1]}",
            "}}"
        );
        assert_eq!(got, want);
    }

    /// Golden-file check for the Prometheus text exposition.
    #[test]
    fn prometheus_text_matches_golden() {
        let got = to_prometheus_text(&sample_report());
        let want = "\
# HELP fcma_cluster_tasks_dispatched FCMA monotonic counter cluster.tasks.dispatched
# TYPE fcma_cluster_tasks_dispatched counter
fcma_cluster_tasks_dispatched 7
# HELP fcma_stage1_flops FCMA monotonic counter stage1.flops
# TYPE fcma_stage1_flops counter
fcma_stage1_flops 123456
# HELP fcma_pool_worker_tasks FCMA counter pool.worker.tasks by worker
# TYPE fcma_pool_worker_tasks counter
fcma_pool_worker_tasks{worker=\"0\"} 3
fcma_pool_worker_tasks{worker=\"1\"} 4
# HELP fcma_span_count completed spans per span family
# TYPE fcma_span_count counter
fcma_span_count{span=\"stage1.corr\"} 1
# HELP fcma_span_duration_seconds_total total span wall time per span family
# TYPE fcma_span_duration_seconds_total counter
fcma_span_duration_seconds_total{span=\"stage1.corr\"} 0.00200025
# HELP fcma_span_duration_us span latency quantiles per span family, in microseconds
# TYPE fcma_span_duration_us summary
fcma_span_duration_us{span=\"stage1.corr\",quantile=\"0.5\"} 2000.25
fcma_span_duration_us{span=\"stage1.corr\",quantile=\"0.95\"} 2000.25
fcma_span_duration_us{span=\"stage1.corr\",quantile=\"0.99\"} 2000.25
fcma_span_duration_us_count{span=\"stage1.corr\"} 1
fcma_span_duration_us_sum{span=\"stage1.corr\"} 2000.25
# HELP fcma_svm_smo_iterations_per_solve FCMA value histogram svm.smo.iterations_per_solve
# TYPE fcma_svm_smo_iterations_per_solve summary
fcma_svm_smo_iterations_per_solve{quantile=\"0.5\"} 4
fcma_svm_smo_iterations_per_solve{quantile=\"0.95\"} 17
fcma_svm_smo_iterations_per_solve{quantile=\"0.99\"} 17
fcma_svm_smo_iterations_per_solve_count 2
fcma_svm_smo_iterations_per_solve_sum 20
fcma_svm_smo_iterations_per_solve_min 3
fcma_svm_smo_iterations_per_solve_max 17
";
        assert_eq!(got, want);
    }

    #[test]
    fn chrome_json_round_trips() {
        let mut report = sample_report();
        let mut parsed = from_chrome_json(&to_chrome_json(&report)).unwrap();
        // JSON objects are unordered; normalize attr order before comparing.
        for s in report.spans.iter_mut().chain(parsed.spans.iter_mut()) {
            s.attrs.sort_by(|a, b| a.0.cmp(&b.0));
        }
        assert_eq!(parsed.spans, report.spans);
        assert_eq!(parsed.counters, report.counters);
        assert_eq!(parsed.labeled_counters, report.labeled_counters);
        assert_eq!(parsed.histograms, report.histograms);
    }

    #[test]
    fn from_chrome_json_rejects_malformed_input() {
        assert!(from_chrome_json("not json").is_err());
        assert!(from_chrome_json("{\"noTraceEvents\": []}").is_err());
        assert!(
            from_chrome_json("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err(),
            "event without a name must be rejected"
        );
    }
}
