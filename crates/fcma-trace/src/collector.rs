//! The runtime collector: a process-global sink for spans, instant
//! events, counters, and histograms.
//!
//! Design constraints, in order:
//!
//! 1. **Near-no-op when disabled.** Every entry point first reads one
//!    relaxed [`AtomicBool`]; the instrumentation macros additionally
//!    gate attribute construction behind [`is_enabled`], so an
//!    uninstrumented run pays one atomic load per call site and
//!    allocates nothing.
//! 2. **No cross-thread contention on the hot path.** Span records are
//!    buffered per thread ([`ThreadBuf`], found through a thread-local
//!    cache) and merged only at [`Collector::drain`]. The per-thread
//!    buffer is behind a `Mutex`, but it is only ever contended by the
//!    drain itself.
//! 3. **Deterministic structure.** Spans carry an id, their parent's id
//!    (the innermost open span on the same thread), and a start
//!    timestamp relative to the collector's epoch, so exporters can
//!    reconstruct the hierarchy without global ordering guarantees.
//!
//! Threads created after installation register lazily on first use; a
//! generation counter invalidates thread-local caches when a different
//! collector is installed.

use crate::report::{AttrValue, Histogram, SpanRecord, TraceReport};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Fast global gate: is any collector installed?
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every install/uninstall to invalidate thread-local caches.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Process-wide span id allocator (0 is reserved for "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Process-wide trace-thread-id allocator.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);
/// The installed collector, if any.
static GLOBAL: Mutex<Option<Arc<Inner>>> = Mutex::new(None);
/// Serializes scoped installs so concurrent tests cannot interleave
/// their collectors.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Labeled-counter storage: (name, label key) → label value → count.
type LabeledMap = HashMap<(&'static str, &'static str), std::collections::BTreeMap<u64, u64>>;

/// Shared state of one collector.
struct Inner {
    /// Time base for every timestamp recorded under this collector.
    epoch: Instant,
    /// The facade clock's reading at this collector's epoch, for
    /// aligning flight-recorder timestamps (recorded on the facade
    /// clock) with span timestamps (recorded against `epoch`).
    rec_epoch: u64,
    /// Every thread buffer ever registered under this collector.
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    /// Monotonic named counters.
    counters: Mutex<HashMap<&'static str, u64>>,
    /// Labeled counters, keyed by (name, label key): label value → count.
    labeled: Mutex<LabeledMap>,
    /// Named value distributions.
    histograms: Mutex<HashMap<&'static str, Histogram>>,
}

/// Stamp the thread's causal context (if a [`crate::TraceCtx`] guard is
/// live) onto a record's attributes, linking it to its dispatch.
fn stamp_ctx(attrs: &mut Vec<(&'static str, AttrValue)>) {
    if let Some(ctx) = crate::TraceCtx::current() {
        attrs.push(("ctx_task", AttrValue::U64(ctx.task)));
        attrs.push(("ctx_attempt", AttrValue::U64(u64::from(ctx.attempt))));
        attrs.push(("ctx_origin", AttrValue::Str(ctx.origin.as_str().to_owned())));
    }
}

/// One thread's span buffer. Records are pushed on span *completion*
/// (and immediately for instant events), so a drain never observes a
/// half-written record.
struct ThreadBuf {
    tid: u64,
    epoch: Instant,
    events: Mutex<Vec<SpanRecord>>,
}

/// Thread-local registration cache plus the open-span stack.
struct Tls {
    generation: u64,
    inner: Option<Arc<Inner>>,
    buf: Option<Arc<ThreadBuf>>,
    stack: Vec<u64>,
}

thread_local! {
    static TLS: RefCell<Tls> =
        const { RefCell::new(Tls { generation: u64::MAX, inner: None, buf: None, stack: Vec::new() }) };
}

/// Whether a collector is installed. The instrumentation macros check
/// this before evaluating any attribute expressions.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` with the calling thread's registration under the current
/// collector, registering first if needed. The closure receives the
/// collector, this thread's buffer, and this thread's open-span stack.
/// Returns `None` if no collector is installed.
fn with_tls<R>(f: impl FnOnce(&Arc<Inner>, &Arc<ThreadBuf>, &mut Vec<u64>) -> R) -> Option<R> {
    if !is_enabled() {
        return None;
    }
    TLS.with(|cell| {
        let mut tls = cell.borrow_mut();
        let generation = GENERATION.load(Ordering::Acquire);
        if tls.generation != generation || tls.buf.is_none() {
            let inner = lock(&GLOBAL).clone()?;
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
                epoch: inner.epoch,
                events: Mutex::new(Vec::new()),
            });
            lock(&inner.threads).push(Arc::clone(&buf));
            tls.generation = generation;
            tls.inner = Some(inner);
            tls.buf = Some(buf);
            tls.stack.clear();
        }
        let tls = &mut *tls;
        match (&tls.inner, &tls.buf) {
            (Some(inner), Some(buf)) => Some(f(inner, buf, &mut tls.stack)),
            _ => None,
        }
    })
}

fn ns_since(epoch: Instant, t: Instant) -> u64 {
    u64::try_from(t.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// An open span; completing (dropping) it records the span. Produced by
/// [`crate::span!`] / [`start_span`].
#[must_use = "a span records its duration when dropped; binding it to `_` drops it immediately"]
// audit: allow(deadpub) — reached via $crate:: paths from #[macro_export] macros; demotion breaks cross-crate expansion
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    attrs: Vec<(&'static str, AttrValue)>,
    buf: Arc<ThreadBuf>,
    started: Instant,
}

impl SpanGuard {
    /// The guard produced when no collector is installed: does nothing.
    // audit: allow(deadpub) — reached via $crate:: paths from #[macro_export] macros; demotion breaks cross-crate expansion
    pub fn disabled() -> Self {
        SpanGuard(None)
    }

    /// This span's id, for correlating external records (`None` when
    /// disabled).
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|s| s.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.0.take() else {
            return;
        };
        let dur = span.started.elapsed();
        // Pop this span from the open-span stack of the *current* thread.
        // Guards are normally dropped on their opening thread in LIFO
        // order; a guard moved across threads simply won't find itself
        // and leaves the foreign stack untouched.
        TLS.with(|cell| {
            let mut tls = cell.borrow_mut();
            if let Some(pos) = tls.stack.iter().rposition(|&id| id == span.id) {
                tls.stack.remove(pos);
            }
        });
        let record = SpanRecord {
            name: span.name.to_owned(),
            tid: span.buf.tid,
            id: span.id,
            parent: span.parent,
            start_ns: ns_since(span.buf.epoch, span.started),
            dur_ns: Some(u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX)),
            attrs: span.attrs.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
        };
        lock(&span.buf.events).push(record);
    }
}

/// Open a span. Prefer the [`crate::span!`] macro, which skips attribute
/// construction entirely when no collector is installed.
// audit: allow(deadpub) — reached via $crate:: paths from #[macro_export] macros; demotion breaks cross-crate expansion
pub fn start_span(name: &'static str, mut attrs: Vec<(&'static str, AttrValue)>) -> SpanGuard {
    stamp_ctx(&mut attrs);
    let active = with_tls(|_, buf, stack| {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = stack.last().copied();
        stack.push(id);
        ActiveSpan { name, id, parent, attrs, buf: Arc::clone(buf), started: Instant::now() }
    });
    SpanGuard(active)
}

/// Record an instant event (zero duration, `ph:"i"` in Chrome traces).
/// Prefer the [`crate::event!`] macro.
// audit: allow(deadpub) — reached via $crate:: paths from #[macro_export] macros; demotion breaks cross-crate expansion
pub fn instant(name: &'static str, mut attrs: Vec<(&'static str, AttrValue)>) {
    stamp_ctx(&mut attrs);
    with_tls(|_, buf, stack| {
        let record = SpanRecord {
            name: name.to_owned(),
            tid: buf.tid,
            id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            parent: stack.last().copied(),
            start_ns: ns_since(buf.epoch, Instant::now()),
            dur_ns: None,
            attrs: attrs.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
        };
        lock(&buf.events).push(record);
    });
}

/// Record a span whose start time was captured externally. The duration
/// is `started.elapsed()` at the time of this call. The cluster master
/// used to track dispatch flights this way; it now records durations
/// measured on the sync facade's clock via [`record_span_elapsed`], but
/// this variant stays public for callers that hold a std [`Instant`].
// audit: allow(deadpub) — public trace API kept for std-Instant callers; the facade-ported driver uses record_span_elapsed instead
pub fn record_span_since(
    name: &'static str,
    mut attrs: Vec<(&'static str, AttrValue)>,
    started: Instant,
) {
    stamp_ctx(&mut attrs);
    with_tls(|_, buf, stack| {
        let record = SpanRecord {
            name: name.to_owned(),
            tid: buf.tid,
            id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            parent: stack.last().copied(),
            start_ns: ns_since(buf.epoch, started),
            dur_ns: Some(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)),
            attrs: attrs.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
        };
        lock(&buf.events).push(record);
    });
}

/// Record a span that ends now and lasted `elapsed`, for callers that
/// measure time on a clock other than `std` (the cluster master tracks
/// dispatch flights on the `fcma-sync` facade clock, which may be
/// virtual; only the duration is meaningful there, so the span is
/// anchored to end at the record call).
pub fn record_span_elapsed(
    name: &'static str,
    mut attrs: Vec<(&'static str, AttrValue)>,
    elapsed: Duration,
) {
    stamp_ctx(&mut attrs);
    with_tls(|_, buf, stack| {
        let end_ns = ns_since(buf.epoch, Instant::now());
        let dur_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let record = SpanRecord {
            name: name.to_owned(),
            tid: buf.tid,
            id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            parent: stack.last().copied(),
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns: Some(dur_ns),
            attrs: attrs.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
        };
        lock(&buf.events).push(record);
    });
}

/// Trait bound for [`add_counter`] deltas, so call sites can pass the
/// `usize` quantities the pipeline naturally produces without lossy
/// casts in kernel crates.
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub trait IntoCount {
    /// Convert to the counter delta.
    fn into_count(self) -> u64;
}
impl IntoCount for u64 {
    fn into_count(self) -> u64 {
        self
    }
}
impl IntoCount for u32 {
    fn into_count(self) -> u64 {
        u64::from(self)
    }
}
impl IntoCount for usize {
    fn into_count(self) -> u64 {
        u64::try_from(self).unwrap_or(u64::MAX)
    }
}

/// Add `delta` to the named monotonic counter. Prefer the
/// [`crate::counter!`] macro.
pub fn add_counter(name: &'static str, delta: impl IntoCount) {
    let delta = delta.into_count();
    with_tls(|inner, _, _| {
        let mut counters = lock(&inner.counters);
        let slot = counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    });
}

/// Add `delta` to one series of a labeled counter — `label` is the
/// label key (e.g. `worker`), `key` its value for this series. Prefer
/// the [`crate::labeled_counter!`] macro.
// audit: allow(deadpub) — reached via $crate:: paths from #[macro_export] macros; demotion breaks cross-crate expansion
pub fn add_labeled_counter(
    name: &'static str,
    label: &'static str,
    key: impl IntoCount,
    delta: impl IntoCount,
) {
    let (key, delta) = (key.into_count(), delta.into_count());
    with_tls(|inner, _, _| {
        let mut labeled = lock(&inner.labeled);
        let slot = labeled.entry((name, label)).or_default().entry(key).or_insert(0);
        *slot = slot.saturating_add(delta);
    });
}

/// Record `value` into the named histogram. Prefer the
/// [`crate::histogram!`] macro.
// audit: allow(deadpub) — reached via $crate:: paths from #[macro_export] macros; demotion breaks cross-crate expansion
pub fn record_value(name: &'static str, value: f64) {
    with_tls(|inner, _, _| {
        lock(&inner.histograms).entry(name).or_default().record(value);
    });
}

/// A trace collector. Install it ([`Collector::install`] or the
/// test-friendly [`Collector::install_scoped`]) to start recording;
/// [`Collector::drain`] merges everything recorded so far into a
/// [`TraceReport`].
pub struct Collector {
    inner: Arc<Inner>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A fresh collector; its epoch (timestamp zero) is now.
    pub fn new() -> Self {
        Collector {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                rec_epoch: fcma_sync::time::Instant::now().nanos(),
                threads: Mutex::new(Vec::new()),
                counters: Mutex::new(HashMap::new()),
                labeled: Mutex::new(HashMap::new()),
                histograms: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Install this collector as the process-global sink, replacing any
    /// previous one.
    pub(crate) fn install(&self) {
        let mut global = lock(&GLOBAL);
        *global = Some(Arc::clone(&self.inner));
        GENERATION.fetch_add(1, Ordering::Release);
        ENABLED.store(true, Ordering::Release);
    }

    /// Uninstall this collector if it is the installed one. Returns
    /// whether it was.
    pub(crate) fn uninstall(&self) -> bool {
        let mut global = lock(&GLOBAL);
        let installed = global.as_ref().is_some_and(|g| Arc::ptr_eq(g, &self.inner));
        if installed {
            *global = None;
            ENABLED.store(false, Ordering::Release);
            GENERATION.fetch_add(1, Ordering::Release);
        }
        installed
    }

    /// Install under a process-wide scope lock and return a guard that
    /// uninstalls on drop. Serializes concurrent scoped users (e.g.
    /// parallel tests), so traces never interleave across collectors.
    pub fn install_scoped(&self) -> ScopedCollector<'_> {
        let scope = lock(&SCOPE_LOCK);
        self.install();
        ScopedCollector { collector: self, _scope: scope }
    }

    /// Merge and clear everything recorded so far. Spans are sorted by
    /// start time (ties by id), giving a deterministic drain order.
    ///
    /// Call this after the instrumented work has finished; a span still
    /// open at drain time is simply absent from the report (it records
    /// on completion).
    pub fn drain(&self) -> TraceReport {
        let mut spans = Vec::new();
        for buf in lock(&self.inner.threads).iter() {
            spans.append(&mut lock(&buf.events));
        }
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let counters = lock(&self.inner.counters).drain().map(|(k, v)| (k.to_owned(), v)).collect();
        let labeled_counters = lock(&self.inner.labeled)
            .drain()
            .map(|((name, label), values)| {
                (name.to_owned(), crate::LabeledCounter { label: label.to_owned(), values })
            })
            .collect();
        let histograms =
            lock(&self.inner.histograms).drain().map(|(k, v)| (k.to_owned(), v)).collect();
        TraceReport { spans, counters, labeled_counters, histograms }
    }

    /// [`Collector::drain`], then bridge the flight recorder's current
    /// events into the report as instant records (so they land on the
    /// Chrome timeline next to the spans). Recorder timestamps are on
    /// the facade clock; they are re-based to this collector's epoch,
    /// clamping events recorded before it to 0. Bridged records use
    /// `tid = 900 + ring` to keep recorder lanes visually separate.
    pub fn drain_with_recorder(&self) -> TraceReport {
        let mut report = self.drain();
        for ev in crate::recorder::snapshot().events {
            report.spans.push(SpanRecord {
                name: ev.kind.name().to_owned(),
                tid: 900 + ev.ring,
                id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
                parent: None,
                start_ns: ev.ts_ns.saturating_sub(self.inner.rec_epoch),
                dur_ns: None,
                attrs: vec![
                    ("task".to_owned(), AttrValue::U64(ev.task)),
                    ("attempt".to_owned(), AttrValue::U64(u64::from(ev.attempt))),
                    ("origin".to_owned(), AttrValue::Str(ev.origin.as_str().to_owned())),
                    ("arg".to_owned(), AttrValue::U64(ev.arg)),
                    ("seq".to_owned(), AttrValue::U64(ev.seq)),
                ],
            });
        }
        report.spans.sort_by_key(|s| (s.start_ns, s.id));
        report
    }
}

/// RAII guard from [`Collector::install_scoped`].
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct ScopedCollector<'a> {
    collector: &'a Collector,
    _scope: MutexGuard<'static, ()>,
}

impl ScopedCollector<'_> {
    /// Drain the underlying collector (see [`Collector::drain`]).
    pub fn drain(&self) -> TraceReport {
        self.collector.drain()
    }

    /// Drain plus the flight-recorder bridge (see
    /// [`Collector::drain_with_recorder`]).
    pub fn drain_with_recorder(&self) -> TraceReport {
        self.collector.drain_with_recorder()
    }
}

impl Drop for ScopedCollector<'_> {
    fn drop(&mut self) {
        self.collector.uninstall();
    }
}
