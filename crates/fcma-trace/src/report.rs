//! Trace data model and human-facing analysis.
//!
//! A drained [`crate::Collector`] yields a [`TraceReport`]: the flat list
//! of completed [`SpanRecord`]s (spans and instant events), the
//! monotonic counters, and the value [`Histogram`]s. This module also
//! turns a report into the two things humans actually ask of a trace —
//! a `perf report`-style per-stage summary table ([`TraceReport::summary_table`])
//! and a pass/fail consistency audit of the scheduler counters
//! ([`TraceReport::check_consistency`], used by `fcma report --check`
//! and CI).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A typed attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (also the landing type for `usize`).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (static labels like kernel names, or owned values).
    Str(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! attr_from {
    ($($ty:ty => $variant:ident via $conv:expr),* $(,)?) => {
        $(impl From<$ty> for AttrValue {
            fn from(v: $ty) -> Self {
                AttrValue::$variant($conv(v))
            }
        })*
    };
}

attr_from! {
    u64 => U64 via (|v| v),
    u32 => U64 via u64::from,
    i64 => I64 via (|v| v),
    i32 => I64 via i64::from,
    f64 => F64 via (|v| v),
    f32 => F64 via f64::from,
    bool => Bool via (|v| v),
    String => Str via (|v| v),
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(u64::try_from(v).unwrap_or(u64::MAX))
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

/// One completed span or instant event.
#[derive(Debug, Clone, PartialEq)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct SpanRecord {
    /// Dotted snake-case name from the documented taxonomy
    /// (e.g. `stage1.corr`).
    pub name: String,
    /// Trace-local thread id (sequential, not the OS tid).
    pub tid: u64,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the innermost span open on the same thread at start.
    pub parent: Option<u64>,
    /// Start, in nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds; `None` marks an instant event.
    pub dur_ns: Option<u64>,
    /// Typed key/value attributes.
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    /// Whether this record is an instant event rather than a span.
    pub(crate) fn is_event(&self) -> bool {
        self.dur_ns.is_none()
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Number of power-of-two buckets a [`Histogram`] keeps: bucket `i`
/// counts values in `[2^i, 2^(i+1))` (bucket 0 also catches `< 1`).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-footprint distribution: count/sum/min/max plus log2 buckets.
#[derive(Debug, Clone, PartialEq)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest recorded value (`f64::NEG_INFINITY` when empty).
    pub max: f64,
    /// Log2 bucket counts; see [`HISTOGRAM_BUCKETS`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one value.
    // audit: allow(panicpath) — idx < HISTOGRAM_BUCKETS by the loop guard above it
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let idx = if value < 2.0 {
            0
        } else {
            let mut idx = 0usize;
            let mut bound = 2.0f64;
            while value >= bound && idx + 1 < HISTOGRAM_BUCKETS {
                idx += 1;
                bound *= 2.0;
            }
            idx
        };
        self.buckets[idx] += 1;
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            // cast is exact here: count is a tally, f64 mantissa suffices
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by walking the
    /// cumulative bucket counts and interpolating linearly inside the
    /// landing bucket, clamped to the exact observed `[min, max]`.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // cast is exact here: count is a tally, f64 mantissa suffices
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            // cast is exact here: bucket tallies for interpolation
            let (cum_before, cum_after) = (cum as f64, (cum + n) as f64);
            cum += n;
            if cum_after >= target {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = (1u64 << (i + 1)) as f64;
                let frac = (target - cum_before) / (cum_after - cum_before);
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one (bucket-wise; the moments
    /// combine exactly). Per-thread and per-shard histograms merge into
    /// fleet-level ones without keeping raw samples.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// A counter broken out along one label dimension — e.g. the per-worker
/// pool stats, where `label` is `"worker"` and `values` maps worker id
/// to count. Exported to Prometheus as one series per label value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct LabeledCounter {
    /// The label key (e.g. `worker`).
    pub label: String,
    /// Label value → count.
    pub values: BTreeMap<u64, u64>,
}

/// Everything one collector recorded, merged and ready for export.
#[derive(Debug, Clone, Default)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct TraceReport {
    /// Completed spans and instant events, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Labeled counters by name (e.g. `pool.worker.tasks` by worker).
    pub labeled_counters: BTreeMap<String, LabeledCounter>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Aggregate of all same-named spans, one row of the summary table.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SpanAggregate {
    /// Span name.
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total wall time across them, nanoseconds.
    pub total_ns: u64,
    /// Mean wall time, nanoseconds.
    pub mean_ns: u64,
    /// `total_ns` as a fraction of the trace wall span (0..=1).
    pub share: f64,
}

impl TraceReport {
    /// A counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Count of instant events with this name.
    pub fn event_count(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.is_event() && s.name == name).count() as u64
    }

    /// Count of completed (non-event) spans with this name.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| !s.is_event() && s.name == name).count() as u64
    }

    /// Wall-clock extent of the trace: from the earliest span start to
    /// the latest span end, in nanoseconds.
    pub(crate) fn wall_ns(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self
            .spans
            .iter()
            .map(|s| s.start_ns.saturating_add(s.dur_ns.unwrap_or(0)))
            .max()
            .unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Aggregate spans by name, sorted by total time descending.
    pub(crate) fn aggregates(&self) -> Vec<SpanAggregate> {
        let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            if let Some(dur) = s.dur_ns {
                let slot = by_name.entry(&s.name).or_insert((0, 0));
                slot.0 += 1;
                slot.1 = slot.1.saturating_add(dur);
            }
        }
        let wall = self.wall_ns().max(1);
        let mut rows: Vec<SpanAggregate> = by_name
            .into_iter()
            .map(|(name, (count, total_ns))| SpanAggregate {
                name: name.to_owned(),
                count,
                total_ns,
                mean_ns: total_ns / count.max(1),
                // cast is exact here: ratio of tallies for display only
                share: total_ns as f64 / wall as f64,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        rows
    }

    /// Render the `perf report`-style per-stage summary: span aggregates
    /// (count, total, mean, share of wall) followed by counters and
    /// histograms.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let wall = self.wall_ns();
        let _ = writeln!(out, "trace wall time: {}", fmt_ns(wall));
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12} {:>12} {:>7}",
            "span", "count", "total", "mean", "share"
        );
        let _ = writeln!(out, "{}", "-".repeat(72));
        for row in self.aggregates() {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>12} {:>12} {:>6.1}%",
                row.name,
                row.count,
                fmt_ns(row.total_ns),
                fmt_ns(row.mean_ns),
                row.share * 100.0
            );
        }
        let events: BTreeMap<&str, u64> =
            self.spans.iter().filter(|s| s.is_event()).fold(BTreeMap::new(), |mut m, s| {
                *m.entry(s.name.as_str()).or_insert(0) += 1;
                m
            });
        if !events.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "{:<40} {:>8}", "event", "count");
            let _ = writeln!(out, "{}", "-".repeat(49));
            for (name, count) in events {
                let _ = writeln!(out, "{name:<40} {count:>8}");
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "{:<40} {:>16}", "counter", "value");
            let _ = writeln!(out, "{}", "-".repeat(57));
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<40} {value:>16}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "min", "max"
            );
            let _ = writeln!(out, "{}", "-".repeat(76));
            for (name, h) in &self.histograms {
                let (min, max) = if h.count == 0 { (0.0, 0.0) } else { (h.min, h.max) };
                let _ = writeln!(
                    out,
                    "{:<34} {:>8} {:>10.1} {:>10.1} {:>10.1}",
                    name,
                    h.count,
                    h.mean(),
                    min,
                    max
                );
            }
        }
        out
    }

    /// Audit the scheduler counters for self-consistency. Returns the
    /// list of violated invariants (empty = consistent). Invariants are
    /// only checked when the counters that feed them are present, so a
    /// pipeline-only trace (no cluster run) passes trivially.
    pub fn check_consistency(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let c = |name: &str| self.counter(name);
        let has_cluster = self.counters.keys().any(|k| k.starts_with("cluster.tasks."));
        if has_cluster {
            let dispatched = c("cluster.tasks.dispatched");
            let resolved = c("cluster.tasks.completed")
                + c("cluster.tasks.discarded")
                + c("cluster.tasks.failed")
                + c("cluster.tasks.condemned")
                + c("cluster.tasks.cancelled");
            if dispatched != resolved {
                violations.push(format!(
                    "cluster.tasks.dispatched ({dispatched}) != completed + discarded + \
                     failed + condemned + cancelled ({resolved})"
                ));
            }
            let total = c("cluster.tasks.total");
            let done = c("cluster.tasks.completed") + c("cluster.tasks.resumed");
            if done != total {
                violations.push(format!(
                    "cluster.tasks.completed + resumed ({done}) != cluster.tasks.total ({total})"
                ));
            }
            let dispatch_spans = self.span_count("cluster.dispatch");
            if dispatch_spans != dispatched {
                violations.push(format!(
                    "cluster.dispatch span count ({dispatch_spans}) != \
                     cluster.tasks.dispatched ({dispatched})"
                ));
            }
            let condemn_events = self.event_count("cluster.condemn");
            let condemned = c("cluster.tasks.condemned");
            if condemn_events != condemned {
                violations.push(format!(
                    "cluster.condemn event count ({condemn_events}) != \
                     cluster.tasks.condemned ({condemned})"
                ));
            }
            let speculate_events = self.event_count("cluster.speculate");
            let speculative = c("cluster.tasks.speculative");
            if speculate_events != speculative {
                violations.push(format!(
                    "cluster.speculate event count ({speculate_events}) != \
                     cluster.tasks.speculative ({speculative})"
                ));
            }
        }
        if let Some(h) = self.histograms.get("svm.smo.iterations_per_solve") {
            let solves = c("svm.smo.solves");
            if solves > 0 && h.count != solves {
                violations.push(format!(
                    "svm.smo.iterations_per_solve count ({}) != svm.smo.solves ({solves})",
                    h.count
                ));
            }
        }
        // Work-stealing pool accounting (DESIGN.md §11): a task executes
        // exactly once, so at most every executed task was stolen. Serial
        // traces carry no pool.* counters and skip the check.
        if self.counters.contains_key("pool.tasks.run") {
            let tasks = c("pool.tasks.run");
            let steals = c("pool.steals");
            if steals > tasks {
                violations.push(format!("pool.steals ({steals}) > pool.tasks.run ({tasks})"));
            }
        }
        violations.extend(self.check_causality());
        violations
    }

    /// Cross-thread causality invariants over the `ctx_*` attributes the
    /// collector stamps from the installed [`crate::TraceCtx`]:
    ///
    /// 1. every record carrying a causal context links to a live parent
    ///    dispatch — a `cluster.dispatch` span with the same
    ///    `(task, attempt)`;
    /// 2. a fenced attempt is silent after the fence — no record with a
    ///    `cluster.fence` event's `(task, attempt)` context starts after
    ///    the fence fires.
    ///
    /// Traces with no causal contexts (serial pipeline runs) pass
    /// trivially. Folded into [`TraceReport::check_consistency`].
    pub fn check_causality(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let dispatches: std::collections::BTreeSet<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| !s.is_event() && s.name == "cluster.dispatch")
            .filter_map(|s| Some((attr_u64(s, "task")?, attr_u64(s, "attempt")?)))
            .collect();
        let mut orphaned: std::collections::BTreeSet<(u64, u64)> =
            std::collections::BTreeSet::new();
        for s in &self.spans {
            let Some(pair) = ctx_pair(s) else {
                continue;
            };
            if !dispatches.contains(&pair) && orphaned.insert(pair) {
                violations.push(format!(
                    "record {:?} carries ctx task={} attempt={} with no matching \
                     cluster.dispatch span",
                    s.name, pair.0, pair.1
                ));
            }
        }
        for fence in self.spans.iter().filter(|s| s.is_event() && s.name == "cluster.fence") {
            let Some(task) = attr_u64(fence, "task") else {
                continue;
            };
            let Some(attempt) = attr_u64(fence, "attempt") else {
                continue;
            };
            for s in &self.spans {
                if ctx_pair(s) == Some((task, attempt)) && s.start_ns > fence.start_ns {
                    violations.push(format!(
                        "record {:?} (ctx task={task} attempt={attempt}) starts after its \
                         attempt was fenced",
                        s.name
                    ));
                }
            }
        }
        violations
    }

    /// Derive per-span-family duration histograms, in **microseconds**
    /// (the unit SLO quantile bounds are checked against).
    pub fn span_duration_histograms(&self) -> BTreeMap<String, Histogram> {
        let mut out: BTreeMap<String, Histogram> = BTreeMap::new();
        for s in &self.spans {
            if let Some(dur) = s.dur_ns {
                // cast is exact here: ns tally scaled to µs for bucketing
                out.entry(s.name.clone()).or_default().record(dur as f64 / 1e3);
            }
        }
        out
    }

    /// Render the `fcma top` per-worker utilization table from the
    /// `cluster.dispatch` spans: tasks run, busy time, utilization
    /// against the run wall, an ASCII busy timeline, and a straggler
    /// flag on any worker whose longest dispatch ran more than twice the
    /// run-wide mean.
    pub fn top_table(&self) -> String {
        const TIMELINE: usize = 40;
        let dispatches: Vec<&SpanRecord> =
            self.spans.iter().filter(|s| !s.is_event() && s.name == "cluster.dispatch").collect();
        if dispatches.is_empty() {
            return "no cluster.dispatch spans in trace (not a cluster run?)\n".to_string();
        }
        let t0 = dispatches.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let t1 = dispatches
            .iter()
            .map(|s| s.start_ns.saturating_add(s.dur_ns.unwrap_or(0)))
            .max()
            .unwrap_or(0);
        let wall = t1.saturating_sub(t0).max(1);
        let total_busy: u64 = dispatches.iter().filter_map(|s| s.dur_ns).sum();
        // cast is exact here: duration tallies for a display threshold
        let mean_dur = total_busy as f64 / dispatches.len() as f64;
        let mut workers: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &dispatches {
            workers.entry(attr_u64(s, "worker").unwrap_or(u64::MAX)).or_default().push(s);
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} workers, {} dispatches, wall {}",
            workers.len(),
            dispatches.len(),
            fmt_ns(wall)
        );
        let _ = writeln!(
            out,
            "{:<6} {:>5} {:>10} {:>6}  {:<TIMELINE$}  flags",
            "worker", "tasks", "busy", "util", "timeline"
        );
        let _ = writeln!(out, "{}", "-".repeat(19 + 8 + TIMELINE + 8));
        for (wid, spans) in &workers {
            let busy: u64 = spans.iter().filter_map(|s| s.dur_ns).sum();
            let mut lane = [false; TIMELINE];
            let cols = u64::try_from(TIMELINE).unwrap_or(u64::MAX);
            for s in spans {
                let end = s.start_ns.saturating_add(s.dur_ns.unwrap_or(0));
                let cell_of = |t: u64| {
                    usize::try_from(t.saturating_sub(t0) * cols / wall)
                        .unwrap_or(TIMELINE - 1)
                        .min(TIMELINE - 1)
                };
                for cell in lane.iter_mut().take(cell_of(end) + 1).skip(cell_of(s.start_ns)) {
                    *cell = true;
                }
            }
            let timeline: String = lane.iter().map(|&b| if b { '#' } else { '.' }).collect();
            let mut flags = Vec::new();
            if let Some(worst) = spans
                .iter()
                .filter(|s| {
                    // cast is exact here: duration tally vs display threshold
                    s.dur_ns.unwrap_or(0) as f64 > 2.0 * mean_dur
                })
                .max_by_key(|s| s.dur_ns.unwrap_or(0))
            {
                flags.push(format!("straggler:task={}", attr_u64(worst, "task").unwrap_or(0)));
            }
            for s in spans {
                if s.attr("outcome")
                    .is_some_and(|o| matches!(o, AttrValue::Str(v) if v == "condemned"))
                {
                    flags.push("condemned".to_string());
                    break;
                }
            }
            let _ = writeln!(
                out,
                "{:<6} {:>5} {:>10} {:>5.1}%  {}  {}",
                wid,
                spans.len(),
                fmt_ns(busy),
                // cast is exact here: ratio of tallies for display only
                busy as f64 / wall as f64 * 100.0,
                timeline,
                flags.join(" ")
            );
        }
        out
    }
}

/// An attribute as `u64`, whatever integer variant it landed in.
fn attr_u64(s: &SpanRecord, key: &str) -> Option<u64> {
    match s.attr(key)? {
        AttrValue::U64(v) => Some(*v),
        AttrValue::I64(v) => u64::try_from(*v).ok(),
        _ => None,
    }
}

/// The `(ctx_task, ctx_attempt)` causal identity of a record, if the
/// collector stamped one.
fn ctx_pair(s: &SpanRecord) -> Option<(u64, u64)> {
    Some((attr_u64(s, "ctx_task")?, attr_u64(s, "ctx_attempt")?))
}

/// Render nanoseconds with an adaptive unit (ns/µs/ms/s).
fn fmt_ns(ns: u64) -> String {
    // cast is exact here: display-only unit scaling
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns_f / 1e6)
    } else {
        format!("{:.3}s", ns_f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start: u64, dur: Option<u64>) -> SpanRecord {
        SpanRecord {
            name: name.to_owned(),
            tid: 0,
            id: start + 1,
            parent: None,
            start_ns: start,
            dur_ns: dur,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn histogram_tracks_moments_and_buckets() {
        let mut h = Histogram::default();
        for v in [1.0, 3.0, 9.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert!((h.sum - 113.0).abs() < 1e-9);
        assert!((h.mean() - 28.25).abs() < 1e-9);
        assert!((h.min - 1.0).abs() < 1e-9);
        assert!((h.max - 100.0).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // 1.0 in [0,2)
        assert_eq!(h.buckets[1], 1); // 3.0 in [2,4)
        assert_eq!(h.buckets[3], 1); // 9.0 in [8,16)
        assert_eq!(h.buckets[6], 1); // 100.0 in [64,128)
    }

    #[test]
    fn aggregates_sort_by_total_time() {
        let report = TraceReport {
            spans: vec![
                span("a.x", 0, Some(100)),
                span("b.y", 10, Some(500)),
                span("a.x", 20, Some(100)),
            ],
            ..TraceReport::default()
        };
        let rows = report.aggregates();
        assert_eq!(rows[0].name, "b.y");
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[1].name, "a.x");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_ns, 200);
        assert_eq!(rows[1].mean_ns, 100);
    }

    #[test]
    fn consistency_flags_unbalanced_dispatches() {
        let mut report = TraceReport::default();
        report.counters.insert("cluster.tasks.dispatched".into(), 5);
        report.counters.insert("cluster.tasks.completed".into(), 3);
        report.counters.insert("cluster.tasks.total".into(), 3);
        // 5 dispatched but only 3 resolved → two violations (dispatch
        // balance and span-count mismatch).
        let violations = report.check_consistency();
        assert!(violations.iter().any(|v| v.contains("dispatched")));
    }

    #[test]
    fn consistency_checks_pool_steal_accounting() {
        let mut report = TraceReport::default();
        report.counters.insert("pool.tasks.run".into(), 10);
        report.counters.insert("pool.steals".into(), 4);
        report.counters.insert("pool.idle.parks".into(), 2);
        assert!(report.check_consistency().is_empty());
        // More steals than executed tasks is impossible — flagged.
        report.counters.insert("pool.steals".into(), 11);
        let violations = report.check_consistency();
        assert!(violations.iter().any(|v| v.contains("pool.steals")));
    }

    #[test]
    fn consistency_passes_balanced_trace() {
        let mut report = TraceReport {
            spans: vec![
                span("cluster.dispatch", 0, Some(10)),
                span("cluster.dispatch", 5, Some(10)),
            ],
            ..TraceReport::default()
        };
        report.counters.insert("cluster.tasks.total".into(), 2);
        report.counters.insert("cluster.tasks.dispatched".into(), 2);
        report.counters.insert("cluster.tasks.completed".into(), 2);
        assert!(report.check_consistency().is_empty());
    }

    #[test]
    fn summary_table_mentions_every_section() {
        let mut report = TraceReport {
            spans: vec![span("stage1.corr", 0, Some(1_500)), span("cluster.condemn", 3, None)],
            ..TraceReport::default()
        };
        report.counters.insert("cluster.tasks.dispatched".into(), 1);
        report.histograms.entry("svm.smo.iterations_per_solve".into()).or_default().record(7.0);
        let table = report.summary_table();
        assert!(table.contains("stage1.corr"));
        assert!(table.contains("cluster.condemn"));
        assert!(table.contains("cluster.tasks.dispatched"));
        assert!(table.contains("svm.smo.iterations_per_solve"));
        assert!(table.contains("share"));
    }
}
