//! Table 8 on real hardware: leave-one-subject-out SVM cross validation
//! with the LibSVM replica, the float-converted "optimized LibSVM", and
//! PhiSVM — plus the working-set-selection ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use fcma_core::{corr_normalized_merged, TaskContext, VoxelTask};
use fcma_fmri::presets;
use fcma_linalg::tall_skinny::TallSkinnyOpts;
use fcma_svm::{loso_cross_validate, KernelMatrix, LibSvmParams, SmoParams, SolverKind, WssMode};
use std::hint::black_box;

/// One voxel's kernel matrix at the full face-scene epoch structure
/// (216 epochs → folds of l = 204) over a scaled brain.
fn fixture() -> (KernelMatrix, Vec<f32>, Vec<usize>) {
    let cfg = presets::face_scene_scaled(512);
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);
    let task = VoxelTask { start: 0, count: 1 };
    let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
    let kernel = KernelMatrix::precompute_raw(ctx.n_epochs(), ctx.n_voxels(), corr.voxel_matrix(0));
    (kernel, ctx.y.as_ref().clone(), ctx.subjects.as_ref().clone())
}

fn bench_solvers(c: &mut Criterion) {
    let (kernel, y, subjects) = fixture();
    let mut g = c.benchmark_group("table8_svm_cv");
    g.sample_size(10);

    g.bench_function("libsvm_replica", |b| {
        b.iter(|| {
            black_box(loso_cross_validate(
                &kernel,
                &y,
                &subjects,
                &SolverKind::LibSvm(LibSvmParams::default()),
            ))
        })
    });
    g.bench_function("optimized_libsvm", |b| {
        b.iter(|| {
            black_box(loso_cross_validate(
                &kernel,
                &y,
                &subjects,
                &SolverKind::OptimizedLibSvm(SmoParams::default()),
            ))
        })
    });
    g.bench_function("phisvm", |b| {
        b.iter(|| {
            black_box(loso_cross_validate(
                &kernel,
                &y,
                &subjects,
                &SolverKind::PhiSvm(SmoParams::default()),
            ))
        })
    });
    g.finish();
}

fn bench_wss_ablation(c: &mut Criterion) {
    let (kernel, y, subjects) = fixture();
    let mut g = c.benchmark_group("wss_ablation");
    g.sample_size(10);
    for (name, mode) in [
        ("first_order", WssMode::FirstOrder),
        ("second_order", WssMode::SecondOrder),
        ("adaptive", WssMode::Adaptive),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(loso_cross_validate(
                    &kernel,
                    &y,
                    &subjects,
                    &SolverKind::PhiSvm(SmoParams { wss: mode, ..Default::default() }),
                ))
            })
        });
    }
    g.finish();
}

fn bench_kernel_precompute(c: &mut Criterion) {
    let cfg = presets::face_scene_scaled(2048);
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);
    let task = VoxelTask { start: 0, count: 1 };
    let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
    let m = ctx.n_epochs();
    let n = ctx.n_voxels();
    let data = corr.voxel_matrix(0);

    let mut g = c.benchmark_group("kernel_precompute");
    g.sample_size(10);
    g.bench_function("panel_syrk (paper)", |b| {
        b.iter(|| black_box(KernelMatrix::precompute_raw(m, n, data)))
    });
    g.bench_function("dot_syrk (baseline)", |b| {
        b.iter(|| black_box(KernelMatrix::precompute_baseline_raw(m, n, data)))
    });
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_wss_ablation, bench_kernel_precompute);
criterion_main!(benches);
