//! Tables 3/4 and Fig. 8 machinery on real hardware: the threaded
//! master–worker framework and the discrete-event scaling simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcma_cluster::{run_cluster, ClusterModel};
use fcma_core::{OptimizedExecutor, TaskContext};
use fcma_fmri::presets;
use std::hint::black_box;
use std::sync::Arc;

fn bench_threaded_cluster(c: &mut Criterion) {
    let mut cfg = presets::tiny();
    cfg.n_voxels = 96;
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);
    let exec: Arc<dyn fcma_core::TaskExecutor> = Arc::new(OptimizedExecutor::default());

    let mut g = c.benchmark_group("threaded_master_worker");
    g.sample_size(10);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(run_cluster(&ctx, Arc::clone(&exec), w, 16, None)))
        });
    }
    g.finish();
}

fn bench_scaling_simulator(c: &mut Criterion) {
    let tasks: Vec<f64> = vec![2.0; 144 * 18]; // face-scene offline shape
    let model = ClusterModel { data_bytes: 0.48e9, ..Default::default() };
    let mut g = c.benchmark_group("discrete_event_simulator");
    for nodes in [8usize, 96] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| black_box(model.simulate(&tasks, n)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_threaded_cluster, bench_scaling_simulator);
criterion_main!(benches);
