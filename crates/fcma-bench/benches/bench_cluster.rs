//! Tables 3/4 and Fig. 8 machinery on real hardware: the threaded
//! master–worker framework, its fault-recovery paths under a seeded
//! chaos plan, and the discrete-event scaling simulator (healthy and
//! degraded).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcma_cluster::{
    run_cluster, run_cluster_with, ChaosExecutor, ClusterConfig, ClusterModel, FaultPlan,
    NodeFailure,
};
use fcma_core::{OptimizedExecutor, TaskContext};
use fcma_fmri::presets;
use std::hint::black_box;
use std::sync::Arc;

fn bench_threaded_cluster(c: &mut Criterion) {
    let mut cfg = presets::tiny();
    cfg.n_voxels = 96;
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);
    let exec: Arc<dyn fcma_core::TaskExecutor> = Arc::new(OptimizedExecutor::default());

    let mut g = c.benchmark_group("threaded_master_worker");
    g.sample_size(10);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(
                    run_cluster(&ctx, Arc::clone(&exec), w, 16, None)
                        .expect("healthy bench run must succeed"),
                )
            })
        });
    }
    g.finish();
}

/// The same threaded sweep with a seeded fault plan injected: measures
/// the cost of panic requeue + re-dispatch relative to the healthy runs
/// above (same workload, same worker counts).
fn bench_chaos_cluster(c: &mut Criterion) {
    let mut cfg = presets::tiny();
    cfg.n_voxels = 96;
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);

    let mut g = c.benchmark_group("threaded_master_worker_chaos");
    g.sample_size(10);
    for workers in [2usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let plan = FaultPlan::seeded(42, 96, 16, 250, 0, 0);
                let exec: Arc<dyn fcma_core::TaskExecutor> =
                    Arc::new(ChaosExecutor::new(Arc::new(OptimizedExecutor::default()), plan));
                let run_cfg = ClusterConfig {
                    n_workers: w,
                    task_size: 16,
                    retry_budget: 4,
                    ..Default::default()
                };
                black_box(
                    run_cluster_with(&ctx, exec, &run_cfg)
                        .expect("chaos bench run must recover within its retry budget"),
                )
            })
        });
    }
    g.finish();
}

fn bench_scaling_simulator(c: &mut Criterion) {
    let tasks: Vec<f64> = vec![2.0; 144 * 18]; // face-scene offline shape
    let model = ClusterModel { data_bytes: 0.48e9, ..Default::default() };
    let mut g = c.benchmark_group("discrete_event_simulator");
    for nodes in [8usize, 96] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| black_box(model.simulate(&tasks, n)))
        });
    }
    g.finish();

    // Degraded mode: a quarter of the nodes die mid-run and their
    // in-flight tasks requeue onto the survivors.
    let mut g = c.benchmark_group("discrete_event_simulator_degraded");
    for nodes in [8usize, 96] {
        let failures: Vec<NodeFailure> =
            (0..nodes / 4).map(|i| NodeFailure { node: i, at_sec: 30.0 }).collect();
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| black_box(model.simulate_degraded(&tasks, n, &failures)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_threaded_cluster, bench_chaos_cluster, bench_scaling_simulator);
criterion_main!(benches);
