//! Table 5/6 (stage 3a) on real hardware: the SVM kernel-matrix SYRK —
//! reference vs generic dot-product (library stand-in) vs the paper's
//! 96-deep panel kernel, sequential and parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcma_linalg::{syrk_dot, syrk_panel, syrk_panel_parallel, syrk_ref};
use fcma_sync::pool::Pool;
use std::hint::black_box;

/// The paper's sample dimension (204 training epochs, face-scene) against
/// a scaled feature width.
const M: usize = 204;
const N: usize = 4096;

fn pseudo(n: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(3);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1 << 24) as f32) - 0.5
        })
        .collect()
}

fn bench_syrk(c: &mut Criterion) {
    let a = pseudo(M * N, 1);
    let mut out = vec![0.0f32; M * M];

    let mut g = c.benchmark_group("stage3_syrk");
    g.sample_size(10);

    g.bench_function("reference", |b| {
        b.iter(|| {
            syrk_ref(M, N, &a, N, &mut out, M);
            black_box(&out);
        })
    });
    g.bench_function("dot_product (library stand-in)", |b| {
        b.iter(|| {
            syrk_dot(M, N, &a, N, &mut out, M);
            black_box(&out);
        })
    });
    g.bench_function("panel_96 (paper)", |b| {
        b.iter(|| {
            syrk_panel(M, N, &a, N, &mut out, M);
            black_box(&out);
        })
    });
    let pool = Pool::from_env();
    g.bench_function("panel_96_parallel", |b| {
        b.iter(|| {
            syrk_panel_parallel(&pool, M, N, &a, N, &mut out, M);
            black_box(&out);
        })
    });
    g.finish();
}

fn bench_syrk_width_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage3_syrk_feature_width");
    g.sample_size(10);
    for n in [1024usize, 4096, 16384] {
        let a = pseudo(M * n, 2);
        let mut out = vec![0.0f32; M * M];
        g.bench_with_input(BenchmarkId::new("panel_96", n), &n, |b, &n| {
            b.iter(|| {
                syrk_panel(M, n, &a, n, &mut out, M);
                black_box(&out);
            })
        });
        g.bench_with_input(BenchmarkId::new("dot_product", n), &n, |b, &n| {
            b.iter(|| {
                syrk_dot(M, n, &a, n, &mut out, M);
                black_box(&out);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_syrk, bench_syrk_width_sweep);
criterion_main!(benches);
