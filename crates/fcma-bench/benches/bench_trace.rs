//! Tracing overhead: the same pipeline task with the collector off
//! (every probe is one relaxed atomic load), with it installed, and the
//! bare probe cost in isolation. The acceptance bar for the trace layer
//! is that `collector_off` is indistinguishable from an uninstrumented
//! build, and that the always-on flight recorder stays within 3% of the
//! recorder-off stage-1 hot loop (`recorder_overhead_pipeline_task`).

use criterion::{criterion_group, criterion_main, Criterion};
use fcma_core::{OptimizedExecutor, TaskContext, TaskExecutor, VoxelTask};
use fcma_fmri::presets;
use fcma_trace::{record, span, Collector, TraceOrigin};
use std::hint::black_box;

fn context() -> TaskContext {
    let mut cfg = presets::face_scene_scaled(256);
    cfg.n_subjects = 4;
    let (dataset, _) = cfg.generate();
    TaskContext::full(&dataset)
}

fn bench_trace(c: &mut Criterion) {
    let ctx = context();
    let task = VoxelTask { start: 0, count: 16 };
    let exec = OptimizedExecutor::default();

    let mut g = c.benchmark_group("trace_overhead_pipeline_task");
    g.sample_size(10);
    g.bench_function("collector_off", |b| b.iter(|| black_box(exec.process(&ctx, task))));
    g.bench_function("collector_on", |b| {
        let collector = Collector::new();
        let _scoped = collector.install_scoped();
        b.iter(|| black_box(exec.process(&ctx, task)));
        let _ = collector.drain(); // bound per-sample record memory
    });
    g.finish();

    // Flight recorder on/off around the same stage-1-dominated pipeline
    // task, with one recorder event per iteration (the cluster's rate is
    // far lower: a handful per dispatch). The 3% acceptance bar from
    // DESIGN.md §11 is judged on this pair.
    let mut g = c.benchmark_group("recorder_overhead_pipeline_task");
    g.sample_size(10);
    g.bench_function("recorder_off", |b| {
        fcma_trace::recorder::set_enabled(false);
        b.iter(|| {
            record!("recorder.dispatch", black_box(1_u64), 1, TraceOrigin::Dispatch, 0);
            black_box(exec.process(&ctx, task))
        });
        fcma_trace::recorder::set_enabled(true);
    });
    g.bench_function("recorder_on", |b| {
        b.iter(|| {
            record!("recorder.dispatch", black_box(1_u64), 1, TraceOrigin::Dispatch, 0);
            black_box(exec.process(&ctx, task))
        });
    });
    g.finish();

    let mut g = c.benchmark_group("trace_probe_cost");
    g.bench_function("disabled_span", |b| {
        b.iter(|| {
            let guard = span!("bench.probe", value = black_box(1_u64));
            black_box(guard.id())
        });
    });
    g.bench_function("enabled_span", |b| {
        let collector = Collector::new();
        let _scoped = collector.install_scoped();
        b.iter(|| {
            let guard = span!("bench.probe", value = black_box(1_u64));
            black_box(guard.id())
        });
        let _ = collector.drain(); // bound per-sample record memory
    });
    g.bench_function("recorder_event", |b| {
        b.iter(|| {
            record!("recorder.dispatch", black_box(7_u64), 1, TraceOrigin::Dispatch, 3);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
