//! Fig. 9 on real hardware: the full three-stage task pipeline, baseline
//! vs optimized executors, normalized per voxel.

use criterion::{criterion_group, criterion_main, Criterion};
use fcma_core::{BaselineExecutor, OptimizedExecutor, TaskContext, TaskExecutor, VoxelTask};
use fcma_fmri::presets;
use std::hint::black_box;

fn context() -> TaskContext {
    let mut cfg = presets::face_scene_scaled(384);
    cfg.n_subjects = 6;
    let (dataset, _) = cfg.generate();
    TaskContext::full(&dataset)
}

fn bench_pipeline(c: &mut Criterion) {
    let ctx = context();
    let task = VoxelTask { start: 0, count: 24 };
    let baseline = BaselineExecutor::default();
    let optimized = OptimizedExecutor::default();

    let mut g = c.benchmark_group("fig9_full_task_pipeline");
    g.sample_size(10);
    g.bench_function("baseline_executor", |b| b.iter(|| black_box(baseline.process(&ctx, task))));
    g.bench_function("optimized_executor", |b| b.iter(|| black_box(optimized.process(&ctx, task))));
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
