//! Table 7 on real hardware: the three stage-2 schedules (baseline
//! 3-pass, separated 2-pass, merged-with-stage-1), plus the Fisher
//! transform primitive itself.

use criterion::{criterion_group, criterion_main, Criterion};
use fcma_core::{
    corr_baseline, corr_normalized_merged, corr_optimized, normalize_baseline, normalize_separated,
    TaskContext, VoxelTask,
};
use fcma_fmri::presets;
use fcma_linalg::tall_skinny::TallSkinnyOpts;
use fcma_linalg::{fisher_z, fisher_z_slice};
use std::hint::black_box;

fn context() -> TaskContext {
    let cfg = presets::face_scene_scaled(1024);
    let (dataset, _) = cfg.generate();
    TaskContext::full(&dataset)
}

fn bench_fisher(c: &mut Criterion) {
    let mut data: Vec<f32> = (0..65536).map(|i| ((i as f32 * 0.37).sin()) * 0.98).collect();
    let mut g = c.benchmark_group("fisher_transform");
    g.bench_function("fast_ln_slice_64k", |b| {
        b.iter(|| {
            fisher_z_slice(&mut data);
            // keep values in range so repeated application stays finite
            for v in data.iter_mut() {
                *v = (*v * 0.3).clamp(-0.98, 0.98);
            }
            black_box(&data);
        })
    });
    g.bench_function("libm_atanh_slice_64k", |b| {
        b.iter(|| {
            for v in data.iter_mut() {
                *v = v.clamp(-0.98, 0.98).atanh();
                *v = (*v * 0.3).clamp(-0.98, 0.98);
            }
            black_box(&data);
        })
    });
    // Single-value latency comparison.
    g.bench_function("fisher_z_scalar", |b| b.iter(|| black_box(fisher_z(black_box(0.42)))));
    g.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let ctx = context();
    let task = VoxelTask { start: 0, count: 32 };
    let opts = TallSkinnyOpts { tile_cols: 2048 };

    let mut g = c.benchmark_group("stage2_schedules");
    g.sample_size(10);
    g.bench_function("baseline_3pass (incl stage1 baseline)", |b| {
        b.iter(|| {
            let mut corr = corr_baseline(&ctx, task);
            normalize_baseline(&mut corr, &ctx);
            black_box(&corr);
        })
    });
    g.bench_function("separated_2pass (incl stage1 opt)", |b| {
        b.iter(|| {
            let mut corr = corr_optimized(&ctx, task, opts);
            normalize_separated(&mut corr, &ctx);
            black_box(&corr);
        })
    });
    g.bench_function("merged (stage1+2 fused)", |b| {
        b.iter(|| {
            black_box(corr_normalized_merged(&ctx, task, opts));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fisher, bench_schedules);
criterion_main!(benches);
