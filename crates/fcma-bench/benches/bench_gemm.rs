//! Table 5/6 (stage 1) on real hardware: the tall-skinny correlation
//! multiply — reference vs generic blocked (MKL stand-in) vs the paper's
//! shape-specialized kernel, plus the strip-width ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcma_linalg::tall_skinny::{corr_tall_skinny, EpochPair, TallSkinnyOpts};
use fcma_linalg::{gemm_blocked, gemm_ref, Mat};
use std::hint::black_box;

/// Scaled stage-1 shape: 64-voxel task, 2,048 brain voxels, 24 epochs of
/// 12 time points (full shape has 34,470 × 216).
const V: usize = 64;
const N: usize = 2048;
const M: usize = 24;
const K: usize = 12;

fn pseudo_mat(rows: usize, cols: usize, seed: u32) -> Mat {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(7);
    Mat::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        ((state >> 8) as f32 / (1 << 24) as f32) - 0.5
    })
}

fn epochs() -> (Vec<Mat>, Vec<Mat>) {
    let assigned: Vec<Mat> = (0..M).map(|e| pseudo_mat(V, K, 10 + e as u32)).collect();
    let brain: Vec<Mat> = (0..M).map(|e| pseudo_mat(K, N, 90 + e as u32)).collect();
    (assigned, brain)
}

fn bench_stage1(c: &mut Criterion) {
    let (assigned, brain) = epochs();
    let pairs: Vec<EpochPair> =
        assigned.iter().zip(&brain).map(|(a, b)| EpochPair { assigned: a, brain: b }).collect();
    let mut out = vec![0.0f32; V * M * N];

    let mut g = c.benchmark_group("stage1_corr");
    g.sample_size(20);

    g.bench_function("reference_triple_loop", |bch| {
        bch.iter(|| {
            for (e, p) in pairs.iter().enumerate() {
                gemm_ref(
                    V,
                    N,
                    K,
                    p.assigned.as_slice(),
                    K,
                    p.brain.as_slice(),
                    N,
                    &mut out[e * N..],
                    M * N,
                );
            }
            black_box(&out);
        })
    });

    g.bench_function("generic_blocked_per_epoch (MKL stand-in)", |bch| {
        bch.iter(|| {
            for (e, p) in pairs.iter().enumerate() {
                gemm_blocked(
                    V,
                    N,
                    K,
                    p.assigned.as_slice(),
                    K,
                    p.brain.as_slice(),
                    N,
                    &mut out[e * N..],
                    M * N,
                );
            }
            black_box(&out);
        })
    });

    g.bench_function("tall_skinny_optimized", |bch| {
        bch.iter(|| {
            corr_tall_skinny(&pairs, &mut out, TallSkinnyOpts::default());
            black_box(&out);
        })
    });
    g.finish();
}

fn bench_strip_width(c: &mut Criterion) {
    let (assigned, brain) = epochs();
    let pairs: Vec<EpochPair> =
        assigned.iter().zip(&brain).map(|(a, b)| EpochPair { assigned: a, brain: b }).collect();
    let mut out = vec![0.0f32; V * M * N];

    let mut g = c.benchmark_group("stage1_strip_width_ablation");
    g.sample_size(20);
    for tile in [64usize, 128, 256, 512, 1024, 2048] {
        g.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |bch, &tile| {
            bch.iter(|| {
                corr_tall_skinny(&pairs, &mut out, TallSkinnyOpts { tile_cols: tile });
                black_box(&out);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stage1, bench_strip_width);
criterion_main!(benches);
