//! Plain-text table rendering for the reproduction harness.

/// Render an aligned table with a title, header row, and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch in table '{title}'");
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (c, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", cell, w = widths[c]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(std::string::ToString::to_string).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
    println!("{}", "-".repeat(total.min(100)));
    for row in rows {
        line(row);
    }
}

/// Format a float with engineering-style significance.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e9 {
        format!("{:.2}B", v / 1e9)
    } else if v.abs() >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v.abs() >= 1e4 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a millisecond value.
pub fn fmt_ms(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1} s", v / 1e3)
    } else {
        format!("{v:.0} ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(3.456), "3.46");
        assert_eq!(fmt(34.56), "34.6");
        assert_eq!(fmt(34_858_368_500.0), "34.86B");
        assert_eq!(fmt(121_800_000.0), "121.8M");
    }

    #[test]
    fn fmt_ms_switches_units() {
        assert_eq!(fmt_ms(390.0), "390 ms");
        assert_eq!(fmt_ms(54_506_000.0), "54506.0 s");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn print_table_checks_arity() {
        print_table("bad", &["a"], &[vec!["1".into(), "2".into()]]);
    }
}
