//! # fcma-bench — reproduction harness internals
//!
//! Shared machinery for `fcma-repro` (one subcommand per table/figure of
//! the paper) and the criterion benches:
//!
//! * [`workloads`] — the two datasets' full-scale shapes and scaled
//!   configs;
//! * [`autotune`] — seeded deterministic grid search over the kernel
//!   shape knobs (DESIGN.md §15);
//! * [`measure`] — real host measurements (SMO iterations per solver,
//!   kernel wall times);
//! * [`model`] — composite pipeline models assembling `fcma-sim` counters
//!   into task- and cluster-level times;
//! * [`report`] — plain-text table rendering.

pub mod autotune;
pub mod measure;
pub mod model;
pub mod report;
pub mod workloads;

pub use autotune::{autotune, TuneOutcome, TunedShapes};
pub use measure::{
    measure_stage12, measure_stage12_parallel, measure_svm_solvers, measure_syrk,
    measure_syrk_parallel, ParallelStageTimes, SvmMeasurement,
};
pub use model::{
    baseline_task, degraded_offline_table, offline_task_list, online_task_list, optimized_task,
    per_voxel_speedup, StageTimes,
};
pub use workloads::{DatasetKind, OPT_TASK_VOXELS};
