//! `fcma-repro` — regenerate every table and figure of the SC'15 FCMA
//! paper.
//!
//! ```sh
//! fcma-repro all                  # everything
//! fcma-repro table5               # one experiment
//! fcma-repro e2e --scaled-voxels 512
//! ```
//!
//! Modeled numbers (Phi/Xeon) use the paper's *full-scale* workload
//! shapes through the validated analytic counter models; rows labeled
//! "(host, scaled)" are real wall-clock measurements of the actual Rust
//! kernels on this machine at `--scaled-voxels` brain voxels. Measured
//! SMO iteration counts always come from running the real solvers.

use fcma_bench::measure::{measure_stage12, measure_svm_solvers, measure_syrk, time_ms};
use fcma_bench::model::{
    baseline_task, offline_task_list, online_task_list, optimized_task, per_voxel_speedup,
};
use fcma_bench::report::{fmt, fmt_ms, print_table};
use fcma_bench::workloads::DatasetKind;
use fcma_bench::SvmMeasurement;
use fcma_cluster::ClusterModel;
use fcma_core::{
    corr_normalized_merged, corr_optimized, offline_analysis, recovery_rate, AnalysisConfig,
    OptimizedExecutor, TaskContext, VoxelTask,
};
use fcma_linalg::tall_skinny::TallSkinnyOpts;
use fcma_sim::analytic::{
    corr_mkl, corr_optimized as corr_opt_model, norm_baseline, norm_merged, norm_separated, svm_cv,
    syrk_mkl, syrk_optimized, SvmImpl,
};
use fcma_sim::{phi_5110p, xeon_e5_2670, KernelCounters, TimeModel};
use fcma_svm::{loso_cross_validate, KernelMatrix, LibSvmParams, SmoParams, SolverKind, WssMode};

/// Command-line options shared by all subcommands.
#[derive(Debug, Clone)]
struct Opts {
    scaled_voxels: usize,
    sample_voxels: usize,
    reps: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts { scaled_voxels: 512, sample_voxels: 4, reps: 3 }
    }
}

/// Lazily-computed measured SMO iterations (expensive; shared by several
/// experiments).
struct Measured {
    opts: Opts,
    face: Option<[SvmMeasurement; 3]>,
    attention: Option<[SvmMeasurement; 3]>,
}

impl Measured {
    fn new(opts: Opts) -> Self {
        Measured { opts, face: None, attention: None }
    }

    fn get(&mut self, kind: DatasetKind) -> [SvmMeasurement; 3] {
        let slot = match kind {
            DatasetKind::FaceScene => &mut self.face,
            DatasetKind::Attention => &mut self.attention,
        };
        if slot.is_none() {
            eprintln!(
                "[measuring SMO iterations on {} ({} voxels scaled, {} sampled)...]",
                kind.name(),
                self.opts.scaled_voxels,
                self.opts.sample_voxels
            );
            *slot =
                Some(measure_svm_solvers(kind, self.opts.scaled_voxels, self.opts.sample_voxels));
        }
        slot.unwrap()
    }

    fn libsvm_iters(&mut self, kind: DatasetKind) -> u64 {
        self.get(kind)[0].iters_per_voxel as u64
    }

    fn phisvm_iters(&mut self, kind: DatasetKind) -> u64 {
        self.get(kind)[2].iters_per_voxel as u64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmds: Vec<String> = Vec::new();
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scaled-voxels" => {
                opts.scaled_voxels =
                    it.next().and_then(|v| v.parse().ok()).expect("--scaled-voxels N");
            }
            "--sample-voxels" => {
                opts.sample_voxels =
                    it.next().and_then(|v| v.parse().ok()).expect("--sample-voxels N");
            }
            "--reps" => opts.reps = it.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--help" | "-h" => {
                usage();
                return;
            }
            c => cmds.push(c.to_string()),
        }
    }
    if cmds.is_empty() {
        usage();
        return;
    }
    let mut measured = Measured::new(opts.clone());
    for cmd in &cmds {
        run(cmd, &opts, &mut measured);
    }
}

fn usage() {
    println!(
        "fcma-repro — regenerate the SC'15 FCMA paper's tables and figures\n\n\
         usage: fcma-repro <cmd>... [--scaled-voxels N] [--sample-voxels K] [--reps R]\n\n\
         commands:\n\
         \u{20}  table1   baseline instrumentation on the Phi (time/refs/misses/VI)\n\
         \u{20}  table2   dataset descriptions\n\
         \u{20}  table3   offline analysis elapsed time vs #coprocessors\n\
         \u{20}  table4   online voxel-selection time vs #coprocessors\n\
         \u{20}  table5   matmul routine times and GFLOPS (ours vs MKL)\n\
         \u{20}  table6   matmul memory refs / L2 misses / vector intensity\n\
         \u{20}  table7   merged vs separated stage 1+2\n\
         \u{20}  table8   SVM cross validation (LibSVM / optimized / PhiSVM)\n\
         \u{20}  fig8     cluster speedup curves\n\
         \u{20}  fig9     optimized vs baseline per-voxel speedup (Phi)\n\
         \u{20}  fig10    optimized vs baseline per-voxel speedup (Xeon)\n\
         \u{20}  fig11    processor vs coprocessor comparison\n\
         \u{20}  e2e      end-to-end scientific validation (planted-network recovery)\n\
         \u{20}  ablate-block   tall-skinny strip-width sweep (host)\n\
         \u{20}  ablate-wss     working-set-selection heuristic ablation\n\
         \u{20}  ablate-kernel  LibSVM row-cache size ablation\n\u{20}  ablate-panel   SYRK panel-depth sweep (host)\n\
         \u{20}  all      everything above"
    );
}

fn run(cmd: &str, opts: &Opts, measured: &mut Measured) {
    match cmd {
        "table1" => table1(measured),
        "table2" => table2(),
        "table3" => table34(measured, false),
        "table4" => table34(measured, true),
        "table5" => table5(opts),
        "table6" => table6(),
        "table7" => table7(opts),
        "table8" => table8(measured),
        "fig8" => fig8(measured),
        "fig9" => fig9_10(measured, false),
        "fig10" => fig9_10(measured, true),
        "fig11" => fig11(measured),
        "e2e" => e2e(opts),
        "ablate-block" => ablate_block(opts),
        "ablate-wss" => ablate_wss(opts),
        "ablate-kernel" => ablate_kernel(opts),
        "ablate-panel" => ablate_panel(opts),
        "all" => {
            for c in [
                "table2",
                "table1",
                "table5",
                "table6",
                "table7",
                "table8",
                "fig9",
                "fig10",
                "fig11",
                "table3",
                "table4",
                "fig8",
                "e2e",
                "ablate-block",
                "ablate-wss",
                "ablate-kernel",
                "ablate-panel",
            ] {
                run(c, opts, measured);
            }
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            usage();
            std::process::exit(2);
        }
    }
}

fn vi(c: &KernelCounters) -> String {
    format!("{:.1}", c.vector_intensity())
}

// ------------------------------------------------------------------
// Table 2 — datasets
// ------------------------------------------------------------------

fn table2() {
    let rows: Vec<Vec<String>> = DatasetKind::both()
        .iter()
        .map(|k| {
            let (v, s, e, l) = k.table2();
            vec![k.name().into(), v.to_string(), s.to_string(), e.to_string(), l.to_string()]
        })
        .collect();
    print_table(
        "Table 2: datasets (synthetic stand-ins with identical shapes)",
        &["dataset", "voxels", "subjects", "epochs", "epoch length"],
        &rows,
    );
}

// ------------------------------------------------------------------
// Table 1 — baseline instrumentation
// ------------------------------------------------------------------

fn table1(measured: &mut Measured) {
    let m = phi_5110p();
    let tm = TimeModel::default();
    let kind = DatasetKind::FaceScene;
    let v = kind.baseline_task_voxels();

    let matmul = corr_mkl(&kind.corr_shape(v), &m) + syrk_mkl(&kind.syrk_shape(v), &m);
    let norm = norm_baseline(&kind.norm_shape(v), &m);
    let iters = measured.libsvm_iters(kind);
    let libsvm_all = svm_cv(SvmImpl::LibSvm, &kind.svm_shape(v, iters), &m);
    let libsvm_pv = svm_cv(SvmImpl::LibSvm, &kind.svm_shape(1, iters), &m);
    let libsvm_ms = tm.svm_stage_ms(&libsvm_pv, v as usize, &m);

    let rows = vec![
        vec![
            "Matrix multiplication".into(),
            fmt_ms(tm.kernel_ms(&matmul, &m)),
            "1830 ms".into(),
            fmt(matmul.mem_refs as f64),
            "34.9B".into(),
            fmt(matmul.l2_misses as f64),
            "709M".into(),
            vi(&matmul),
            "3.6".into(),
        ],
        vec![
            "Normalization".into(),
            fmt_ms(tm.kernel_ms(&norm, &m)),
            "766 ms".into(),
            fmt(norm.mem_refs as f64),
            "6.2B".into(),
            fmt(norm.l2_misses as f64),
            "179M".into(),
            vi(&norm),
            "8.5".into(),
        ],
        vec![
            "LibSVM".into(),
            fmt_ms(libsvm_ms),
            "3600 ms".into(),
            fmt(libsvm_all.mem_refs as f64),
            "23.0B".into(),
            fmt(libsvm_all.l2_misses as f64),
            "7M".into(),
            vi(&libsvm_all),
            "1.9".into(),
        ],
    ];
    print_table(
        "Table 1: baseline instrumentation, face-scene 120-voxel task on Phi 5110P",
        &[
            "stage",
            "time",
            "(paper)",
            "#mem refs",
            "(paper)",
            "L2 miss",
            "(paper)",
            "VI",
            "(paper)",
        ],
        &rows,
    );
    println!("(LibSVM iterations measured from the real replica: {iters} per voxel)");
}

// ------------------------------------------------------------------
// Tables 3 & 4 + Fig 8 — cluster scaling
// ------------------------------------------------------------------

const NODE_COUNTS: [usize; 6] = [1, 8, 16, 32, 64, 96];

fn table34(measured: &mut Measured, online: bool) {
    let m = phi_5110p();
    let paper: [(&str, [f64; 6]); 2] = if online {
        // Table 4 (the paper prints only endpoints for some columns; the
        // 1-node and 96-node anchors are the quoted values).
        [
            ("face-scene", [12.00, 3.20, 2.74, 2.50, 2.27, 2.21]),
            ("attention", [16.50, 4.10, 3.43, 3.10, 2.80, 2.51]),
        ]
    } else {
        [
            ("face-scene", [5101.0, 694.0, 385.0, 242.0, 124.0, 85.0]),
            ("attention", [54506.0, 6813.0, 3620.0, 2172.0, 1099.0, 741.0]),
        ]
    };
    let mut rows = Vec::new();
    for (kind, (pname, pvals)) in DatasetKind::both().iter().zip(paper.iter()) {
        let iters = measured.phisvm_iters(*kind);
        let tasks = if online {
            online_task_list(*kind, &m, iters)
        } else {
            offline_task_list(*kind, &m, iters)
        };
        // Online: the scanner already streams data to every node (Fig. 1),
        // so there is no broadcast; a ~2 s serial tail (collection + final
        // classifier training) is paid once. Offline: the master unicasts
        // the full dataset to each node.
        let model = if online {
            ClusterModel { data_bytes: 0.0, serial_sec: 2.0, ..Default::default() }
        } else {
            ClusterModel { data_bytes: kind.data_bytes(), ..Default::default() }
        };
        let mut ours = vec![format!("{pname} (ours)")];
        for &n in &NODE_COUNTS {
            ours.push(format!("{:.2}", model.simulate(&tasks, n)));
        }
        rows.push(ours);
        let mut prow = vec![format!("{pname} (paper)")];
        prow.extend(pvals.iter().map(|v| format!("{v}")));
        rows.push(prow);
    }
    let title = if online {
        "Table 4: online voxel-selection elapsed time (s) vs #coprocessors"
    } else {
        "Table 3: offline analysis elapsed time (s) vs #coprocessors"
    };
    print_table(title, &["dataset", "1", "8", "16", "32", "64", "96"], &rows);
}

fn fig8(measured: &mut Measured) {
    let m = phi_5110p();
    let mut rows = Vec::new();
    let paper96 = [59.8, 73.5];
    for (i, kind) in DatasetKind::both().iter().enumerate() {
        let iters = measured.phisvm_iters(*kind);
        let tasks = offline_task_list(*kind, &m, iters);
        let model = ClusterModel { data_bytes: kind.data_bytes(), ..Default::default() };
        let sp = model.speedups(&tasks, &NODE_COUNTS);
        let mut row = vec![kind.name().to_string()];
        for (_, s) in &sp {
            row.push(format!("{s:.1}"));
        }
        row.push(format!("{}x", paper96[i]));
        rows.push(row);
    }
    print_table(
        "Fig. 8: speedup vs #coprocessors (offline analysis)",
        &["dataset", "1", "8", "16", "32", "64", "96", "paper@96"],
        &rows,
    );
}

// ------------------------------------------------------------------
// Table 5/6 — matmul kernels
// ------------------------------------------------------------------

fn table5(opts: &Opts) {
    let m = phi_5110p();
    let tm = TimeModel::default();
    let kind = DatasetKind::FaceScene;
    let corr_o = corr_opt_model(&kind.corr_shape(120), &m);
    let syrk_o = syrk_optimized(&kind.syrk_shape(120), &m);
    let corr_m = corr_mkl(&kind.corr_shape(120), &m);
    let syrk_m = syrk_mkl(&kind.syrk_shape(120), &m);
    let rows = vec![
        row5("Our blocking", "correlation", &corr_o, &tm, &m, "170 ms / 126"),
        row5("Our blocking", "SVM kernel (syrk)", &syrk_o, &tm, &m, "400 ms / 430"),
        row5("MKL (model)", "correlation", &corr_m, &tm, &m, "230 ms / 93"),
        row5("MKL (model)", "SVM kernel (syrk)", &syrk_m, &tm, &m, "1600 ms / 108"),
    ];
    print_table(
        "Table 5: matrix multiplication routines, face-scene task on Phi 5110P",
        &["impl", "function", "time", "GFLOPS", "paper (time/GF)"],
        &rows,
    );

    // Host ground truth at scaled size: the same relative ordering must
    // hold in real wall-clock on this machine.
    let st = measure_stage12(kind, opts.scaled_voxels, 64, opts.reps);
    let (dot_ms, panel_ms) = measure_syrk(kind, opts.scaled_voxels, opts.reps);
    print_table(
        &format!(
            "Table 5 (host, scaled to {} brain voxels): real wall-clock of our Rust kernels",
            opts.scaled_voxels
        ),
        &["comparison", "generic", "optimized", "speedup"],
        &[
            vec![
                "stage-1 corr (64-voxel task)".into(),
                fmt_ms(st.corr_baseline_ms),
                fmt_ms(st.corr_optimized_ms),
                format!("{:.2}x", st.corr_baseline_ms / st.corr_optimized_ms),
            ],
            vec![
                "syrk (per voxel)".into(),
                fmt_ms(dot_ms),
                fmt_ms(panel_ms),
                format!("{:.2}x", dot_ms / panel_ms),
            ],
        ],
    );
}

fn row5(
    who: &str,
    what: &str,
    c: &KernelCounters,
    tm: &TimeModel,
    m: &fcma_sim::MachineConfig,
    paper: &str,
) -> Vec<String> {
    vec![
        who.into(),
        what.into(),
        fmt_ms(tm.kernel_ms(c, m)),
        format!("{:.0}", tm.gflops(c, m)),
        paper.into(),
    ]
}

fn table6() {
    let m = phi_5110p();
    let kind = DatasetKind::FaceScene;
    let ours =
        corr_opt_model(&kind.corr_shape(120), &m) + syrk_optimized(&kind.syrk_shape(120), &m);
    let mkl = corr_mkl(&kind.corr_shape(120), &m) + syrk_mkl(&kind.syrk_shape(120), &m);
    print_table(
        "Table 6: matmul memory refs / L2 misses / vector intensity (combined stages)",
        &["impl", "#mem refs", "(paper)", "L2 miss", "(paper)", "VI", "(paper)"],
        &[
            vec![
                "Our blocking".into(),
                fmt(ours.mem_refs as f64),
                "9.97B".into(),
                fmt(ours.l2_misses as f64),
                "121.8M".into(),
                vi(&ours),
                "16".into(),
            ],
            vec![
                "MKL (model)".into(),
                fmt(mkl.mem_refs as f64),
                "34.86B".into(),
                fmt(mkl.l2_misses as f64),
                "708.9M".into(),
                vi(&mkl),
                "3.6".into(),
            ],
        ],
    );
}

// ------------------------------------------------------------------
// Table 7 — merged vs separated
// ------------------------------------------------------------------

fn table7(opts: &Opts) {
    let m = phi_5110p();
    let tm = TimeModel::default();
    let kind = DatasetKind::FaceScene;
    let corr = corr_opt_model(&kind.corr_shape(120), &m);
    let merged = corr + norm_merged(&kind.norm_shape(120), &m);
    let separated = corr + norm_separated(&kind.norm_shape(120), &m);
    print_table(
        "Table 7: retaining L2 contents across stages 1+2 (merged vs separated)",
        &["method", "time", "(paper)", "#mem refs", "(paper)", "L2 miss", "(paper)"],
        &[
            vec![
                "merged".into(),
                fmt_ms(tm.kernel_ms(&merged, &m)),
                "320 ms".into(),
                fmt(merged.mem_refs as f64),
                "1.93B".into(),
                fmt(merged.l2_misses as f64),
                "67.5M".into(),
            ],
            vec![
                "separated".into(),
                fmt_ms(tm.kernel_ms(&separated, &m)),
                "420 ms".into(),
                fmt(separated.mem_refs as f64),
                "4.35B".into(),
                fmt(separated.l2_misses as f64),
                "188.1M".into(),
            ],
        ],
    );
    let st = measure_stage12(kind, opts.scaled_voxels, 64, opts.reps);
    print_table(
        &format!("Table 7 (host, scaled to {}): real wall-clock", opts.scaled_voxels),
        &["method", "time", "vs merged"],
        &[
            vec!["merged".into(), fmt_ms(st.merged_ms), "1.00x".into()],
            vec![
                "separated".into(),
                fmt_ms(st.separated_ms),
                format!("{:.2}x", st.separated_ms / st.merged_ms),
            ],
            vec![
                "baseline 3-pass".into(),
                fmt_ms(st.baseline_norm_ms),
                format!("{:.2}x", st.baseline_norm_ms / st.merged_ms),
            ],
        ],
    );
}

// ------------------------------------------------------------------
// Table 8 — SVM solvers
// ------------------------------------------------------------------

fn table8(measured: &mut Measured) {
    let m = phi_5110p();
    let tm = TimeModel::default();
    let kind = DatasetKind::FaceScene;
    let ms = measured.get(kind);
    let names = ["LibSVM", "Optimized LibSVM", "PhiSVM"];
    let impls = [SvmImpl::LibSvm, SvmImpl::OptimizedLibSvm, SvmImpl::PhiSvm];
    let paper = ["3600 ms / 1.9", "1150 ms / n/a", "390 ms / 9.8"];
    let v = kind.baseline_task_voxels();
    let mut rows = Vec::new();
    for i in 0..3 {
        let pv = svm_cv(impls[i], &kind.svm_shape(1, ms[i].iters_per_voxel as u64), &m);
        let stage_ms = tm.svm_stage_ms(&pv, v as usize, &m);
        let us_per_iter = ms[i].host_ms_per_voxel * 1e3 / ms[i].iters_per_voxel.max(1.0);
        rows.push(vec![
            names[i].into(),
            fmt_ms(stage_ms),
            vi(&pv),
            paper[i].into(),
            format!("{:.0}", ms[i].iters_per_voxel),
            format!("{:.1} ms", ms[i].host_ms_per_voxel),
            format!("{us_per_iter:.2}"),
            format!("{:.2}", ms[i].accuracy),
        ]);
    }
    print_table(
        "Table 8: SVM cross validation, face-scene 120-voxel task",
        &[
            "solver",
            "Phi model time",
            "VI",
            "paper (time/VI)",
            "iters/voxel (meas.)",
            "host ms/voxel (meas.)",
            "host us/iter",
            "CV acc",
        ],
        &rows,
    );
    println!(
        "(host us/iter isolates per-iteration data-layout cost from the solvers'          different convergence paths)"
    );
}

// ------------------------------------------------------------------
// Fig 9/10/11 — optimized vs baseline per-voxel
// ------------------------------------------------------------------

fn fig9_10(measured: &mut Measured, xeon: bool) {
    let machine = if xeon { xeon_e5_2670() } else { phi_5110p() };
    let paper = if xeon { [1.4, 2.5] } else { [5.24, 16.39] };
    let mut rows = Vec::new();
    for (i, kind) in DatasetKind::both().iter().enumerate() {
        let b_iters = measured.libsvm_iters(*kind);
        let p_iters = measured.phisvm_iters(*kind);
        let b = baseline_task(*kind, &machine, b_iters);
        let o = optimized_task(*kind, &machine, p_iters);
        let speedup = per_voxel_speedup(*kind, &machine, b_iters, p_iters);
        rows.push(vec![
            kind.name().into(),
            format!("{:.2} ms ({} vox)", b.per_voxel_ms(), b.voxels),
            format!("{:.2} ms ({} vox)", o.per_voxel_ms(), o.voxels),
            format!("{speedup:.2}x"),
            format!("{}x", paper[i]),
        ]);
    }
    let title = if xeon {
        "Fig. 10: optimized vs baseline per-voxel time on Xeon E5-2670"
    } else {
        "Fig. 9: optimized vs baseline per-voxel time on Phi 5110P"
    };
    print_table(
        title,
        &["dataset", "baseline/voxel", "optimized/voxel", "speedup", "paper"],
        &rows,
    );
}

fn fig11(measured: &mut Measured) {
    let phi = phi_5110p();
    let xeon = xeon_e5_2670();
    let mut rows = Vec::new();
    for kind in DatasetKind::both() {
        let b_iters = measured.libsvm_iters(kind);
        let p_iters = measured.phisvm_iters(kind);
        let base_xeon = baseline_task(kind, &xeon, b_iters).per_voxel_ms();
        let opt_xeon = optimized_task(kind, &xeon, p_iters).per_voxel_ms();
        let base_phi = baseline_task(kind, &phi, b_iters).per_voxel_ms();
        let opt_phi = optimized_task(kind, &phi, p_iters).per_voxel_ms();
        rows.push(vec![
            kind.name().into(),
            "1.00".into(),
            format!("{:.2}", base_xeon / opt_xeon),
            format!("{:.2}", base_xeon / base_phi),
            format!("{:.2}", base_xeon / opt_phi),
        ]);
    }
    print_table(
        "Fig. 11: relative performance (E5-2670 baseline = 1.0; higher is faster)",
        &["dataset", "Xeon base", "Xeon opt", "Phi base", "Phi opt"],
        &rows,
    );
    println!("(Paper's qualitative result: Phi-optimized > Xeon-optimized > both baselines.)");
}

// ------------------------------------------------------------------
// End-to-end scientific validation
// ------------------------------------------------------------------

fn e2e(opts: &Opts) {
    println!(
        "\n== end-to-end validation: planted-network recovery \
         (\"reproduced the results used in [30] and [16]\") =="
    );
    for kind in DatasetKind::both() {
        let mut cfg = kind.scaled_config((opts.scaled_voxels / 2).max(128));
        cfg.n_subjects = cfg.n_subjects.min(6); // keep nested CV brisk
        cfg.epochs_per_subject = cfg.epochs_per_subject.min(12);
        cfg.coupling = 1.5;
        let (dataset, truth) = cfg.generate();
        let exec = OptimizedExecutor::default();
        let acfg = AnalysisConfig { task_size: 64, top_k: truth.informative.len() };
        let t0 = std::time::Instant::now();
        let r = offline_analysis(&dataset, &exec, &acfg);
        let rec = recovery_rate(&r.stable, &truth.informative);
        println!(
            "{:<11} {} voxels, {} subjects: held-out acc {:.3}, stable-ROI recovery {:.0}% ({:.1?})",
            kind.name(),
            dataset.n_voxels(),
            dataset.n_subjects(),
            r.mean_test_accuracy,
            rec * 100.0,
            t0.elapsed()
        );
    }
}

// ------------------------------------------------------------------
// Ablations
// ------------------------------------------------------------------

fn ablate_block(opts: &Opts) {
    let kind = DatasetKind::FaceScene;
    let cfg = kind.scaled_config(opts.scaled_voxels);
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);
    let task = VoxelTask { start: 0, count: 64.min(ctx.n_voxels()) };
    let mut times = Vec::new();
    for tile in [64usize, 128, 256, 512, 1024, 2048] {
        let ms = time_ms(opts.reps, || {
            std::hint::black_box(corr_optimized(&ctx, task, TallSkinnyOpts { tile_cols: tile }));
        });
        times.push((tile, ms));
    }
    let best = times.iter().map(|&(_, ms)| ms).fold(f64::INFINITY, f64::min);
    let rows: Vec<Vec<String>> = times
        .iter()
        .map(|&(tile, ms)| vec![tile.to_string(), fmt_ms(ms), format!("{:.2}x", ms / best)])
        .collect();
    print_table(
        &format!(
            "Ablation: tall-skinny strip width (host, {} brain voxels, 64-voxel task)",
            opts.scaled_voxels
        ),
        &["tile_cols", "time", "vs best"],
        &rows,
    );
}

fn ablate_panel(opts: &Opts) {
    use fcma_linalg::syrk_panel_with;
    let m = 204usize; // face-scene training epochs
    let n = 34_470usize; // full brain width (feasible for SYRK)
    let a: Vec<f32> = (0..m * n)
        .map(|i| ((i as u32).wrapping_mul(2654435761) >> 16) as f32 / 65536.0 - 0.5)
        .collect();
    let mut c = vec![0.0f32; m * m];
    let mut times = Vec::new();
    for panel_k in [16usize, 48, 96, 192, 384, 768] {
        let ms = time_ms(opts.reps, || {
            syrk_panel_with(panel_k, m, n, &a, n, &mut c, m);
            std::hint::black_box(&c);
        });
        times.push((panel_k, ms));
    }
    let best = times.iter().map(|&(_, ms)| ms).fold(f64::INFINITY, f64::min);
    let rows: Vec<Vec<String>> = times
        .iter()
        .map(|&(k, ms)| vec![k.to_string(), fmt_ms(ms), format!("{:.2}x", ms / best)])
        .collect();
    print_table(
        "Ablation: SYRK panel depth (host, full-scale 204x34470; paper uses 96)",
        &["panel_k", "time", "vs best"],
        &rows,
    );
}

fn ablate_wss(opts: &Opts) {
    let kind = DatasetKind::FaceScene;
    let cfg = kind.scaled_config(opts.scaled_voxels.min(256));
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);
    let task = VoxelTask { start: 0, count: opts.sample_voxels.min(ctx.n_voxels()) };
    let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
    let kernels: Vec<KernelMatrix> = (0..task.count)
        .map(|vi| {
            KernelMatrix::precompute_raw(ctx.n_epochs(), ctx.n_voxels(), corr.voxel_matrix(vi))
        })
        .collect();
    let mut rows = Vec::new();
    for (name, mode) in [
        ("first-order", WssMode::FirstOrder),
        ("second-order", WssMode::SecondOrder),
        ("adaptive (PhiSVM)", WssMode::Adaptive),
    ] {
        let params = SmoParams { wss: mode, ..Default::default() };
        let t0 = std::time::Instant::now();
        let mut iters = 0usize;
        let mut acc = 0.0;
        for k in &kernels {
            let r = loso_cross_validate(k, &ctx.y, &ctx.subjects, &SolverKind::PhiSvm(params));
            iters += r.total_iterations;
            acc += r.accuracy;
        }
        rows.push(vec![
            name.into(),
            format!("{}", iters / kernels.len()),
            format!("{:.1} ms", t0.elapsed().as_secs_f64() * 1e3 / kernels.len() as f64),
            format!("{:.2}", acc / kernels.len() as f64),
        ]);
    }
    print_table(
        "Ablation: working-set selection heuristic (per voxel, host)",
        &["heuristic", "iters/voxel", "ms/voxel", "CV acc"],
        &rows,
    );
}

fn ablate_kernel(opts: &Opts) {
    let kind = DatasetKind::FaceScene;
    let cfg = kind.scaled_config(opts.scaled_voxels.min(256));
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);
    let task = VoxelTask { start: 0, count: 2 };
    let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());
    let kernel = KernelMatrix::precompute_raw(ctx.n_epochs(), ctx.n_voxels(), corr.voxel_matrix(0));
    let mut rows = Vec::new();
    for cache_rows in [2usize, 8, 64, 512] {
        let params = LibSvmParams { cache_rows, ..Default::default() };
        let t0 = std::time::Instant::now();
        let r = loso_cross_validate(&kernel, &ctx.y, &ctx.subjects, &SolverKind::LibSvm(params));
        rows.push(vec![
            format!("LibSVM cache={cache_rows}"),
            format!("{:.1} ms", t0.elapsed().as_secs_f64() * 1e3),
            format!("{}", r.total_iterations),
            format!("{:.2}", r.accuracy),
        ]);
    }
    let t0 = std::time::Instant::now();
    let r = loso_cross_validate(
        &kernel,
        &ctx.y,
        &ctx.subjects,
        &SolverKind::PhiSvm(SmoParams::default()),
    );
    rows.push(vec![
        "PhiSVM (dense f32)".into(),
        format!("{:.1} ms", t0.elapsed().as_secs_f64() * 1e3),
        format!("{}", r.total_iterations),
        format!("{:.2}", r.accuracy),
    ]);
    print_table(
        "Ablation: kernel-row caching vs dense precomputed access (one voxel, host)",
        &["configuration", "time", "iters", "CV acc"],
        &rows,
    );
}
