//! `bench-stage1` — quick host benchmark of the stage-1 correlation
//! kernels and the stage-3a SYRK, emitted as deterministic-shape JSON.
//!
//! ```sh
//! bench-stage1 [--scaled-voxels N] [--task-voxels N] [--reps N] > BENCH_stage1.json
//! ```
//!
//! Runs `measure_stage12` (baseline GEMM vs tall-skinny vs merged
//! normalization, on a scaled dataset) and `measure_syrk` (dot vs panel
//! SYRK at the *full-scale* kernel-matrix shape) for both evaluation
//! datasets. The committed `BENCH_stage1.json` records one machine's
//! numbers next to the shapes that produced them; absolute times vary
//! across hosts, so consumers should compare ratios, not milliseconds.

use fcma_bench::measure::{measure_stage12, measure_syrk};
use fcma_bench::workloads::DatasetKind;

struct Opts {
    scaled_voxels: usize,
    task_voxels: usize,
    reps: usize,
}

fn main() {
    let mut opts = Opts { scaled_voxels: 256, task_voxels: 32, reps: 3 };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("bench-stage1: {name} requires a positive integer");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scaled-voxels" => opts.scaled_voxels = num("--scaled-voxels"),
            "--task-voxels" => opts.task_voxels = num("--task-voxels"),
            "--reps" => opts.reps = num("--reps"),
            other => {
                eprintln!("bench-stage1: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"scaled_voxels\": {}, \"task_voxels\": {}, \"reps\": {}}},\n",
        opts.scaled_voxels, opts.task_voxels, opts.reps
    ));
    out.push_str("  \"datasets\": [\n");
    for (di, kind) in DatasetKind::both().iter().enumerate() {
        let (n, subjects, m, _) = kind.table2();
        let syrk = kind.syrk_shape(1);
        eprintln!("bench-stage1: {} stage-1/2 (scaled)...", kind.name());
        let t = measure_stage12(*kind, opts.scaled_voxels, opts.task_voxels, opts.reps);
        eprintln!("bench-stage1: {} SYRK {}x{} (full-scale)...", kind.name(), syrk.m, syrk.n);
        let (dot_ms, panel_ms) = measure_syrk(*kind, opts.scaled_voxels, opts.reps);
        out.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"table2\": {{\"voxels\": {n}, \
             \"subjects\": {subjects}, \"epochs\": {m}}},\n",
            kind.name()
        ));
        out.push_str(&format!(
            "      \"stage12_ms\": {{\"corr_baseline\": {:.3}, \"corr_optimized\": {:.3}, \
             \"separated\": {:.3}, \"merged\": {:.3}, \"baseline_norm\": {:.3}}},\n",
            t.corr_baseline_ms,
            t.corr_optimized_ms,
            t.separated_ms,
            t.merged_ms,
            t.baseline_norm_ms
        ));
        out.push_str(&format!(
            "      \"syrk\": {{\"m\": {}, \"n\": {}, \"dot_ms\": {:.3}, \"panel_ms\": {:.3}}}\n",
            syrk.m, syrk.n, dot_ms, panel_ms
        ));
        out.push_str(if di == 0 { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    print!("{out}");
}
