//! `bench-stage1` — quick host benchmark of the stage-1 correlation
//! kernels and the stage-3a SYRK, emitted as deterministic-shape JSON.
//!
//! ```sh
//! bench-stage1 [--scaled-voxels N] [--task-voxels N] [--reps N] > BENCH_stage1.json
//! ```
//!
//! Runs `measure_stage12` (baseline GEMM vs tall-skinny vs merged
//! normalization, on a scaled dataset) and `measure_syrk` (dot vs panel
//! SYRK at the *full-scale* kernel-matrix shape) for both evaluation
//! datasets, plus the §15 additions: the seeded shape autotuner, the
//! pooled kernels against their serial twins, and the gate thresholds
//! the `bench_gate` tier-1 test holds future changes to. The committed
//! `BENCH_stage1.json` records one machine's numbers next to the shapes
//! that produced them; absolute times vary across hosts, so consumers
//! (including the gate) compare ratios, not milliseconds. The emitted
//! `host.parallelism` field says whether the parallel numbers mean
//! anything: on a 1-core host they are pool overhead, and the speedup
//! gate stays disarmed.

use fcma_bench::autotune::autotune;
use fcma_bench::measure::{measure_stage12, measure_stage12_parallel, measure_syrk};
use fcma_bench::workloads::DatasetKind;

/// Speedup the merged kernel must show at ≥4 worker threads on a host
/// with ≥4 cores (`bench_gate` enforces this only on such hosts).
const MIN_SPEEDUP_4T: f64 = 1.3;
/// Allowed relative worsening of the merged/baseline serial time ratio
/// before `bench_gate` fails.
const MAX_SERIAL_REGRESSION: f64 = 0.25;
/// Worker count for the recorded parallel run.
const BENCH_THREADS: usize = 8;

struct Opts {
    scaled_voxels: usize,
    task_voxels: usize,
    reps: usize,
    seed: u64,
}

fn main() {
    let mut opts = Opts { scaled_voxels: 256, task_voxels: 32, reps: 3, seed: 42 };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("bench-stage1: {name} requires a positive integer");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scaled-voxels" => opts.scaled_voxels = num("--scaled-voxels"),
            "--task-voxels" => opts.task_voxels = num("--task-voxels"),
            "--reps" => opts.reps = num("--reps"),
            "--seed" => opts.seed = num("--seed") as u64,
            other => {
                eprintln!("bench-stage1: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let parallelism = std::thread::available_parallelism().map_or(1, usize::from);

    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"scaled_voxels\": {}, \"task_voxels\": {}, \"reps\": {}, \
         \"seed\": {}}},\n",
        opts.scaled_voxels, opts.task_voxels, opts.reps, opts.seed
    ));
    out.push_str(&format!("  \"host\": {{\"parallelism\": {parallelism}}},\n"));
    out.push_str(&format!(
        "  \"gates\": {{\"min_speedup_4t\": {MIN_SPEEDUP_4T:.2}, \
         \"max_serial_regression\": {MAX_SERIAL_REGRESSION:.2}}},\n"
    ));

    eprintln!("bench-stage1: autotune (seed {})...", opts.seed);
    let tune = autotune(opts.seed, opts.reps);
    out.push_str(&format!(
        "  \"autotune\": {{\"seed\": {}, \"candidates\": {}, \"mc\": {}, \"kc\": {}, \
         \"nc\": {}, \"panel_k\": {}, \"tile_cols\": {}, \"gemm_ms\": {:.3}, \
         \"syrk_ms\": {:.3}, \"merged_ms\": {:.3}}},\n",
        opts.seed,
        tune.candidates,
        tune.shapes.block.mc,
        tune.shapes.block.kc,
        tune.shapes.block.nc,
        tune.shapes.panel_k,
        tune.shapes.tile_cols,
        tune.gemm_ms,
        tune.syrk_ms,
        tune.merged_ms
    ));

    eprintln!("bench-stage1: pooled kernels at {BENCH_THREADS} threads...");
    let par = measure_stage12_parallel(
        DatasetKind::FaceScene,
        opts.scaled_voxels,
        opts.task_voxels,
        opts.reps,
        BENCH_THREADS,
    );
    out.push_str(&format!(
        "  \"parallel\": {{\"threads\": {}, \"merged_serial_ms\": {:.3}, \
         \"merged_parallel_ms\": {:.3}, \"merged_speedup\": {:.3}, \
         \"baseline_serial_ms\": {:.3}, \"baseline_parallel_ms\": {:.3}, \
         \"baseline_speedup\": {:.3}}},\n",
        par.threads,
        par.merged_serial_ms,
        par.merged_parallel_ms,
        par.merged_serial_ms / par.merged_parallel_ms,
        par.baseline_serial_ms,
        par.baseline_parallel_ms,
        par.baseline_serial_ms / par.baseline_parallel_ms
    ));

    out.push_str("  \"datasets\": [\n");
    for (di, kind) in DatasetKind::both().iter().enumerate() {
        let (n, subjects, m, _) = kind.table2();
        let syrk = kind.syrk_shape(1);
        eprintln!("bench-stage1: {} stage-1/2 (scaled)...", kind.name());
        let t = measure_stage12(*kind, opts.scaled_voxels, opts.task_voxels, opts.reps);
        eprintln!("bench-stage1: {} SYRK {}x{} (full-scale)...", kind.name(), syrk.m, syrk.n);
        let (dot_ms, panel_ms) = measure_syrk(*kind, opts.scaled_voxels, opts.reps);
        out.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"table2\": {{\"voxels\": {n}, \
             \"subjects\": {subjects}, \"epochs\": {m}}},\n",
            kind.name()
        ));
        out.push_str(&format!(
            "      \"stage12_ms\": {{\"corr_baseline\": {:.3}, \"corr_optimized\": {:.3}, \
             \"separated\": {:.3}, \"merged\": {:.3}, \"baseline_norm\": {:.3}}},\n",
            t.corr_baseline_ms,
            t.corr_optimized_ms,
            t.separated_ms,
            t.merged_ms,
            t.baseline_norm_ms
        ));
        out.push_str(&format!(
            "      \"syrk\": {{\"m\": {}, \"n\": {}, \"dot_ms\": {:.3}, \"panel_ms\": {:.3}}}\n",
            syrk.m, syrk.n, dot_ms, panel_ms
        ));
        out.push_str(if di == 0 { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    print!("{out}");
}
