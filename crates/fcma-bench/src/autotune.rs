//! Seeded, deterministic autotuner for the kernel shape knobs
//! (DESIGN.md §15).
//!
//! The search is a plain grid walk in a **fixed enumeration order** over
//! a **seeded synthetic workload**: GEMM block sizes `(mc, kc, nc)`,
//! SYRK panel depth `panel_k`, and the merged-pipeline strip width
//! `tile_cols`. A candidate must beat the incumbent by more than 2% of
//! wall time to replace it, so timing jitter between near-equal shapes
//! cannot flip the choice from run to run — on a quiet host the outcome
//! is a deterministic function of the seed and the grid.
//!
//! `bench-stage1` runs this and commits the chosen shapes and timings
//! into `BENCH_stage1.json`, which the `bench_gate` tier-1 test then
//! holds future changes to.

use crate::measure::time_ms;
use fcma_linalg::gemm_blocked::BlockSizes;
use fcma_linalg::tall_skinny::{EpochPair, TallSkinnyOpts};
use fcma_linalg::{corr_tall_skinny, gemm_blocked_with, syrk_panel_with, Mat};

/// GEMM `mc` candidates (rows of `A` per L2 slab).
pub const GRID_MC: [usize; 2] = [32, 64];
/// GEMM `kc` candidates (depth per slab).
pub const GRID_KC: [usize; 2] = [64, 128];
/// GEMM `nc` candidates (columns of `B` per outer slab).
pub const GRID_NC: [usize; 2] = [256, 512];
/// SYRK panel-depth candidates (the paper fixes 96; 48 halves the slab).
pub const GRID_PANEL_K: [usize; 2] = [48, 96];
/// Merged-pipeline strip-width candidates.
pub const GRID_TILE_COLS: [usize; 3] = [512, 1024, 2048];

/// Relative improvement a candidate needs over the incumbent (2%).
const HYSTERESIS: f64 = 0.02;

/// The shapes the search settled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedShapes {
    /// Blocked-GEMM cache blocking.
    pub block: BlockSizes,
    /// SYRK panel depth.
    pub panel_k: usize,
    /// Tall-skinny / merged-pipeline strip width.
    pub tile_cols: usize,
}

/// Chosen shapes plus the winning wall times and the grid size.
#[derive(Debug, Clone, Copy)]
pub struct TuneOutcome {
    /// Winning knob values.
    pub shapes: TunedShapes,
    /// Best blocked-GEMM time on the tuning workload (ms).
    pub gemm_ms: f64,
    /// Best panel-SYRK time on the tuning workload (ms).
    pub syrk_ms: f64,
    /// Best tall-skinny strip time on the tuning workload (ms).
    pub merged_ms: f64,
    /// Total candidates evaluated across the three knob groups.
    pub candidates: usize,
}

/// Deterministic pseudo-data from a splitmix64-style stream.
fn pseudo(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // cast is exact here: 24-bit mantissa fraction for test data
            ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        })
        .collect()
}

/// Keep `candidate` only if it beats the incumbent by the hysteresis
/// margin; earlier candidates win ties by construction.
fn better(incumbent_ms: f64, candidate_ms: f64) -> bool {
    candidate_ms < incumbent_ms * (1.0 - HYSTERESIS)
}

/// Run the grid search. `seed` fixes the workload contents; `reps` is
/// the best-of repetition count per candidate (timing noise damping).
#[must_use]
pub fn autotune(seed: u64, reps: usize) -> TuneOutcome {
    let mut candidates = 0usize;

    // --- GEMM blocking: one stage-1-shaped multiply (tall-skinny-ish
    // but big enough that the blocking matters).
    let (m, n, k) = (64usize, 4096usize, 16usize);
    let a = pseudo(m * k, seed);
    let b = pseudo(k * n, seed ^ 0x9e37_79b9);
    let mut c = vec![0.0f32; m * n];
    let mut best_block = BlockSizes::default();
    let mut gemm_ms = f64::INFINITY;
    for mc in GRID_MC {
        for kc in GRID_KC {
            for nc in GRID_NC {
                let bs = BlockSizes { mc, kc, nc };
                let t = time_ms(reps, || {
                    gemm_blocked_with(bs, m, n, k, &a, k, &b, n, &mut c, n);
                    std::hint::black_box(&c);
                });
                candidates += 1;
                if better(gemm_ms, t) {
                    gemm_ms = t;
                    best_block = bs;
                }
            }
        }
    }

    // --- SYRK panel depth: one kernel-matrix-shaped update.
    let (sm, sn) = (96usize, 4096usize);
    let sa = pseudo(sm * sn, seed ^ 0x51f0_aa11);
    let mut sc = vec![0.0f32; sm * sm];
    let mut best_panel_k = GRID_PANEL_K[0];
    let mut syrk_ms = f64::INFINITY;
    for panel_k in GRID_PANEL_K {
        let t = time_ms(reps, || {
            syrk_panel_with(panel_k, sm, sn, &sa, sn, &mut sc, sm);
            std::hint::black_box(&sc);
        });
        candidates += 1;
        if better(syrk_ms, t) {
            syrk_ms = t;
            best_panel_k = panel_k;
        }
    }

    // --- Strip width: the tall-skinny correlation kernel the merged
    // stage-1+2 path is built on.
    let (v, tn, tk, eps_n) = (32usize, 4096usize, 12usize, 4usize);
    let assigned: Vec<Mat> =
        (0..eps_n).map(|e| Mat::from_vec(v, tk, pseudo(v * tk, seed ^ (e as u64) << 16))).collect();
    let brain: Vec<Mat> = (0..eps_n)
        .map(|e| Mat::from_vec(tk, tn, pseudo(tk * tn, seed ^ (e as u64) << 24)))
        .collect();
    let eps: Vec<EpochPair<'_>> =
        assigned.iter().zip(&brain).map(|(a, b)| EpochPair { assigned: a, brain: b }).collect();
    let mut buf = vec![0.0f32; v * eps_n * tn];
    let mut best_tile_cols = GRID_TILE_COLS[0];
    let mut merged_ms = f64::INFINITY;
    for tile_cols in GRID_TILE_COLS {
        let t = time_ms(reps, || {
            corr_tall_skinny(&eps, &mut buf, TallSkinnyOpts { tile_cols });
            std::hint::black_box(&buf);
        });
        candidates += 1;
        if better(merged_ms, t) {
            merged_ms = t;
            best_tile_cols = tile_cols;
        }
    }

    TuneOutcome {
        shapes: TunedShapes { block: best_block, panel_k: best_panel_k, tile_cols: best_tile_cols },
        gemm_ms,
        syrk_ms,
        merged_ms,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autotune_picks_from_the_grid() {
        let out = autotune(42, 1);
        assert!(GRID_MC.contains(&out.shapes.block.mc));
        assert!(GRID_KC.contains(&out.shapes.block.kc));
        assert!(GRID_NC.contains(&out.shapes.block.nc));
        assert!(GRID_PANEL_K.contains(&out.shapes.panel_k));
        assert!(GRID_TILE_COLS.contains(&out.shapes.tile_cols));
        assert_eq!(
            out.candidates,
            GRID_MC.len() * GRID_KC.len() * GRID_NC.len()
                + GRID_PANEL_K.len()
                + GRID_TILE_COLS.len()
        );
        assert!(out.gemm_ms > 0.0 && out.gemm_ms.is_finite());
        assert!(out.syrk_ms > 0.0 && out.syrk_ms.is_finite());
        assert!(out.merged_ms > 0.0 && out.merged_ms.is_finite());
    }
}
