//! Composite pipeline models: assemble per-stage counters into the
//! task-level and cluster-level times behind Tables 3/4 and Figures
//! 8/9/10/11.

use crate::workloads::{DatasetKind, OPT_TASK_VOXELS};
use fcma_sim::analytic::{
    corr_mkl, corr_optimized, norm_baseline, norm_merged, svm_cv, syrk_mkl, syrk_optimized, SvmImpl,
};
use fcma_sim::{MachineConfig, TimeModel};

/// Per-stage modeled times (ms) for one task on one device.
#[derive(Debug, Clone, Copy)]
pub struct StageTimes {
    /// Voxels in the task.
    pub voxels: u64,
    /// Stage 1 (correlation) ms.
    pub corr_ms: f64,
    /// Stage 2 (normalization) ms.
    pub norm_ms: f64,
    /// Stage 3a (kernel precompute) ms.
    pub syrk_ms: f64,
    /// Stage 3b (SVM cross validation) ms.
    pub svm_ms: f64,
}

impl StageTimes {
    /// Total task time.
    pub fn total_ms(&self) -> f64 {
        self.corr_ms + self.norm_ms + self.syrk_ms + self.svm_ms
    }

    /// Time per voxel — the paper's Fig. 9 normalization ("processing
    /// time per voxel"), which is how the memory-capacity-driven task
    /// sizes of baseline vs. optimized become comparable.
    pub fn per_voxel_ms(&self) -> f64 {
        self.total_ms() / self.voxels as f64
    }
}

/// Model the baseline pipeline's task on `machine` (§3.2): MKL-style
/// GEMM/SYRK, three-pass normalization, LibSVM. `svm_iters` is the
/// measured per-voxel SMO iteration total for the LibSVM replica.
pub fn baseline_task(kind: DatasetKind, machine: &MachineConfig, svm_iters: u64) -> StageTimes {
    let tm = TimeModel::default();
    let v = kind.baseline_task_voxels();
    let corr = corr_mkl(&kind.corr_shape(v), machine);
    let norm = norm_baseline(&kind.norm_shape(v), machine);
    let syrk = syrk_mkl(&kind.syrk_shape(v), machine);
    let svm_all = svm_cv(SvmImpl::LibSvm, &kind.svm_shape(v, svm_iters), machine);
    let svm_per_voxel = svm_cv(SvmImpl::LibSvm, &kind.svm_shape(1, svm_iters), machine);
    let _ = svm_all;
    StageTimes {
        voxels: v,
        corr_ms: tm.kernel_ms(&corr, machine),
        norm_ms: tm.kernel_ms(&norm, machine),
        syrk_ms: tm.kernel_ms(&syrk, machine),
        svm_ms: tm.svm_stage_ms(&svm_per_voxel, v as usize, machine),
    }
}

/// Model the optimized pipeline's task (§4): tall-skinny correlation
/// merged with normalization, panel SYRK, PhiSVM, 240-voxel tasks.
pub fn optimized_task(kind: DatasetKind, machine: &MachineConfig, svm_iters: u64) -> StageTimes {
    let tm = TimeModel::default();
    let v = OPT_TASK_VOXELS;
    let corr = corr_optimized(&kind.corr_shape(v), machine);
    let norm = norm_merged(&kind.norm_shape(v), machine);
    let syrk = syrk_optimized(&kind.syrk_shape(v), machine);
    let svm_per_voxel = svm_cv(SvmImpl::PhiSvm, &kind.svm_shape(1, svm_iters), machine);
    StageTimes {
        voxels: v,
        corr_ms: tm.kernel_ms(&corr, machine),
        norm_ms: tm.kernel_ms(&norm, machine),
        syrk_ms: tm.kernel_ms(&syrk, machine),
        svm_ms: tm.svm_stage_ms(&svm_per_voxel, v as usize, machine),
    }
}

/// Fig. 9 / Fig. 10 headline number: baseline-per-voxel over
/// optimized-per-voxel on the given machine.
pub fn per_voxel_speedup(
    kind: DatasetKind,
    machine: &MachineConfig,
    baseline_iters: u64,
    phisvm_iters: u64,
) -> f64 {
    let b = baseline_task(kind, machine, baseline_iters);
    let o = optimized_task(kind, machine, phisvm_iters);
    b.per_voxel_ms() / o.per_voxel_ms()
}

/// Per-task seconds for a full offline analysis: `folds × ceil(N/240)`
/// optimized tasks (Table 3's workload).
pub fn offline_task_list(
    kind: DatasetKind,
    machine: &MachineConfig,
    phisvm_iters: u64,
) -> Vec<f64> {
    let (n, subjects, _, _) = kind.table2();
    let task = optimized_task(kind, machine, phisvm_iters);
    let n_tasks = n.div_ceil(OPT_TASK_VOXELS) as usize;
    let folds = subjects as usize;
    vec![task.total_ms() * 1e-3; n_tasks * folds]
}

/// Per-task seconds for the online analysis (Table 4): one sweep over the
/// brain with single-session shapes.
pub fn online_task_list(kind: DatasetKind, machine: &MachineConfig, phisvm_iters: u64) -> Vec<f64> {
    let tm = TimeModel::default();
    let v = OPT_TASK_VOXELS;
    let (corr_s, syrk_s, folds) = kind.online_shapes(v);
    let corr = corr_optimized(&corr_s, machine);
    let norm = norm_merged(&fcma_sim::NormShape::of(&corr_s), machine);
    let syrk = syrk_optimized(&syrk_s, machine);
    // Online SMO problems are tiny (l ≈ 9); iterations scale roughly with
    // l relative to the offline problems.
    let (_, subjects, m, _) = kind.table2();
    let per_subject = m / subjects;
    let l_online = per_subject - per_subject / folds;
    let svm_shape = fcma_sim::SvmShape {
        l: l_online.max(2),
        folds,
        voxels: 1,
        iters: (phisvm_iters / 20).max(50),
    };
    let svm = svm_cv(SvmImpl::PhiSvm, &svm_shape, machine);
    let total_ms = tm.kernel_ms(&corr, machine)
        + tm.kernel_ms(&norm, machine)
        + tm.kernel_ms(&syrk, machine)
        + tm.svm_stage_ms(&svm, v as usize, machine);
    let (n, _, _, _) = kind.table2();
    let n_tasks = n.div_ceil(v) as usize;
    vec![total_ms * 1e-3; n_tasks]
}

/// Degraded-mode scaling workload: the Table 3 offline sweep with a
/// fraction of the cluster dying mid-run. Returns
/// `(nodes, healthy_sec, degraded_sec)` rows — the cost of the threaded
/// driver's requeue-and-redispatch recovery at cluster scale, with
/// `failed_fraction` of each node count lost at `fail_at_sec`.
pub fn degraded_offline_table(
    kind: DatasetKind,
    machine: &MachineConfig,
    phisvm_iters: u64,
    node_counts: &[usize],
    failed_fraction: f64,
    fail_at_sec: f64,
) -> Vec<(usize, f64, f64)> {
    let tasks = offline_task_list(kind, machine, phisvm_iters);
    let model = fcma_cluster::ClusterModel { data_bytes: kind.data_bytes(), ..Default::default() };
    model.degraded_sweep(&tasks, node_counts, failed_fraction, fail_at_sec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_sim::{phi_5110p, xeon_e5_2670};

    const BASE_ITERS: u64 = 40_000; // placeholder iteration counts for
    const PHI_ITERS: u64 = 20_000; //  model-structure tests

    /// Fig. 9's headline: optimized beats baseline per voxel on the Phi
    /// by mid-single-digits (face-scene) and more on attention.
    #[test]
    fn fig9_speedup_bands() {
        let m = phi_5110p();
        let fs = per_voxel_speedup(DatasetKind::FaceScene, &m, BASE_ITERS, PHI_ITERS);
        assert!((2.0..12.0).contains(&fs), "face-scene speedup {fs}");
        let att = per_voxel_speedup(DatasetKind::Attention, &m, BASE_ITERS * 4, PHI_ITERS * 2);
        assert!(att > fs, "attention {att} should exceed face-scene {fs}");
    }

    /// Fig. 10: the same comparison on the Xeon is positive but smaller.
    #[test]
    fn fig10_gap_smaller_on_xeon() {
        let phi = phi_5110p();
        let xeon = xeon_e5_2670();
        let on_phi = per_voxel_speedup(DatasetKind::FaceScene, &phi, BASE_ITERS, PHI_ITERS);
        let on_xeon = per_voxel_speedup(DatasetKind::FaceScene, &xeon, BASE_ITERS, PHI_ITERS);
        assert!(on_xeon > 1.0, "optimizations must still win on the Xeon: {on_xeon}");
        assert!(on_xeon < on_phi, "xeon gap {on_xeon} !< phi gap {on_phi}");
    }

    /// Table 3 regime: the single-node offline face-scene analysis takes
    /// on the order of an hour (paper: 5101 s).
    #[test]
    fn offline_single_node_magnitude() {
        let m = phi_5110p();
        let tasks = offline_task_list(DatasetKind::FaceScene, &m, PHI_ITERS);
        let total: f64 = tasks.iter().sum();
        assert!((1_000.0..20_000.0).contains(&total), "face-scene 1-node offline {total} s");
    }

    /// Table 4 regime: single-node online selection takes ~10 s.
    #[test]
    fn online_single_node_magnitude() {
        let m = phi_5110p();
        let tasks = online_task_list(DatasetKind::FaceScene, &m, PHI_ITERS);
        let total: f64 = tasks.iter().sum();
        assert!((2.0..80.0).contains(&total), "online 1-node {total} s");
    }

    /// Degraded-mode scaling: losing a quarter of the nodes mid-run
    /// costs elapsed time but never correctness of the model's books —
    /// every row stays finite and no faster than healthy.
    #[test]
    fn degraded_offline_table_is_consistent() {
        let m = phi_5110p();
        let rows =
            degraded_offline_table(DatasetKind::FaceScene, &m, PHI_ITERS, &[8, 48, 96], 0.25, 30.0);
        assert_eq!(rows.len(), 3);
        for (n, healthy, degraded) in rows {
            assert!(healthy > 0.0, "n={n}");
            assert!(degraded.is_finite() && degraded >= healthy, "n={n}: {degraded} vs {healthy}");
        }
    }

    #[test]
    fn stage_times_are_positive_and_total() {
        let m = phi_5110p();
        let t = optimized_task(DatasetKind::FaceScene, &m, PHI_ITERS);
        assert!(t.corr_ms > 0.0 && t.syrk_ms > 0.0 && t.svm_ms > 0.0);
        assert!((t.total_ms() - (t.corr_ms + t.norm_ms + t.syrk_ms + t.svm_ms)).abs() < 1e-9);
        assert!(t.per_voxel_ms() > 0.0);
    }
}
