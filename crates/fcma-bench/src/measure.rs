//! Real host measurements feeding the reproduction harness.
//!
//! Two classes of quantities are *measured*, not modeled:
//!
//! * **SMO iteration counts** per solver — the algorithmic difference
//!   between LibSVM, optimized LibSVM, and PhiSVM is real; we run the
//!   actual solvers from `fcma-svm` on a scaled dataset (full epoch
//!   structure, so the SVM problem size `l` is *exactly* the paper's)
//!   and record iterations and host wall time.
//! * **Kernel wall times** on the host CPU — every relative claim
//!   (blocked tall-skinny > generic GEMM, panel SYRK > dot SYRK,
//!   merged > separated) is checked in real time on real hardware by the
//!   criterion benches; the quick versions here feed the repro binary.

use crate::workloads::DatasetKind;
use fcma_core::{
    corr_baseline, corr_baseline_parallel, corr_normalized_merged, corr_normalized_merged_parallel,
    corr_optimized, normalize_baseline, normalize_separated, TaskContext, VoxelTask,
};
use fcma_linalg::tall_skinny::TallSkinnyOpts;
use fcma_svm::{loso_cross_validate, KernelMatrix, LibSvmParams, SmoParams, SolverKind, WssMode};
use fcma_sync::pool::Pool;
use std::time::Instant;

/// Measured behaviour of one SVM solver on the CV workload.
#[derive(Debug, Clone, Copy)]
pub struct SvmMeasurement {
    /// Mean SMO iterations per voxel (summed over CV folds).
    pub iters_per_voxel: f64,
    /// Mean host wall milliseconds per voxel (all folds).
    pub host_ms_per_voxel: f64,
    /// Mean CV accuracy across the sampled voxels (sanity signal).
    pub accuracy: f64,
}

/// Measurements for the three Table 8 solvers, in paper order:
/// `[LibSVM, optimized LibSVM, PhiSVM]`.
pub fn measure_svm_solvers(
    kind: DatasetKind,
    scaled_voxels: usize,
    sample_voxels: usize,
) -> [SvmMeasurement; 3] {
    let cfg = kind.scaled_config(scaled_voxels);
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);
    let task = VoxelTask { start: 0, count: sample_voxels.min(ctx.n_voxels()) };
    let corr = corr_normalized_merged(&ctx, task, TallSkinnyOpts::default());

    let kernels: Vec<KernelMatrix> = (0..task.count)
        .map(|vi| {
            KernelMatrix::precompute_raw(ctx.n_epochs(), ctx.n_voxels(), corr.voxel_matrix(vi))
        })
        .collect();

    let solvers = [
        SolverKind::LibSvm(LibSvmParams::default()),
        SolverKind::OptimizedLibSvm(SmoParams { wss: WssMode::SecondOrder, ..Default::default() }),
        SolverKind::PhiSvm(SmoParams::default()),
    ];
    let mut out =
        [SvmMeasurement { iters_per_voxel: 0.0, host_ms_per_voxel: 0.0, accuracy: 0.0 }; 3];
    for (si, solver) in solvers.iter().enumerate() {
        let t0 = Instant::now();
        let mut iters = 0usize;
        let mut acc = 0.0f64;
        for kernel in &kernels {
            let r = loso_cross_validate(kernel, &ctx.y, &ctx.subjects, solver);
            iters += r.total_iterations;
            acc += r.accuracy;
        }
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        out[si] = SvmMeasurement {
            iters_per_voxel: iters as f64 / kernels.len() as f64,
            host_ms_per_voxel: elapsed_ms / kernels.len() as f64,
            accuracy: acc / kernels.len() as f64,
        };
    }
    out
}

/// Host wall-clock (ms) of a closure, best of `reps`.
pub fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Host measurements of the stage-1/2 kernel variants on a scaled task.
#[derive(Debug, Clone, Copy)]
pub struct StageHostTimes {
    /// Baseline per-epoch generic GEMM (stage 1 only).
    pub corr_baseline_ms: f64,
    /// Optimized tall-skinny kernel (stage 1 only).
    pub corr_optimized_ms: f64,
    /// Optimized stage 1 + separated normalization.
    pub separated_ms: f64,
    /// Merged stage 1+2.
    pub merged_ms: f64,
    /// Baseline stage 1 + baseline three-pass normalization.
    pub baseline_norm_ms: f64,
}

/// Measure the stage-1/2 variants on the host for a `task_voxels`-voxel
/// task of the scaled dataset.
pub fn measure_stage12(
    kind: DatasetKind,
    scaled_voxels: usize,
    task_voxels: usize,
    reps: usize,
) -> StageHostTimes {
    let cfg = kind.scaled_config(scaled_voxels);
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);
    let task = VoxelTask { start: 0, count: task_voxels.min(ctx.n_voxels()) };
    // Host-tuned strip width: the library default (512) is sized to the
    // Phi's 512 KB L2; desktop/server LLCs prefer wider strips (see the
    // `ablate-block` sweep).
    let opts = TallSkinnyOpts { tile_cols: 2048 };

    let corr_baseline_ms = time_ms(reps, || {
        std::hint::black_box(corr_baseline(&ctx, task));
    });
    let corr_optimized_ms = time_ms(reps, || {
        std::hint::black_box(corr_optimized(&ctx, task, opts));
    });
    let separated_ms = time_ms(reps, || {
        let mut c = corr_optimized(&ctx, task, opts);
        normalize_separated(&mut c, &ctx);
        std::hint::black_box(&c);
    });
    let merged_ms = time_ms(reps, || {
        std::hint::black_box(corr_normalized_merged(&ctx, task, opts));
    });
    let baseline_norm_ms = time_ms(reps, || {
        let mut c = corr_baseline(&ctx, task);
        normalize_baseline(&mut c, &ctx);
        std::hint::black_box(&c);
    });

    StageHostTimes {
        corr_baseline_ms,
        corr_optimized_ms,
        separated_ms,
        merged_ms,
        baseline_norm_ms,
    }
}

/// Serial-vs-pooled host times for the two parallel stage-1/2 entry
/// points (DESIGN.md §15). Speedups are bit-identity-checked elsewhere;
/// this only records wall clock.
#[derive(Debug, Clone, Copy)]
pub struct ParallelStageTimes {
    /// Worker count of the pool used for the parallel runs.
    pub threads: usize,
    /// Merged stage-1+2 on the serial path.
    pub merged_serial_ms: f64,
    /// Merged stage-1+2 through the work-stealing pool.
    pub merged_parallel_ms: f64,
    /// Baseline stage-1 on the serial path.
    pub baseline_serial_ms: f64,
    /// Baseline stage-1 through the pool (per-epoch banded GEMM).
    pub baseline_parallel_ms: f64,
}

/// Measure the pooled stage-1/2 kernels against their serial twins on
/// the same scaled task. On a 1-core host the "parallel" numbers are
/// pool overhead, not speedup — `BENCH_stage1.json` records the host's
/// parallelism next to them so gates can tell the difference.
pub fn measure_stage12_parallel(
    kind: DatasetKind,
    scaled_voxels: usize,
    task_voxels: usize,
    reps: usize,
    threads: usize,
) -> ParallelStageTimes {
    let cfg = kind.scaled_config(scaled_voxels);
    let (dataset, _) = cfg.generate();
    let ctx = TaskContext::full(&dataset);
    let task = VoxelTask { start: 0, count: task_voxels.min(ctx.n_voxels()) };
    let opts = TallSkinnyOpts { tile_cols: 2048 };
    let pool = Pool::new(threads);

    let merged_serial_ms = time_ms(reps, || {
        std::hint::black_box(corr_normalized_merged(&ctx, task, opts));
    });
    let merged_parallel_ms = time_ms(reps, || {
        std::hint::black_box(corr_normalized_merged_parallel(&ctx, task, opts, &pool));
    });
    let baseline_serial_ms = time_ms(reps, || {
        std::hint::black_box(corr_baseline(&ctx, task));
    });
    let baseline_parallel_ms = time_ms(reps, || {
        std::hint::black_box(corr_baseline_parallel(&ctx, task, &pool));
    });

    ParallelStageTimes {
        threads,
        merged_serial_ms,
        merged_parallel_ms,
        baseline_serial_ms,
        baseline_parallel_ms,
    }
}

/// Pooled panel-SYRK wall time at the full-scale kernel-matrix shape,
/// alongside [`measure_syrk`]'s serial numbers. Returns
/// `(serial_panel_ms, parallel_panel_ms)`.
pub fn measure_syrk_parallel(kind: DatasetKind, reps: usize, threads: usize) -> (f64, f64) {
    use fcma_linalg::{syrk_panel, syrk_panel_parallel};
    let (n_full, subjects, m_full, _) = kind.table2();
    let m = (m_full - m_full / subjects) as usize;
    let n = n_full as usize;
    let a: Vec<f32> = (0..m * n)
        .map(|i| ((i as u32).wrapping_mul(2654435761) >> 16) as f32 / 65536.0 - 0.5)
        .collect();
    let mut c = vec![0.0f32; m * m];
    let pool = Pool::new(threads);
    let serial_ms = time_ms(reps, || {
        syrk_panel(m, n, &a, n, &mut c, m);
        std::hint::black_box(&c);
    });
    let parallel_ms = time_ms(reps, || {
        syrk_panel_parallel(&pool, m, n, &a, n, &mut c, m);
        std::hint::black_box(&c);
    });
    (serial_ms, parallel_ms)
}

/// Host wall-clock of the two SYRK implementations on the **full-scale**
/// SVM kernel-matrix shape (`m_train × N`, e.g. 204 × 34,470 for
/// face-scene — this stage is small enough to measure unscaled). Returns
/// `(dot_ms, panel_ms)` per voxel.
pub fn measure_syrk(kind: DatasetKind, _scaled_voxels: usize, reps: usize) -> (f64, f64) {
    use fcma_linalg::{syrk_dot, syrk_panel};
    let (n_full, subjects, m_full, _) = kind.table2();
    let m = (m_full - m_full / subjects) as usize;
    let n = n_full as usize;
    // Deterministic pseudo-data; contents don't affect timing.
    let a: Vec<f32> = (0..m * n)
        .map(|i| ((i as u32).wrapping_mul(2654435761) >> 16) as f32 / 65536.0 - 0.5)
        .collect();
    let mut c = vec![0.0f32; m * m];
    let dot_ms = time_ms(reps, || {
        syrk_dot(m, n, &a, n, &mut c, m);
        std::hint::black_box(&c);
    });
    let panel_ms = time_ms(reps, || {
        syrk_panel(m, n, &a, n, &mut c, m);
        std::hint::black_box(&c);
    });
    (dot_ms, panel_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svm_measurements_have_sane_structure() {
        let m = measure_svm_solvers(DatasetKind::FaceScene, 48, 1);
        for s in &m {
            assert!(s.iters_per_voxel > 0.0);
            assert!(s.host_ms_per_voxel > 0.0);
            assert!((0.0..=1.0).contains(&s.accuracy));
        }
        // All three solvers reach comparable accuracy (same optimum).
        let max = m.iter().map(|s| s.accuracy).fold(f64::MIN, f64::max);
        let min = m.iter().map(|s| s.accuracy).fold(f64::MAX, f64::min);
        assert!(max - min < 0.25, "solver accuracies diverge: {min} vs {max}");
    }

    #[test]
    fn stage12_measurements_are_positive() {
        let t = measure_stage12(DatasetKind::FaceScene, 64, 16, 1);
        assert!(t.corr_baseline_ms > 0.0);
        assert!(t.corr_optimized_ms > 0.0);
        assert!(t.merged_ms > 0.0);
        assert!(t.separated_ms >= t.corr_optimized_ms * 0.5);
    }
}
