//! Workload definitions for the two evaluation datasets (Table 2) in
//! both full-scale (for the machine-model reproductions) and scaled
//! (for real host measurements) forms.

use fcma_fmri::SynthConfig;
use fcma_sim::{CorrShape, NormShape, SvmShape, SyrkShape};

/// The paper's task sizes: the baseline fits 120 (face-scene) / 60
/// (attention) voxels in the coprocessor's 6 GB; the optimized pipeline
/// fits 240 by reducing to kernel matrices (§5.4.1).
pub const OPT_TASK_VOXELS: u64 = 240;

/// One of the paper's two evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// 34,470 voxels / 18 subjects / 216 epochs.
    FaceScene,
    /// 25,260 voxels / 30 subjects / 540 epochs.
    Attention,
}

impl DatasetKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::FaceScene => "face-scene",
            DatasetKind::Attention => "attention",
        }
    }

    /// Both datasets, in paper order.
    pub fn both() -> [DatasetKind; 2] {
        [DatasetKind::FaceScene, DatasetKind::Attention]
    }

    /// Table 2 row: (voxels, subjects, epochs, epoch length).
    pub fn table2(&self) -> (u64, u64, u64, u64) {
        match self {
            DatasetKind::FaceScene => (34_470, 18, 216, 12),
            DatasetKind::Attention => (25_260, 30, 540, 12),
        }
    }

    /// Baseline voxels per task, limited by the coprocessor memory
    /// (§5.4.1: 120 for face-scene, 60 for attention).
    pub fn baseline_task_voxels(&self) -> u64 {
        match self {
            DatasetKind::FaceScene => 120,
            DatasetKind::Attention => 60,
        }
    }

    /// Stage-1 shape for a task of `v` voxels (corr uses all epochs).
    pub fn corr_shape(&self, v: u64) -> CorrShape {
        let (n, _, m, k) = self.table2();
        CorrShape { v, n, m, k }
    }

    /// Stage-2 shape for a task of `v` voxels.
    pub fn norm_shape(&self, v: u64) -> NormShape {
        NormShape::of(&self.corr_shape(v))
    }

    /// Stage-3a shape for a task of `v` voxels: the SVM data matrix spans
    /// the inner-CV training epochs (epochs minus one subject's worth —
    /// 204 for face-scene, as in §5.4.2).
    pub fn syrk_shape(&self, v: u64) -> SyrkShape {
        let (n, subjects, m, _) = self.table2();
        let per_subject = m / subjects;
        SyrkShape { m: m - per_subject, n, voxels: v }
    }

    /// Stage-3b shape for a task of `v` voxels with `iters` measured SMO
    /// iterations per voxel (summed over folds). `l` is the inner-fold
    /// training size; folds = training subjects.
    pub fn svm_shape(&self, v: u64, iters: u64) -> SvmShape {
        let (_, subjects, m, _) = self.table2();
        let per_subject = m / subjects;
        let m_sel = m - per_subject; // selection runs on n-1 subjects
        SvmShape { l: m_sel - per_subject, folds: subjects - 1, voxels: v, iters }
    }

    /// Raw dataset bytes the master distributes to each node (voxels ×
    /// time points × 4 B; time points include inter-epoch gaps).
    pub fn data_bytes(&self) -> f64 {
        let cfg = self.scaled_config(self.table2().0 as usize);
        (cfg.n_voxels * cfg.n_timepoints() * 4) as f64
    }

    /// Online-analysis shapes: a single subject's session (no nested CV).
    /// Returns (corr, syrk) shapes for a task of `v` voxels and the
    /// number of epoch folds used for selection.
    pub fn online_shapes(&self, v: u64) -> (CorrShape, SyrkShape, u64) {
        let (n, subjects, m, k) = self.table2();
        let per_subject = m / subjects;
        (CorrShape { v, n, m: per_subject, k }, SyrkShape { m: per_subject, n, voxels: v }, 4)
    }

    /// A synthetic config with this dataset's full epoch structure and a
    /// scaled voxel count (pass the full count for the true shape).
    pub fn scaled_config(&self, n_voxels: usize) -> SynthConfig {
        match self {
            DatasetKind::FaceScene => fcma_fmri::presets::face_scene_scaled(n_voxels),
            DatasetKind::Attention => fcma_fmri::presets::attention_scaled(n_voxels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_scene_shapes_match_paper_section54() {
        let d = DatasetKind::FaceScene;
        let c = d.corr_shape(120);
        assert_eq!((c.v, c.n, c.m, c.k), (120, 34_470, 216, 12));
        let s = d.syrk_shape(120);
        assert_eq!((s.m, s.n), (204, 34_470)); // the paper's 204×34470
        let svm = d.svm_shape(120, 1000);
        assert_eq!(svm.l, 192);
        assert_eq!(svm.folds, 17);
    }

    #[test]
    fn attention_shapes() {
        let d = DatasetKind::Attention;
        let s = d.syrk_shape(60);
        assert_eq!(s.m, 522);
        let svm = d.svm_shape(60, 1000);
        assert_eq!(svm.l, 504);
        assert_eq!(svm.folds, 29);
    }

    #[test]
    fn online_shapes_are_single_session() {
        let (c, s, folds) = DatasetKind::FaceScene.online_shapes(240);
        assert_eq!(c.m, 12);
        assert_eq!(s.m, 12);
        assert!(folds >= 2);
    }

    #[test]
    fn data_bytes_are_hundreds_of_megabytes() {
        let b = DatasetKind::FaceScene.data_bytes();
        assert!((1e8..1e9).contains(&b), "face-scene bytes {b:e}");
    }
}
