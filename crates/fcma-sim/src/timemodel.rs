//! Roofline-style execution-time model.
//!
//! Converts kernel counters into estimated wall time on a machine model:
//!
//! ```text
//!   t = cpi · instructions / issue_rate  +  misses · latency / (cores · threads)
//! ```
//!
//! * The **issue term** models one (vector) instruction per core per cycle
//!   scaled by a CPI factor covering in-order stalls and dependency
//!   chains.
//! * The **memory term** models L2 miss latency overlapped across all
//!   hardware threads (each thread can have one outstanding miss — the
//!   simple latency-hiding model appropriate to the in-order Phi).
//!
//! Throughput-limited workloads (the baseline's SVM stage, where one
//! thread owns one voxel and memory pressure caps the voxel count) are
//! handled by [`TimeModel::limited_ms`], which scales the estimate by the
//! active-thread fraction — the §3.3.3 thread-starvation effect.
//!
//! The model is intentionally coarse: the reproduction's claims are about
//! *ratios* (optimized vs. baseline, merged vs. separated), which depend
//! on the counters, not on the absolute calibration.

use crate::counters::KernelCounters;
use crate::machine::MachineConfig;

/// The time model. `cpi` is the average cycles-per-instruction factor.
#[derive(Debug, Clone, Copy)]
pub struct TimeModel {
    /// Cycles per (vector) instruction; ~2 for the in-order Phi running
    /// well-pipelined kernels.
    pub cpi: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel { cpi: 2.0 }
    }
}

impl TimeModel {
    /// Estimated milliseconds for a fully-parallel kernel.
    pub fn kernel_ms(&self, c: &KernelCounters, m: &MachineConfig) -> f64 {
        self.limited_ms(c, m, m.total_threads())
    }

    /// Estimated milliseconds when only `active_threads` of the machine's
    /// hardware threads have work (≥ total threads means fully parallel).
    pub fn limited_ms(&self, c: &KernelCounters, m: &MachineConfig, active_threads: usize) -> f64 {
        assert!(active_threads > 0, "limited_ms: no active threads");
        let util = (active_threads.min(m.total_threads()) as f64) / m.total_threads() as f64;
        let t_issue_s = self.cpi * c.vpu_instructions as f64 / m.issue_rate() / util;
        let t_mem_s =
            c.l2_misses as f64 * m.l2_miss_latency_ns * 1e-9 / (m.total_threads() as f64 * util);
        (t_issue_s + t_mem_s) * 1e3
    }

    /// Achieved GFLOP/s implied by the model for this kernel.
    pub fn gflops(&self, c: &KernelCounters, m: &MachineConfig) -> f64 {
        c.gflops(self.kernel_ms(c, m))
    }

    /// Milliseconds for a *single thread* to execute this counter bundle
    /// serially — the per-voxel SVM cross-validation regime, where one
    /// thread owns one voxel's problem (§4.4). The thread runs at the
    /// machine's single-thread IPC and eats its misses un-overlapped.
    pub fn per_thread_ms(&self, c: &KernelCounters, m: &MachineConfig) -> f64 {
        let t_issue_s = c.vpu_instructions as f64 / (m.clock_ghz * 1e9 * m.ipc_per_thread);
        let t_mem_s = c.l2_misses as f64 * m.l2_miss_latency_ns * 1e-9;
        (t_issue_s + t_mem_s) * 1e3
    }

    /// Wall time of an SVM CV stage processing `voxels` independent
    /// problems, one per thread: the per-voxel serial time times the
    /// number of thread waves needed.
    pub fn svm_stage_ms(
        &self,
        per_voxel: &KernelCounters,
        voxels: usize,
        m: &MachineConfig,
    ) -> f64 {
        let waves = voxels.div_ceil(m.total_threads()).max(1);
        self.per_thread_ms(per_voxel, m) * waves as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{self, face_scene_task};
    use crate::machine::{phi_5110p, xeon_e5_2670};

    #[test]
    fn issue_bound_kernel_scales_with_instructions() {
        let m = phi_5110p();
        let tm = TimeModel::default();
        let c1 = KernelCounters { vpu_instructions: 1_000_000_000, ..Default::default() };
        let c2 = KernelCounters { vpu_instructions: 2_000_000_000, ..Default::default() };
        let t1 = tm.kernel_ms(&c1, &m);
        let t2 = tm.kernel_ms(&c2, &m);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_kernel_scales_with_misses() {
        let m = phi_5110p();
        let tm = TimeModel::default();
        let c = KernelCounters { l2_misses: 240_000_000, ..Default::default() };
        // 240M misses x 300ns / 240 threads = 300 ms.
        let t = tm.kernel_ms(&c, &m);
        assert!((t - 300.0).abs() < 1.0, "t = {t}");
    }

    #[test]
    fn thread_starvation_inflates_time() {
        let m = phi_5110p();
        let tm = TimeModel::default();
        let c = KernelCounters {
            vpu_instructions: 1_000_000_000,
            l2_misses: 10_000_000,
            ..Default::default()
        };
        let full = tm.limited_ms(&c, &m, 240);
        let half = tm.limited_ms(&c, &m, 120);
        let quarter = tm.limited_ms(&c, &m, 60);
        assert!((half / full - 2.0).abs() < 1e-6);
        assert!((quarter / full - 4.0).abs() < 1e-6);
    }

    /// Table 5 regime check: the modeled times for the four matmul cases
    /// must reproduce the paper's ordering and rough factors
    /// (ours: 170 / 400 ms; MKL: 230 / 1600 ms).
    #[test]
    fn table5_orderings_hold() {
        let m = phi_5110p();
        let tm = TimeModel::default();
        let t_corr_opt = tm.kernel_ms(&analytic::corr_optimized(&face_scene_task::corr(), &m), &m);
        let t_corr_mkl = tm.kernel_ms(&analytic::corr_mkl(&face_scene_task::corr(), &m), &m);
        let t_syrk_opt = tm.kernel_ms(&analytic::syrk_optimized(&face_scene_task::syrk(), &m), &m);
        let t_syrk_mkl = tm.kernel_ms(&analytic::syrk_mkl(&face_scene_task::syrk(), &m), &m);

        // Winners.
        assert!(t_corr_opt < t_corr_mkl, "corr: {t_corr_opt} !< {t_corr_mkl}");
        assert!(t_syrk_opt < t_syrk_mkl, "syrk: {t_syrk_opt} !< {t_syrk_mkl}");
        // The paper's big factor is on the SYRK side (4x); ours should be
        // in a comparable band.
        let syrk_ratio = t_syrk_mkl / t_syrk_opt;
        assert!((2.0..8.0).contains(&syrk_ratio), "syrk ratio {syrk_ratio}");
        // Absolute times within the right order of magnitude (paper: 170,
        // 230, 400, 1600 ms).
        assert!((50.0..500.0).contains(&t_corr_opt), "corr opt {t_corr_opt}");
        assert!((800.0..4000.0).contains(&t_syrk_mkl), "syrk mkl {t_syrk_mkl}");
    }

    /// The paper's SYRK achieves 430 GFLOPS (21% of peak); MKL 108. Check
    /// the model lands both in sane bands.
    #[test]
    fn table5_gflops_bands() {
        let m = phi_5110p();
        let tm = TimeModel::default();
        let opt = analytic::syrk_optimized(&face_scene_task::syrk(), &m);
        let mkl = analytic::syrk_mkl(&face_scene_task::syrk(), &m);
        let g_opt = tm.gflops(&opt, &m);
        let g_mkl = tm.gflops(&mkl, &m);
        assert!(g_opt > 2.0 * g_mkl, "opt {g_opt} vs mkl {g_mkl}");
        assert!((150.0..800.0).contains(&g_opt), "opt gflops {g_opt}");
        assert!((40.0..250.0).contains(&g_mkl), "mkl gflops {g_mkl}");
    }

    /// Fig. 10/11 direction: the same optimization gap must shrink on the
    /// Xeon (bigger caches, narrower vectors).
    #[test]
    fn optimization_gap_smaller_on_xeon() {
        let phi = phi_5110p();
        let xeon = xeon_e5_2670();
        let tm = TimeModel::default();
        let gap_on = |m: &crate::machine::MachineConfig| {
            let opt = analytic::corr_optimized(&face_scene_task::corr(), m)
                + analytic::syrk_optimized(&face_scene_task::syrk(), m);
            let mkl = analytic::corr_mkl(&face_scene_task::corr(), m)
                + analytic::syrk_mkl(&face_scene_task::syrk(), m);
            tm.kernel_ms(&mkl, m) / tm.kernel_ms(&opt, m)
        };
        let gap_phi = gap_on(&phi);
        let gap_xeon = gap_on(&xeon);
        assert!(gap_xeon < gap_phi, "xeon gap {gap_xeon} !< phi gap {gap_phi}");
    }
}
