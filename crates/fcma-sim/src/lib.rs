//! # fcma-sim — machine simulator substrate
//!
//! The paper evaluates on hardware we cannot access (Intel Xeon Phi 5110P
//! coprocessors) with proprietary counters (vTune). This crate substitutes
//! a layered model:
//!
//! * [`cache`] — a set-associative LRU cache simulator;
//! * [`machine`] — architectural models of the Phi 5110P and the Xeon
//!   E5-2670 (the paper's two targets);
//! * [`counters`] — the vTune-like counter bundle (memory references, L2
//!   misses, vectorization intensity);
//! * [`analytic`] — closed-form per-kernel counter models derived from
//!   each algorithm's block structure, with the few unobservable
//!   baseline constants calibrated to the paper's Table 1/8 and flagged
//!   as such;
//! * [`trace`] — line-granularity replays of the kernels' access patterns
//!   that validate the analytic miss models at small scale (property
//!   tests pin them together);
//! * [`timemodel`] — a roofline-style conversion from counters to
//!   milliseconds, including the thread-starvation effect that drives the
//!   baseline's SVM-stage slowdown (§3.3.3).

pub mod analytic;
pub mod cache;
pub mod counters;
pub mod machine;
pub mod timemodel;
pub mod trace;

pub use analytic::{CorrShape, NormShape, SvmImpl, SvmShape, SyrkShape};
pub use cache::CacheStats;
pub use cache::{CacheConfig, CacheSim};
pub use counters::KernelCounters;
pub use machine::{phi_5110p, xeon_e5_2670, MachineConfig};
pub use timemodel::TimeModel;
