//! Closed-form counter models for every FCMA kernel variant.
//!
//! The paper characterizes its kernels with vTune hardware counters
//! (memory references, L2 misses, vectorization intensity — Tables 1, 5,
//! 6, 7, 8). Full-size trace simulation of those workloads would need
//! ~10¹⁰ simulated line accesses, so the reproduction uses closed-form
//! access-pattern models derived from each kernel's block structure. The
//! models are *validated against the trace simulator*
//! ([`crate::trace`]) on small shapes by property tests; full-size numbers
//! are then extrapolations of a validated model.
//!
//! ## Modeling ground rules
//!
//! * **L2 misses** are derived from first principles: compulsory streaming
//!   traffic of each operand at 64-byte lines, multiplied by the number of
//!   passes the algorithm's blocking makes over it — which depends on the
//!   target machine's per-core cache size.
//! * **Memory references** count retired memory-access instructions: a
//!   full-width vector load is one reference.
//! * **Vectorization intensity** of *our* kernels is derived from their
//!   loop structure (packed panels → full-width lanes). The intensities
//!   of the closed-source baselines (MKL 3.6 on the Phi, LibSVM 1.9,
//!   baseline normalization 8.5) are **calibration constants taken from
//!   the paper's Table 1/8 measurements** — properties of binaries we
//!   cannot inspect. They live in [`params`] and are flagged as such.
//!   On the Xeon, MKL is mature and gets a correspondingly higher
//!   intensity, which is what shrinks the optimization gap in Fig. 10.
//!
//! All models are for single precision (4-byte) data and 64-byte lines.

use crate::counters::KernelCounters;
use crate::machine::MachineConfig;

/// Bytes per element (everything is f32).
const ELEM: u64 = 4;
/// Bytes per cache line.
const LINE: u64 = 64;

/// Calibration and structural constants of the models.
pub mod params {
    use crate::machine::MachineConfig;

    /// VI of our packed-panel microkernels: full-width ops by
    /// construction (the paper measures exactly 16 on the Phi).
    pub(crate) fn vi_opt_matmul(m: &MachineConfig) -> f64 {
        m.vpu_lanes as f64
    }

    /// Vectorization intensity of MKL's GEMM/SYRK on tall-skinny shapes.
    /// **Calibrated**: 3.6 on the Phi (paper Table 1); on the mature AVX
    /// Xeon port MKL reaches ~80% of the 8-lane ideal.
    pub(crate) fn vi_mkl_matmul(m: &MachineConfig) -> f64 {
        if m.vpu_lanes >= 16 {
            3.6
        } else {
            0.8 * m.vpu_lanes as f64
        }
    }

    /// VI of the baseline normalization. **Calibrated** to Table 1 (8.5 on
    /// the Phi); proportionally scaled on narrower machines.
    pub(crate) fn vi_norm_baseline(m: &MachineConfig) -> f64 {
        8.5 * m.vpu_lanes as f64 / 16.0
    }

    /// VI of the optimized 16-voxel-chunk normalization: full-width SIMD
    /// with a scalar transcendental tail (derived ≈ 14/16 of ideal).
    pub(crate) fn vi_norm_opt(m: &MachineConfig) -> f64 {
        14.0 * m.vpu_lanes as f64 / 16.0
    }

    /// VI of LibSVM's node-walking loops. **Calibrated** to Table 8
    /// (1.9) — essentially scalar on every machine.
    pub(crate) fn vi_libsvm(_m: &MachineConfig) -> f64 {
        1.9
    }

    /// VI of the float-converted LibSVM (dense f32 but un-restructured
    /// loops; between LibSVM and PhiSVM).
    pub(crate) fn vi_libsvm_opt(m: &MachineConfig) -> f64 {
        8.0 * m.vpu_lanes as f64 / 16.0
    }

    /// VI of PhiSVM's fused dense loops. **Calibrated** to Table 8 (9.8 on
    /// the Phi; the selection scans vectorize imperfectly).
    pub(crate) fn vi_phisvm(m: &MachineConfig) -> f64 {
        9.8 * m.vpu_lanes as f64 / 16.0
    }

    /// MKL model: average operand-load instructions per FMA instruction.
    /// **Calibrated** so the combined face-scene matmul references land
    /// near Table 1's 34.9 B on the Phi.
    pub const MKL_LOADS_PER_FMA: f64 = 1.25;
    /// MKL model: square tile edge of its generic SYRK blocking.
    /// **Calibrated** against Table 1's 709 M misses.
    pub const MKL_SYRK_TILE: u64 = 32;
    /// MKL model: extra streaming passes over B from its packing stage in
    /// the tall-skinny GEMM (read + packed write + packed read).
    pub const MKL_PACK_FACTOR: f64 = 2.0;

    /// Microkernel geometry shared by the optimized kernels.
    pub const MR: u64 = 8;
    pub const NR: u64 = 16;
    /// SYRK panel depth (the paper's 96).
    pub const PANEL_K: u64 = 96;
}

/// Shape of the stage-1 correlation workload: `m` epoch multiplications of
/// `A[v,k] × B[k,n]` (paper §5.4.2: 216 × (120×12 · 12×34470)).
#[derive(Debug, Clone, Copy)]
pub struct CorrShape {
    /// Assigned voxels per task.
    pub v: u64,
    /// Brain voxels.
    pub n: u64,
    /// Epochs.
    pub m: u64,
    /// Time points per epoch.
    pub k: u64,
}

impl CorrShape {
    /// Useful floating point work: one FMA per output element per k-step.
    pub fn flops(&self) -> u64 {
        2 * self.v * self.n * self.m * self.k
    }

    /// Output elements (the full correlation data for the task).
    pub(crate) fn out_elems(&self) -> u64 {
        self.v * self.n * self.m
    }
}

/// Shape of the stage-3 kernel-matrix workload: `voxels` independent
/// `A[m,n]·Aᵀ` products (paper: 120 × (204 × 34470)).
#[derive(Debug, Clone, Copy)]
pub struct SyrkShape {
    /// Samples (epochs in the training set).
    pub m: u64,
    /// Features (brain voxels).
    pub n: u64,
    /// Independent problems (voxels per task).
    pub voxels: u64,
}

impl SyrkShape {
    /// Triangle-only flops, as the paper counts them (§5.4.2).
    pub fn flops(&self) -> u64 {
        self.voxels * (self.m * (self.m + 1) / 2) * self.n * 2
    }
}

// --------------------------------------------------------------------
// Stage 1: correlation matrix computation
// --------------------------------------------------------------------

/// Optimized tall-skinny correlation kernel (paper §4.2).
///
/// Misses: B is streamed once per epoch (compulsory — its values change
/// every epoch) and C is write-allocated once; the L2-sized column strips
/// make every other access a hit. References: the packed microkernel
/// issues, per `MR×NR` tile and k-step, one panel-B vector load plus `MR`
/// broadcasts, and `MR` stores per tile; packing adds `2·n·k/NR` vector
/// ops per epoch.
pub fn corr_optimized(s: &CorrShape, mach: &MachineConfig) -> KernelCounters {
    use params::*;
    let tiles = s.v.div_ceil(MR) * s.n.div_ceil(NR) * s.m;
    let micro_refs = tiles * (s.k * (1 + MR) + MR);
    let pack_refs = s.m * 2 * s.n * s.k / NR + s.m * s.v.div_ceil(MR) * 2 * s.k;
    let mem_refs = micro_refs + pack_refs;

    let b_stream_lines = s.m * (s.k * s.n * ELEM).div_ceil(LINE);
    let c_write_lines = (s.out_elems() * ELEM).div_ceil(LINE);
    let a_lines = s.m * (s.v * s.k * ELEM).div_ceil(LINE);
    let l2_misses = b_stream_lines + c_write_lines + a_lines;

    let flops = s.flops();
    let vi = vi_opt_matmul(mach);
    counters(flops, vi, mem_refs, vi, l2_misses)
}

/// MKL-style per-epoch GEMM (the baseline's stage 1, §3.2).
///
/// Same compulsory traffic as the optimized kernel plus the packing
/// factor's extra passes over B; instruction counts follow the calibrated
/// `vi_mkl_matmul` / `MKL_LOADS_PER_FMA` model.
pub fn corr_mkl(s: &CorrShape, mach: &MachineConfig) -> KernelCounters {
    use params::*;
    let flops = s.flops();
    let vi = vi_mkl_matmul(mach);
    let fma_instr = (flops as f64 / (2.0 * vi)) as u64;
    let store_instr = (s.out_elems() as f64 / vi) as u64;
    let mem_refs = (fma_instr as f64 * MKL_LOADS_PER_FMA) as u64 + store_instr;

    // Packing costs an extra pass over B only when the packed epoch matrix
    // exceeds the per-core cache (it does on the Phi; on the Xeon the
    // 12×n slab of a *scaled* problem may fit).
    let b_bytes_per_epoch = s.k * s.n * ELEM;
    let pack_factor =
        if b_bytes_per_epoch > mach.l2_per_core.size_bytes as u64 { MKL_PACK_FACTOR } else { 1.0 };
    let b_stream_lines =
        (s.m as f64 * b_bytes_per_epoch.div_ceil(LINE) as f64 * pack_factor) as u64;
    let c_write_lines = (s.out_elems() * ELEM).div_ceil(LINE);
    let l2_misses = b_stream_lines + c_write_lines;

    counters(flops, vi, mem_refs, vi, l2_misses)
}

// --------------------------------------------------------------------
// Stage 2: within-subject normalization
// --------------------------------------------------------------------

/// Normalization shape: the correlation data of one task
/// (`elems = v·m·n`).
#[derive(Debug, Clone, Copy)]
pub struct NormShape {
    /// Total correlation elements to normalize.
    pub elems: u64,
}

impl NormShape {
    /// Derive from the correlation shape it consumes.
    pub fn of(corr: &CorrShape) -> Self {
        NormShape { elems: corr.out_elems() }
    }
}

/// Per-element float work of the Fisher transform (polynomial `ln`
/// expansion on the EMU) plus the two z-score passes.
const NORM_OPS_PER_ELEM: f64 = 4.0;

/// Memory-reference instructions per element for the three normalization
/// schedules. **Calibrated** to Tables 1 and 7: the baseline walks
/// within-subject *columns* (stride `N` — scalar gather-like accesses,
/// ~7 refs/element → 6.2 B); the separated-but-vectorized version streams
/// rows twice (~4 refs/element → Table 7's 4.35 B including stage 1); the
/// merged version touches L2-resident tiles with 16-wide ops
/// (~1.25 refs/element → Table 7's 1.93 B including stage 1).
const NORM_REFS_PER_ELEM_BASELINE: f64 = 7.0;
const NORM_REFS_PER_ELEM_SEPARATED: f64 = 4.0;
const NORM_REFS_PER_ELEM_MERGED: f64 = 1.25;

/// Normalization fused into the correlation tiles (optimization idea #2):
/// the data is L2-resident, so the stage adds **zero** L2 misses — only
/// the transform instructions and in-cache references.
pub fn norm_merged(s: &NormShape, mach: &MachineConfig) -> KernelCounters {
    use params::*;
    let refs = (s.elems as f64 * NORM_REFS_PER_ELEM_MERGED) as u64;
    let flops = (s.elems as f64 * NORM_OPS_PER_ELEM) as u64;
    counters(flops, vi_norm_opt(mach), refs, vi_norm_opt(mach), 0)
}

/// Separated optimized normalization: two streaming passes over data that
/// has already left the cache (fused Fisher+stats pass, then the z-apply
/// pass). Each pass misses every line once.
pub fn norm_separated(s: &NormShape, mach: &MachineConfig) -> KernelCounters {
    use params::*;
    let refs = (s.elems as f64 * NORM_REFS_PER_ELEM_SEPARATED) as u64;
    let lines = (s.elems * ELEM).div_ceil(LINE);
    let flops = (s.elems as f64 * NORM_OPS_PER_ELEM) as u64;
    counters(flops, vi_norm_opt(mach), refs, vi_norm_opt(mach), 2 * lines)
}

/// Baseline normalization (Table 1 row 2): three column-strided passes
/// (Fisher; stats; apply) at the baseline's measured intensity.
pub fn norm_baseline(s: &NormShape, mach: &MachineConfig) -> KernelCounters {
    let vi = params::vi_norm_baseline(mach);
    let refs = (s.elems as f64 * NORM_REFS_PER_ELEM_BASELINE) as u64;
    let lines = (s.elems * ELEM).div_ceil(LINE);
    let flops = (s.elems as f64 * NORM_OPS_PER_ELEM) as u64;
    counters(flops, vi, refs, vi, 3 * lines)
}

// --------------------------------------------------------------------
// Stage 3a: SVM kernel-matrix SYRK
// --------------------------------------------------------------------

/// The paper's panel SYRK (§4.4): A streamed exactly once per voxel
/// (96-deep panels stay L2-resident while all C tiles consume them).
pub fn syrk_optimized(s: &SyrkShape, mach: &MachineConfig) -> KernelCounters {
    use params::*;
    let row_tiles = s.m.div_ceil(MR);
    let col_tiles = s.m.div_ceil(NR);
    // Lower-triangle tile pairs (j0 <= i0).
    let mut tile_pairs = 0u64;
    for it in 0..row_tiles {
        for jt in 0..col_tiles {
            if jt * NR <= it * MR {
                tile_pairs += 1;
            }
        }
    }
    let panels = s.n.div_ceil(PANEL_K);
    let micro_refs = s.voxels * panels * tile_pairs * (PANEL_K * (1 + MR) + MR);
    let pack_refs = s.voxels * panels * 2 * s.m * PANEL_K / NR;
    let mem_refs = micro_refs + pack_refs;

    let a_lines = (s.m * s.n * ELEM).div_ceil(LINE);
    let c_lines = (s.m * s.m * ELEM).div_ceil(LINE);
    let l2_misses = s.voxels * (a_lines + c_lines);

    // The microkernel computes full tiles, slightly more than the
    // triangle; count the flops it actually performs.
    let flops = s.voxels * tile_pairs * MR * NR * s.n * 2;
    let vi = vi_opt_matmul(mach);
    counters(flops, vi, mem_refs, vi, l2_misses)
}

/// MKL-style SYRK with generic square blocking: each `T×T` tile of `C`
/// re-streams two `T × n` slabs of `A`. When the machine's per-core cache
/// can hold a slab (the Xeon's 2.5 MB often can at scaled sizes), slabs
/// are re-used across a block row and only `grid` passes remain.
pub fn syrk_mkl(s: &SyrkShape, mach: &MachineConfig) -> KernelCounters {
    use params::*;
    let flops = s.flops();
    let vi = vi_mkl_matmul(mach);
    let fma_instr = (flops as f64 / (2.0 * vi)) as u64;
    let mem_refs = (fma_instr as f64 * MKL_LOADS_PER_FMA) as u64;

    let t = MKL_SYRK_TILE;
    let grid = s.m.div_ceil(t);
    let tri_tiles = grid * (grid + 1) / 2;
    let slab_bytes = t * s.n * ELEM;
    let slab_lines = slab_bytes.div_ceil(LINE);
    let slab_fits = slab_bytes * 2 <= mach.l2_per_core.size_bytes as u64;
    let streams = if slab_fits {
        // One slab pinned per block row: A streamed ~grid + 1 times total.
        (grid + 1) * slab_lines
    } else {
        tri_tiles * 2 * slab_lines
    };
    let l2_misses = s.voxels * streams;

    counters(flops, vi, mem_refs, vi, l2_misses)
}

// --------------------------------------------------------------------
// Stage 3b: SVM cross validation
// --------------------------------------------------------------------

/// Which SVM implementation a counter model describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvmImpl {
    /// LibSVM replica: f64 sparse nodes, cached Q rows.
    LibSvm,
    /// Float-converted LibSVM: dense f32, fixed second-order WSS.
    OptimizedLibSvm,
    /// PhiSVM: dense f32, adaptive WSS.
    PhiSvm,
}

/// SVM cross-validation workload: `voxels` problems, each running `folds`
/// solves of `l` training samples taking `iters` SMO iterations in total
/// (across all folds of one voxel). `iters` should come from *measured*
/// runs of the real solvers in `fcma-svm` — the algorithmic differences
/// between the three implementations are real, not modeled.
#[derive(Debug, Clone, Copy)]
pub struct SvmShape {
    /// Training samples per fold.
    pub l: u64,
    /// Folds per voxel.
    pub folds: u64,
    /// Independent voxel problems.
    pub voxels: u64,
    /// Total measured SMO iterations per voxel (sum over folds).
    pub iters: u64,
}

/// Counter model for one SVM CV workload.
///
/// Per SMO iteration the solver touches ~4 length-`l` arrays (selection
/// scan over gradient/alpha, two kernel rows for the update); LibSVM's
/// node representation doubles the bytes per element (index+value, f64)
/// and serializes the loops, reflected in its calibrated intensity and a
/// per-element instruction overhead for node decoding.
pub fn svm_cv(impl_: SvmImpl, s: &SvmShape, mach: &MachineConfig) -> KernelCounters {
    let elems_per_iter = 6 * s.l; // selection (2l) + two row updates (2·2l)
    let total_elems = s.voxels * s.iters * elems_per_iter;
    let (vi, node_overhead, bytes_per_elem) = match impl_ {
        // (i32 idx + f64 value) nodes; ~2 extra instructions per element
        // for node decode/convert.
        SvmImpl::LibSvm => (params::vi_libsvm(mach), 2.0f64, 12u64),
        SvmImpl::OptimizedLibSvm => (params::vi_libsvm_opt(mach), 0.3, 4),
        SvmImpl::PhiSvm => (params::vi_phisvm(mach), 0.0, 4),
    };
    let mem_refs = (total_elems as f64 / vi) as u64;
    let flops = s.voxels * s.iters * 4 * s.l; // two FMA streams per iter
    let extra_instr = (total_elems as f64 * node_overhead) as u64;
    // Working set per fold: the sub-kernel block + vectors; compulsory
    // misses only when the block exceeds the per-core cache.
    let fold_bytes = s.l * s.l * bytes_per_elem;
    let fold_lines = fold_bytes.div_ceil(LINE);
    let resident = fold_bytes <= mach.l2_per_core.size_bytes as u64;
    let l2_misses = if resident {
        s.voxels * s.folds * fold_lines // one cold pass per fold
    } else {
        s.voxels * s.folds * fold_lines * 4 // re-streamed during iterations
    };
    let mut c = counters(flops, vi, mem_refs, vi, l2_misses);
    c.vpu_instructions += extra_instr;
    // The decode overhead is part of the same measured binary whose
    // aggregate intensity `vi` is calibrated, so it carries `vi`
    // elements per instruction on average.
    c.vector_elements += (extra_instr as f64 * vi) as u64;
    c
}

// --------------------------------------------------------------------
// helpers
// --------------------------------------------------------------------

/// Assemble a counter bundle for a kernel whose FMA stream runs at
/// intensity `vi_fma` and whose `mem_refs` memory instructions move
/// `vi_mem` elements each.
fn counters(flops: u64, vi_fma: f64, mem_refs: u64, vi_mem: f64, l2_misses: u64) -> KernelCounters {
    let fma_instr = (flops as f64 / (2.0 * vi_fma)) as u64;
    KernelCounters {
        mem_refs,
        l2_misses,
        flops,
        vpu_instructions: fma_instr + mem_refs,
        vector_elements: (fma_instr as f64 * vi_fma) as u64 + (mem_refs as f64 * vi_mem) as u64,
    }
}

/// The paper's face-scene single-task shapes (§3.3, §5.4).
pub mod face_scene_task {
    use super::*;

    /// Stage-1 shape: 216 epochs of `120×12 · 12×34470`.
    pub fn corr() -> CorrShape {
        CorrShape { v: 120, n: 34_470, m: 216, k: 12 }
    }

    /// Stage-3a shape: 120 voxels of `204×34470 · (·)ᵀ`.
    pub fn syrk() -> SyrkShape {
        SyrkShape { m: 204, n: 34_470, voxels: 120 }
    }

    /// Stage-2 shape.
    pub fn norm() -> NormShape {
        NormShape::of(&corr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::phi_5110p;

    /// Table 5: the paper counts 21.443 B flops for the correlation stage.
    #[test]
    fn corr_flops_match_paper() {
        let f = face_scene_task::corr().flops();
        assert!((f as f64 - 21.443e9).abs() / 21.443e9 < 0.01, "flops {f}");
    }

    /// Table 5: 172.14 B flops for the SVM kernel stage (triangle only).
    #[test]
    fn syrk_flops_match_paper() {
        let f = face_scene_task::syrk().flops();
        assert!((f as f64 - 172.14e9).abs() / 172.14e9 < 0.01, "flops {f}");
    }

    /// Table 6: our matmul (corr + syrk) ≈ 9.97 B refs, 121.8 M misses,
    /// VI 16. The model must land in the same regime.
    #[test]
    fn optimized_matmul_counters_match_table6_regime() {
        let m = phi_5110p();
        let c = corr_optimized(&face_scene_task::corr(), &m)
            + syrk_optimized(&face_scene_task::syrk(), &m);
        let refs = c.mem_refs as f64;
        assert!((6e9..16e9).contains(&refs), "refs {refs:e}");
        let misses = c.l2_misses as f64;
        assert!((9e7..1.6e8).contains(&misses), "misses {misses:e}");
        assert!(c.vector_intensity() > 14.0, "VI {}", c.vector_intensity());
    }

    /// Table 6: MKL ≈ 34.9 B refs, 708.9 M misses, VI 3.6.
    #[test]
    fn mkl_matmul_counters_match_table6_regime() {
        let m = phi_5110p();
        let c = corr_mkl(&face_scene_task::corr(), &m) + syrk_mkl(&face_scene_task::syrk(), &m);
        let refs = c.mem_refs as f64;
        assert!((2.2e10..5e10).contains(&refs), "refs {refs:e}");
        let misses = c.l2_misses as f64;
        assert!((3.5e8..1.1e9).contains(&misses), "misses {misses:e}");
        assert!((3.0..4.5).contains(&c.vector_intensity()), "VI {}", c.vector_intensity());
    }

    /// The optimized/MKL ratios the paper emphasizes: ~3.5x fewer refs,
    /// ~5.8x fewer misses.
    #[test]
    fn optimized_vs_mkl_ratios() {
        let m = phi_5110p();
        let opt = corr_optimized(&face_scene_task::corr(), &m)
            + syrk_optimized(&face_scene_task::syrk(), &m);
        let mkl = corr_mkl(&face_scene_task::corr(), &m) + syrk_mkl(&face_scene_task::syrk(), &m);
        let ref_ratio = mkl.mem_refs as f64 / opt.mem_refs as f64;
        let miss_ratio = mkl.l2_misses as f64 / opt.l2_misses as f64;
        assert!((2.0..6.0).contains(&ref_ratio), "ref ratio {ref_ratio}");
        assert!((3.0..9.0).contains(&miss_ratio), "miss ratio {miss_ratio}");
    }

    /// Table 7: merged ≈ 1.93 B refs / 67.5 M misses; separated ≈ 4.35 B /
    /// 188.1 M (rows include stage 1). Check ratios.
    #[test]
    fn merged_vs_separated_matches_table7_shape() {
        let m = phi_5110p();
        let corr = corr_optimized(&face_scene_task::corr(), &m);
        let merged = corr + norm_merged(&face_scene_task::norm(), &m);
        let separated = corr + norm_separated(&face_scene_task::norm(), &m);
        assert!(merged.mem_refs < separated.mem_refs);
        let miss_ratio = separated.l2_misses as f64 / merged.l2_misses as f64;
        // Paper: 188.1/67.5 = 2.79.
        assert!((1.8..4.0).contains(&miss_ratio), "miss ratio {miss_ratio}");
    }

    /// Table 1 row 2: baseline normalization ≈ 6.2 B refs, 179 M misses.
    #[test]
    fn baseline_norm_matches_table1_regime() {
        let m = phi_5110p();
        let c = norm_baseline(&face_scene_task::norm(), &m);
        assert!((4e9..9e9).contains(&(c.mem_refs as f64)), "refs {:e}", c.mem_refs as f64);
        assert!((1.2e8..2.5e8).contains(&(c.l2_misses as f64)), "misses {:e}", c.l2_misses as f64);
        assert!((c.vector_intensity() - 8.5).abs() < 1.0);
    }

    /// SVM models: LibSVM must have far more references per unit work and
    /// far lower intensity than PhiSVM.
    #[test]
    fn svm_model_orderings() {
        let m = phi_5110p();
        let s = SvmShape { l: 192, folds: 17, voxels: 120, iters: 5000 };
        let lib = svm_cv(SvmImpl::LibSvm, &s, &m);
        let opt = svm_cv(SvmImpl::OptimizedLibSvm, &s, &m);
        let phi = svm_cv(SvmImpl::PhiSvm, &s, &m);
        assert!(lib.mem_refs > opt.mem_refs);
        assert!(opt.mem_refs >= phi.mem_refs);
        assert!(lib.vector_intensity() < 3.0, "lib VI {}", lib.vector_intensity());
        assert!(phi.vector_intensity() > 9.0, "phi VI {}", phi.vector_intensity());
        assert!(lib.vpu_instructions > 3 * phi.vpu_instructions);
    }

    #[test]
    fn counters_scale_linearly_in_voxels() {
        let m = phi_5110p();
        let s1 = SyrkShape { m: 52, n: 700, voxels: 1 };
        let s4 = SyrkShape { m: 52, n: 700, voxels: 4 };
        let c1 = syrk_optimized(&s1, &m);
        let c4 = syrk_optimized(&s4, &m);
        assert_eq!(c4.l2_misses, 4 * c1.l2_misses);
        assert_eq!(c4.flops, 4 * c1.flops);
    }

    /// On a machine with big per-core caches (the Xeon), MKL's SYRK miss
    /// count must collapse toward compulsory — the §5.5 effect.
    #[test]
    fn mkl_misses_shrink_on_big_caches() {
        let phi = phi_5110p();
        let xeon = crate::machine::xeon_e5_2670();
        // Scaled problem where a 32-row slab fits the Xeon LLC share but
        // not the Phi L2.
        let s = SyrkShape { m: 204, n: 8000, voxels: 1 };
        let on_phi = syrk_mkl(&s, &phi);
        let on_xeon = syrk_mkl(&s, &xeon);
        assert!(
            on_xeon.l2_misses < on_phi.l2_misses,
            "xeon {} !< phi {}",
            on_xeon.l2_misses,
            on_phi.l2_misses
        );
    }
}
