//! Machine models: the Intel Xeon Phi 5110P coprocessor and the Xeon
//! E5-2670 processor of the paper's testbed (§2, §5.1, §5.5).

use crate::cache::CacheConfig;

/// Architectural parameters the time and counter models consume.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads per core (4 on the Phi, 2 with hyper-threading on
    /// the Xeon).
    pub threads_per_core: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Single-precision lanes per vector register (16 on the Phi's 512-bit
    /// VPU, 8 for AVX on the Xeon).
    pub vpu_lanes: usize,
    /// Per-core private last-level cache the kernels block for (the Phi's
    /// 512 KB L2; the Xeon's per-core share of LLC, ~1.28 MB/thread
    /// per §5.5 — modeled as 2.5 MB/core).
    pub l2_per_core: CacheConfig,
    /// Average exposed latency of an L2/LLC miss, in nanoseconds
    /// (~300 ns on the Phi per [Fang et al.]; ~85 ns to DRAM on the Xeon).
    pub l2_miss_latency_ns: f64,
    /// Peak single-precision GFLOP/s (2,020 for the 5110P per §2;
    /// 8 cores × 2.6 GHz × 8 lanes × 2 FMA = 332.8 for the E5-2670).
    pub peak_sp_gflops: f64,
    /// Sustained instructions per cycle achievable by a *single* thread.
    /// A KNC core cannot issue from the same thread in consecutive
    /// cycles and is in-order (~0.25 effective); the out-of-order Xeon
    /// sustains well above 1. Drives the per-voxel serial SVM stage.
    pub ipc_per_thread: f64,
    /// Usable device memory in bytes (~6 GB on the Phi after the on-board
    /// OS reservation; host memory is effectively unconstrained and the
    /// Xeon model uses the node's 256 GB).
    pub usable_memory_bytes: u64,
}

impl MachineConfig {
    /// Total hardware threads.
    pub(crate) fn total_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Aggregate instruction-issue throughput in instructions/second,
    /// modeling one (vector) instruction issued per core per cycle.
    pub(crate) fn issue_rate(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9
    }

    /// The ideal vectorization intensity (one full vector per VPU
    /// instruction).
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn ideal_vector_intensity(&self) -> f64 {
        self.vpu_lanes as f64
    }
}

/// The Intel Xeon Phi 5110P coprocessor (paper §2, Fig. 2): 60 in-order
/// cores at 1053 MHz, 4 threads/core, 512 KB 8-way L2 per core, 512-bit
/// VPU, 2.02 SP TFLOPS peak, ~6 GB usable of 8 GB GDDR.
pub fn phi_5110p() -> MachineConfig {
    MachineConfig {
        name: "Xeon Phi 5110P",
        cores: 60,
        threads_per_core: 4,
        clock_ghz: 1.053,
        vpu_lanes: 16,
        l2_per_core: CacheConfig { size_bytes: 512 * 1024, line_bytes: 64, associativity: 8 },
        l2_miss_latency_ns: 300.0,
        peak_sp_gflops: 2020.0,
        ipc_per_thread: 0.25,
        usable_memory_bytes: 6 * 1024 * 1024 * 1024,
    }
}

/// The Intel Xeon E5-2670 (paper §5.1, §5.5): 8 out-of-order cores at
/// 2.6 GHz, 2-way hyper-threading, 20 MB shared LLC (≈1.28 MB per
/// thread), 256-bit AVX.
pub fn xeon_e5_2670() -> MachineConfig {
    MachineConfig {
        name: "Xeon E5-2670",
        cores: 8,
        threads_per_core: 2,
        clock_ghz: 2.6,
        vpu_lanes: 8,
        // Per-core LLC share: 20 MB / 8 cores = 2.5 MB, 20-way like SNB LLC.
        l2_per_core: CacheConfig { size_bytes: 2560 * 1024, line_bytes: 64, associativity: 20 },
        l2_miss_latency_ns: 85.0,
        peak_sp_gflops: 332.8,
        ipc_per_thread: 1.5,
        usable_memory_bytes: 256 * 1024 * 1024 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_matches_paper_section2() {
        let m = phi_5110p();
        assert_eq!(m.cores, 60);
        assert_eq!(m.total_threads(), 240);
        assert_eq!(m.vpu_lanes, 16);
        assert_eq!(m.l2_per_core.size_bytes, 512 * 1024);
        assert_eq!(m.l2_per_core.line_bytes, 64);
        // Peak SP performance ~2.02 TFLOPS.
        assert!((m.peak_sp_gflops - 2020.0).abs() < 1.0);
        // 60 cores x 1.053 GHz x 16 lanes x 2 (FMA) ≈ 2022 GFLOPS —
        // consistent with the quoted peak.
        let derived = m.cores as f64 * m.clock_ghz * m.vpu_lanes as f64 * 2.0;
        assert!((derived - m.peak_sp_gflops).abs() / m.peak_sp_gflops < 0.01);
    }

    #[test]
    fn xeon_matches_paper_section55() {
        let m = xeon_e5_2670();
        assert_eq!(m.total_threads(), 16);
        assert_eq!(m.vpu_lanes, 8);
        // 20MB LLC / 16 threads = 1.25MB per thread ≈ paper's 1.28MB figure.
        let per_thread = (m.l2_per_core.size_bytes * m.cores) as f64 / m.total_threads() as f64;
        assert!(per_thread >= 1.2 * 1024.0 * 1024.0);
    }

    #[test]
    fn phi_cache_geometry_is_valid() {
        // n_sets() panics on inconsistent geometry.
        assert!(phi_5110p().l2_per_core.n_sets() > 0);
        assert!(xeon_e5_2670().l2_per_core.n_sets() > 0);
    }

    #[test]
    fn issue_rate_scales_with_cores() {
        let phi = phi_5110p();
        assert!((phi.issue_rate() - 60.0 * 1.053e9).abs() < 1e6);
    }
}
