//! Trace-driven validation of the analytic miss models.
//!
//! Each function replays the *exact line-granularity access pattern* of
//! one kernel variant through the set-associative cache model and returns
//! the measured statistics. Property tests pin the closed-form models in
//! [`crate::analytic`] to these traces on small shapes; the full-size
//! numbers reported by the harness are then extrapolations of a validated
//! model (full-size traces would need ~10¹⁰ simulated accesses).
//!
//! Address-space layout: operands are laid out back-to-back in a single
//! virtual address space (`A`, then per-epoch `B` matrices, then `C`,
//! then packing buffers), matching the contiguous allocations the real
//! kernels use.

use crate::analytic::{CorrShape, NormShape, SyrkShape};
use crate::cache::{CacheConfig, CacheSim, CacheStats};

const ELEM: u64 = 4;

/// Layout of the correlation stage's address space.
struct CorrSpace {
    /// Base of epoch `e`'s `k × n` brain matrix.
    b: Vec<u64>,
    /// Base of epoch `e`'s `v × k` assigned block.
    a: Vec<u64>,
    /// Base of the `(v·m) × n` interleaved output.
    c: u64,
    /// Base of the packing scratch (small, cache-resident).
    pack: u64,
}

impl CorrSpace {
    fn new(s: &CorrShape) -> Self {
        let mut cursor = 0u64;
        let mut b = Vec::new();
        let mut a = Vec::new();
        for _ in 0..s.m {
            b.push(cursor);
            cursor += s.k * s.n * ELEM;
            a.push(cursor);
            cursor += s.v * s.k * ELEM;
        }
        let c = cursor;
        cursor += s.v * s.m * s.n * ELEM;
        CorrSpace { b, a, c, pack: cursor }
    }

    /// Address of output element for (voxel, epoch, column).
    fn c_addr(&self, s: &CorrShape, v: u64, e: u64, j: u64) -> u64 {
        self.c + ((v * s.m + e) * s.n + j) * ELEM
    }
}

/// Replay the optimized tall-skinny correlation kernel (strip-major,
/// subject/epoch-inner loop order — the merged-compatible schedule of
/// Fig. 5) with strip width `strip` and voxel groups of `mr`.
///
/// Returns `(stats, c_tile_resident)` where the second component reports
/// whether the per-(voxel-group × epoch-group) output tile stayed within
/// one strip — the precondition for merging stage 2 at zero miss cost.
///
/// # Panics
/// If `strip`, `mr`, or `epochs_per_group` is zero, or the shape
/// overflows the address layout.
pub fn trace_corr_optimized(
    s: &CorrShape,
    cfg: CacheConfig,
    strip: u64,
    epochs_per_group: u64,
) -> CacheStats {
    let space = CorrSpace::new(s);
    let mut cache = CacheSim::new(cfg);
    let mr = 8u64;
    let strip = strip.max(16);
    let eg = epochs_per_group.max(1);

    let mut j0 = 0;
    while j0 < s.n {
        let w = strip.min(s.n - j0);
        // Epoch groups (one subject's worth at a time in the merged
        // schedule).
        let mut e0 = 0;
        while e0 < s.m {
            let ecnt = eg.min(s.m - e0);
            for e in e0..e0 + ecnt {
                // Pack this epoch's strip of B: read source, write pack.
                for l in 0..s.k {
                    cache.access_range(space.b[e as usize] + (l * s.n + j0) * ELEM, w * ELEM);
                }
                cache.access_range(space.pack, s.k * w * ELEM);
            }
            let mut v0 = 0;
            while v0 < s.v {
                let vg = mr.min(s.v - v0);
                for e in e0..e0 + ecnt {
                    // Read the A block for this voxel group and epoch.
                    cache.access_range(space.a[e as usize] + v0 * s.k * ELEM, vg * s.k * ELEM);
                    // Microkernel consumes the packed strip again.
                    cache.access_range(space.pack, s.k * w * ELEM);
                    // Write the C tile rows (interleaved layout).
                    for v in v0..v0 + vg {
                        cache.access_range(space.c_addr(s, v, e, j0), w * ELEM);
                    }
                }
                v0 += vg;
            }
            e0 += ecnt;
        }
        j0 += w;
    }
    cache.stats()
}

/// Replay the baseline per-epoch MKL-style GEMM: for every epoch, a
/// packing pass streams `B` into a large packed buffer, the compute pass
/// streams the packed copy back, and `C` is written — no strip blocking,
/// so nothing survives in L2 between phases.
// audit: allow(panicpath) — epoch indices range over the shape that sized the address space; audit: allow(deadpub) — library API exercised by unit tests
pub fn trace_corr_mkl(s: &CorrShape, cfg: CacheConfig) -> CacheStats {
    let space = CorrSpace::new(s);
    let mut cache = CacheSim::new(cfg);
    // The packed buffer is full-size (k × n), far beyond L2.
    let packed = space.pack;
    for e in 0..s.m {
        // Pass 1: pack B (read B, write packed).
        cache.access_range(space.b[e as usize], s.k * s.n * ELEM);
        cache.access_range(packed, s.k * s.n * ELEM);
        // Pass 2: compute — stream the packed copy, read A, write C.
        cache.access_range(packed, s.k * s.n * ELEM);
        cache.access_range(space.a[e as usize], s.v * s.k * ELEM);
        for v in 0..s.v {
            cache.access_range(space.c_addr(s, v, e, 0), s.n * ELEM);
        }
    }
    cache.stats()
}

/// Replay the separated normalization (optimization #2 *off*): after the
/// whole correlation stage, two streaming passes over the `elems`-element
/// output (fused Fisher+stats pass, then z-apply).
pub fn trace_norm_separated(s: &NormShape, cfg: CacheConfig, c_base: u64) -> CacheStats {
    let mut cache = CacheSim::new(cfg);
    cache.access_range(c_base, s.elems * ELEM);
    cache.access_range(c_base, s.elems * ELEM);
    cache.stats()
}

/// Replay the merged normalization's *extra* accesses: it re-touches each
/// output tile immediately after the correlation kernel wrote it. The
/// caller supplies the same cache that just ran
/// [`trace_corr_optimized`]-style tile writes; here we model the ideal
/// schedule by touching tiles of `tile_elems` twice right after writing.
pub fn trace_norm_merged(
    s: &NormShape,
    cfg: CacheConfig,
    c_base: u64,
    tile_elems: u64,
) -> CacheStats {
    // A faithful merged trace interleaves with the producer; the model
    // here writes each tile then immediately normalizes it (read + write
    // again), which measures whether the tile size keeps everything L2
    // resident.
    let mut cache = CacheSim::new(cfg);
    let tile = tile_elems.max(1);
    let mut off = 0;
    while off < s.elems {
        let cur = tile.min(s.elems - off);
        let base = c_base + off * ELEM;
        cache.access_range(base, cur * ELEM); // producer write
        cache.access_range(base, cur * ELEM); // fisher+stats (hit if resident)
        cache.access_range(base, cur * ELEM); // z-apply (hit if resident)
        off += cur;
    }
    cache.stats()
}

/// Replay the optimized panel SYRK (one voxel): panels of `panel_k`
/// columns of `A` are packed once and consumed by every lower-triangle
/// tile; `C` stays resident.
pub fn trace_syrk_optimized(s: &SyrkShape, cfg: CacheConfig, panel_k: u64) -> CacheStats {
    let mut cache = CacheSim::new(cfg);
    let a_base = 0u64;
    let c_base = s.m * s.n * ELEM;
    let pack_base = c_base + s.m * s.m * ELEM;
    let mr = 8u64;
    let nr = 16u64;
    for _voxel in 0..s.voxels {
        let mut p = 0;
        while p < s.n {
            let kp = panel_k.min(s.n - p);
            // Pack: read A[:, p..p+kp] row by row, write the pack buffer.
            for i in 0..s.m {
                cache.access_range(a_base + (i * s.n + p) * ELEM, kp * ELEM);
            }
            cache.access_range(pack_base, s.m * kp * ELEM);
            // Tiles: consume the pack buffer (resident) and C tiles.
            let mut i0 = 0;
            while i0 < s.m {
                let mut j0 = 0;
                while j0 <= i0 && j0 < s.m {
                    // b-panel build re-reads A rows j0..j0+nr in the panel
                    // (resident after the pack read).
                    for j in j0..(j0 + nr).min(s.m) {
                        cache.access_range(a_base + (j * s.n + p) * ELEM, kp * ELEM);
                    }
                    cache.access_range(pack_base + i0 * kp * ELEM, mr.min(s.m - i0) * kp * ELEM);
                    for i in i0..(i0 + mr).min(s.m) {
                        cache.access_range(c_base + (i * s.m + j0) * ELEM, nr.min(s.m - j0) * ELEM);
                    }
                    j0 += nr;
                }
                i0 += mr;
            }
            p += kp;
        }
    }
    cache.stats()
}

/// Replay the MKL-style square-blocked SYRK: each `t × t` tile of `C`
/// streams two `t × n` slabs of `A` end to end.
// audit: allow(deadpub) — library API exercised by unit tests; kept for external use
pub fn trace_syrk_mkl(s: &SyrkShape, cfg: CacheConfig, t: u64) -> CacheStats {
    let mut cache = CacheSim::new(cfg);
    let a_base = 0u64;
    let c_base = s.m * s.n * ELEM;
    for _voxel in 0..s.voxels {
        let mut i0 = 0;
        while i0 < s.m {
            let ti = t.min(s.m - i0);
            let mut j0 = 0;
            while j0 <= i0 {
                let tj = t.min(s.m - j0);
                // Stream both slabs.
                for i in i0..i0 + ti {
                    cache.access_range(a_base + i * s.n * ELEM, s.n * ELEM);
                }
                for j in j0..j0 + tj {
                    cache.access_range(a_base + j * s.n * ELEM, s.n * ELEM);
                }
                for i in i0..i0 + ti {
                    cache.access_range(c_base + (i * s.m + j0) * ELEM, tj * ELEM);
                }
                j0 += t;
            }
            i0 += t;
        }
    }
    cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;

    fn tiny_l2() -> CacheConfig {
        // A small L2 so reuse effects show at test scale: 32 KB, 8-way.
        CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, associativity: 8 }
    }

    fn corr_shape() -> CorrShape {
        CorrShape { v: 16, n: 768, m: 8, k: 12 }
    }

    #[test]
    fn optimized_corr_misses_near_compulsory() {
        let s = corr_shape();
        let stats = trace_corr_optimized(&s, tiny_l2(), 128, 4);
        // Compulsory: B once per epoch + C once + A once (+ pack buffer).
        let compulsory =
            (s.m * s.k * s.n * ELEM + s.v * s.m * s.n * ELEM + s.m * s.v * s.k * ELEM) / 64;
        let misses = stats.misses;
        assert!(
            misses as f64 <= compulsory as f64 * 1.6,
            "optimized corr misses {misses} vs compulsory {compulsory}"
        );
    }

    #[test]
    fn mkl_corr_misses_exceed_optimized() {
        let s = corr_shape();
        let opt = trace_corr_optimized(&s, tiny_l2(), 128, 4);
        let mkl = trace_corr_mkl(&s, tiny_l2());
        assert!(
            mkl.misses as f64 > opt.misses as f64 * 1.3,
            "mkl {} vs opt {}",
            mkl.misses,
            opt.misses
        );
    }

    #[test]
    fn analytic_corr_model_tracks_trace() {
        let s = corr_shape();
        let trace = trace_corr_optimized(&s, tiny_l2(), 128, 4);
        let model = analytic::corr_optimized(&s, &crate::machine::phi_5110p()).l2_misses;
        let ratio = trace.misses as f64 / model as f64;
        assert!(
            (0.6..1.7).contains(&ratio),
            "trace {} vs model {model} (ratio {ratio})",
            trace.misses
        );
    }

    #[test]
    fn merged_norm_is_nearly_free_when_tiles_fit() {
        let s = NormShape { elems: 16 * 8 * 768 };
        // 2 KB tiles fit the 32 KB cache easily.
        let merged = trace_norm_merged(&s, tiny_l2(), 0, 512);
        let separated = trace_norm_separated(&s, tiny_l2(), 0);
        // Merged: only the producer's compulsory write-misses; the two
        // normalization touches hit.
        let compulsory = (s.elems * ELEM) / 64;
        assert!(merged.misses <= compulsory + 16, "merged misses {}", merged.misses);
        // Separated re-streams twice.
        assert!(
            separated.misses as f64 >= 1.8 * compulsory as f64,
            "separated misses {}",
            separated.misses
        );
    }

    #[test]
    fn merged_norm_thrashes_when_tiles_exceed_cache() {
        let s = NormShape { elems: 64 * 1024 };
        // Tile of 48 K elements = 192 KB >> 32 KB cache: merging stops paying.
        let big_tile = trace_norm_merged(&s, tiny_l2(), 0, 48 * 1024);
        let small_tile = trace_norm_merged(&s, tiny_l2(), 0, 1024);
        assert!(
            big_tile.misses > small_tile.misses * 2,
            "big {} vs small {}",
            big_tile.misses,
            small_tile.misses
        );
    }

    #[test]
    fn optimized_syrk_streams_a_once() {
        let s = SyrkShape { m: 24, n: 960, voxels: 1 };
        let stats = trace_syrk_optimized(&s, tiny_l2(), 96);
        let a_lines = (s.m * s.n * ELEM) / 64;
        assert!(
            stats.misses as f64 <= a_lines as f64 * 1.5,
            "syrk opt misses {} vs A stream {a_lines}",
            stats.misses
        );
    }

    #[test]
    fn mkl_syrk_streams_a_many_times() {
        let s = SyrkShape { m: 24, n: 960, voxels: 1 };
        let opt = trace_syrk_optimized(&s, tiny_l2(), 96);
        let mkl = trace_syrk_mkl(&s, tiny_l2(), 8);
        assert!(
            mkl.misses as f64 > 2.0 * opt.misses as f64,
            "mkl {} vs opt {}",
            mkl.misses,
            opt.misses
        );
    }

    #[test]
    fn analytic_syrk_model_tracks_trace() {
        let s = SyrkShape { m: 24, n: 960, voxels: 2 };
        let trace = trace_syrk_optimized(&s, tiny_l2(), 96);
        let model = analytic::syrk_optimized(&s, &crate::machine::phi_5110p()).l2_misses;
        let ratio = trace.misses as f64 / model as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "trace {} vs model {model} (ratio {ratio})",
            trace.misses
        );
    }

    #[test]
    fn analytic_mkl_syrk_model_tracks_trace() {
        let s = SyrkShape { m: 64, n: 960, voxels: 1 };
        let trace = trace_syrk_mkl(&s, tiny_l2(), 32);
        let model = analytic::syrk_mkl(&s, &crate::machine::phi_5110p()).l2_misses;
        let ratio = trace.misses as f64 / model as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "trace {} vs model {model} (ratio {ratio})",
            trace.misses
        );
    }
}
