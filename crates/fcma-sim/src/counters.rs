//! Performance-counter abstraction mirroring the vTune quantities the
//! paper reports (Tables 1, 6, 7, 8): memory references, L2 misses,
//! floating-point work, and vectorization intensity.

use std::ops::{Add, AddAssign};

/// Counter bundle for one kernel execution.
///
/// Semantics follow the paper's vTune usage:
/// * `mem_refs` — retired memory-access *instructions* (a 16-wide vector
///   load is one reference, as is a scalar load);
/// * `l2_misses` — line-granularity misses in the per-core L2 model;
/// * `flops` — useful floating-point operations (an FMA counts as 2);
/// * `vpu_instructions` / `vector_elements` — executed VPU instructions
///   and the number of elements they processed; their ratio is the
///   paper's *vectorization intensity* (§2: "the number of vectorized
///   elements divided by the number of executed VPU instructions").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Memory-access instructions.
    pub mem_refs: u64,
    /// L2 cache line misses.
    pub l2_misses: u64,
    /// Floating point operations.
    pub flops: u64,
    /// VPU instructions executed.
    pub vpu_instructions: u64,
    /// Total elements processed by those VPU instructions.
    pub vector_elements: u64,
}

impl KernelCounters {
    /// Vectorization intensity: elements per VPU instruction (peak 16 on
    /// the Phi). Zero when no VPU instructions ran.
    pub fn vector_intensity(&self) -> f64 {
        if self.vpu_instructions == 0 {
            0.0
        } else {
            self.vector_elements as f64 / self.vpu_instructions as f64
        }
    }

    /// GFLOP/s given an execution time in milliseconds.
    pub fn gflops(&self, elapsed_ms: f64) -> f64 {
        if elapsed_ms <= 0.0 {
            return 0.0;
        }
        self.flops as f64 / (elapsed_ms * 1e-3) / 1e9
    }

    /// Convenience constructor for a kernel with uniform vector width:
    /// `elements` processed `width`-wide plus `scalar_tail` scalar
    /// element-operations, `mem_refs` memory instructions, and the given
    /// flops/misses.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn from_vector_profile(
        elements: u64,
        width: u64,
        scalar_tail: u64,
        mem_refs: u64,
        flops: u64,
        l2_misses: u64,
    ) -> Self {
        assert!(width > 0, "vector width must be positive");
        let vec_instr = elements.div_ceil(width);
        KernelCounters {
            mem_refs,
            l2_misses,
            flops,
            vpu_instructions: vec_instr + scalar_tail,
            vector_elements: elements + scalar_tail,
        }
    }
}

impl Add for KernelCounters {
    type Output = KernelCounters;
    fn add(self, o: KernelCounters) -> KernelCounters {
        KernelCounters {
            mem_refs: self.mem_refs + o.mem_refs,
            l2_misses: self.l2_misses + o.l2_misses,
            flops: self.flops + o.flops,
            vpu_instructions: self.vpu_instructions + o.vpu_instructions,
            vector_elements: self.vector_elements + o.vector_elements,
        }
    }
}

impl AddAssign for KernelCounters {
    fn add_assign(&mut self, o: KernelCounters) {
        *self = *self + o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_intensity_basic() {
        let c = KernelCounters { vpu_instructions: 10, vector_elements: 160, ..Default::default() };
        assert_eq!(c.vector_intensity(), 16.0);
        assert_eq!(KernelCounters::default().vector_intensity(), 0.0);
    }

    #[test]
    fn scalar_tail_lowers_intensity() {
        // 160 elements fully vectorized 16-wide (10 instrs) + 40 scalar
        // ops → VI = 200 / 50 = 4.
        let c = KernelCounters::from_vector_profile(160, 16, 40, 0, 0, 0);
        assert_eq!(c.vpu_instructions, 50);
        assert_eq!(c.vector_elements, 200);
        assert_eq!(c.vector_intensity(), 4.0);
    }

    #[test]
    fn gflops_computation() {
        let c = KernelCounters { flops: 2_000_000_000, ..Default::default() };
        assert!((c.gflops(1000.0) - 2.0).abs() < 1e-9);
        assert_eq!(c.gflops(0.0), 0.0);
    }

    #[test]
    fn addition_accumulates_fieldwise() {
        let a = KernelCounters {
            mem_refs: 1,
            l2_misses: 2,
            flops: 3,
            vpu_instructions: 4,
            vector_elements: 5,
        };
        let mut b = a;
        b += a;
        assert_eq!(b, a + a);
        assert_eq!(b.mem_refs, 2);
        assert_eq!(b.vector_elements, 10);
    }
}
