//! Set-associative cache simulator.
//!
//! A line-granularity LRU cache model used to replay the access patterns
//! of FCMA's kernels and measure the L2 miss counts the paper reports via
//! vTune (Tables 1, 6, 7). The model is deliberately simple — physical
//! addresses, LRU per set, no prefetcher — because the quantities the
//! paper reasons about (compulsory streaming misses vs. blocked reuse)
//! are first-order effects a basic model captures.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (64 on both the Phi and the Xeon).
    pub line_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (capacity not divisible
    /// into `associativity` ways of whole lines).
    pub(crate) fn n_sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.associativity > 0, "associativity must be positive");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.associativity) && lines > 0,
            "cache geometry inconsistent: {} lines, {} ways",
            lines,
            self.associativity
        );
        lines / self.associativity
    }
}

/// Access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct CacheStats {
    /// Line accesses that hit.
    pub hits: u64,
    /// Line accesses that missed (including compulsory).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    n_sets: usize,
    /// `sets[s]` holds up to `associativity` tags, most recently used last.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Construct an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        let n_sets = config.n_sets();
        CacheSim { config, n_sets, sets: vec![Vec::new(); n_sets], stats: CacheStats::default() }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Touch the line containing byte address `addr`; returns `true` on hit.
    // audit: allow(panicpath) — set_idx is line % n_sets, always < n_sets
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.n_sets as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let t = set.remove(pos);
            set.push(t);
            self.stats.hits += 1;
            true
        } else {
            if set.len() >= self.config.associativity {
                set.remove(0); // evict LRU
            }
            set.push(line);
            self.stats.misses += 1;
            false
        }
    }

    /// Touch every line overlapping `[addr, addr + bytes)`.
    pub(crate) fn access_range(&mut self, addr: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let lb = self.config.line_bytes as u64;
        let first = addr / lb;
        let last = (addr + bytes - 1) / lb;
        for line in first..=last {
            self.access(line * lb);
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clear contents and statistics.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheConfig {
        // 4 sets x 2 ways x 64B = 512B
        CacheConfig { size_bytes: 512, line_bytes: 64, associativity: 2 }
    }

    #[test]
    fn geometry() {
        assert_eq!(small().n_sets(), 4);
        let phi = CacheConfig { size_bytes: 512 * 1024, line_bytes: 64, associativity: 8 };
        assert_eq!(phi.n_sets(), 1024);
    }

    #[test]
    #[should_panic(expected = "geometry inconsistent")]
    fn rejects_bad_geometry() {
        let _ = CacheConfig { size_bytes: 100, line_bytes: 64, associativity: 3 }.n_sets();
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = CacheSim::new(small());
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = CacheSim::new(small());
        // Set index = (addr/64) % 4. Lines 0, 4, 8 all map to set 0.
        let line = |i: u64| i * 4 * 64;
        assert!(!c.access(line(0)));
        assert!(!c.access(line(1)));
        assert!(!c.access(line(2))); // evicts line 0
        assert!(!c.access(line(0))); // miss again
        assert!(c.access(line(2))); // still resident
    }

    #[test]
    fn lru_order_updated_on_hit() {
        let mut c = CacheSim::new(small());
        let line = |i: u64| i * 4 * 64;
        c.access(line(0));
        c.access(line(1));
        c.access(line(0)); // 0 becomes MRU
        c.access(line(2)); // evicts 1, not 0
        assert!(c.access(line(0)));
        assert!(!c.access(line(1)));
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut c = CacheSim::new(small());
        c.access_range(10, 120); // spans lines 0 and 1 (bytes 10..130 -> lines 0,1,2)
        assert_eq!(c.stats().accesses(), 3);
        c.access_range(0, 0);
        assert_eq!(c.stats().accesses(), 3);
    }

    #[test]
    fn streaming_larger_than_cache_always_misses() {
        let mut c = CacheSim::new(small());
        // Stream 4 KB twice: no reuse possible in a 512B cache.
        for pass in 0..2 {
            let _ = pass;
            for addr in (0..4096u64).step_by(64) {
                c.access(addr);
            }
        }
        assert_eq!(c.stats().misses, 128);
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn working_set_within_cache_fully_reuses() {
        let mut c = CacheSim::new(small());
        // 512B working set = exactly capacity; second pass must fully hit
        // (direct mapping here: 8 lines over 4 sets x 2 ways, 2 per set).
        for pass in 0..3 {
            let _ = pass;
            for addr in (0..512u64).step_by(64) {
                c.access(addr);
            }
        }
        assert_eq!(c.stats().misses, 8);
        assert_eq!(c.stats().hits, 16);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = CacheSim::new(small());
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn miss_ratio() {
        let mut c = CacheSim::new(small());
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }
}
