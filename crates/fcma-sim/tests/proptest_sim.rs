//! Property-based tests for the simulator: cache-model laws, analytic
//! model monotonicity, and trace/analytic agreement across random shapes.

use fcma_sim::analytic::{self, CorrShape, NormShape, SyrkShape};
use fcma_sim::{phi_5110p, trace, CacheConfig, CacheSim, TimeModel};
use proptest::prelude::*;

fn small_cache() -> CacheConfig {
    CacheConfig { size_bytes: 16 * 1024, line_bytes: 64, associativity: 4 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cache inclusion law: repeating the same access sequence twice can
    /// only add hits, never new misses beyond the first pass's.
    #[test]
    fn second_pass_never_adds_misses_beyond_first(
        addrs in proptest::collection::vec(0u64..32 * 1024, 1..200),
    ) {
        let mut one = CacheSim::new(small_cache());
        for &a in &addrs {
            one.access(a);
        }
        let first_misses = one.stats().misses;
        // Continue with the same sequence again on the same cache.
        for &a in &addrs {
            one.access(a);
        }
        let second_misses = one.stats().misses - first_misses;
        prop_assert!(second_misses <= first_misses);
    }

    /// A larger cache (same line size, same associativity scaling) never
    /// misses more on the same trace.
    #[test]
    fn bigger_cache_never_worse(
        addrs in proptest::collection::vec(0u64..64 * 1024, 1..300),
    ) {
        let small = CacheConfig { size_bytes: 8 * 1024, line_bytes: 64, associativity: 4 };
        let big = CacheConfig { size_bytes: 64 * 1024, line_bytes: 64, associativity: 32 };
        // Note: LRU with higher associativity *and* capacity on the same
        // set count is strictly inclusive.
        let mut cs = CacheSim::new(small);
        let mut cb = CacheSim::new(big);
        for &a in &addrs {
            cs.access(a);
            cb.access(a);
        }
        prop_assert!(cb.stats().misses <= cs.stats().misses);
    }

    /// Stats identities: hits + misses == accesses; miss ratio in [0,1].
    #[test]
    fn stats_identities(addrs in proptest::collection::vec(0u64..8192, 0..100)) {
        let mut c = CacheSim::new(small_cache());
        for &a in &addrs {
            c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&s.miss_ratio()));
    }

    /// Analytic corr counters scale monotonically in every dimension.
    #[test]
    fn corr_model_is_monotone(
        v in 1u64..32,
        n in 64u64..512,
        m in 1u64..8,
        k in 2u64..16,
    ) {
        let phi = phi_5110p();
        let base = analytic::corr_optimized(&CorrShape { v, n, m, k }, &phi);
        for grow in [
            CorrShape { v: v + 8, n, m, k },
            CorrShape { v, n: n + 128, m, k },
            CorrShape { v, n, m: m + 2, k },
            CorrShape { v, n, m, k: k + 4 },
        ] {
            let c = analytic::corr_optimized(&grow, &phi);
            prop_assert!(c.flops >= base.flops);
            prop_assert!(c.mem_refs >= base.mem_refs);
            prop_assert!(c.l2_misses >= base.l2_misses);
        }
    }

    /// The MKL model never beats the optimized model on refs or misses
    /// for tall-skinny shapes (the paper's structural claim).
    #[test]
    fn mkl_never_beats_optimized(
        v in 8u64..64,
        // Genuinely tall-skinny: one epoch's brain matrix must exceed the
        // Phi L2 (12 × n × 4 B > 512 KB), else MKL needs no packing pass
        // and the miss ordering is a wash.
        n in 16_384u64..64_000,
        m in 2u64..16,
    ) {
        let phi = phi_5110p();
        let s = CorrShape { v, n, m, k: 12 };
        let opt = analytic::corr_optimized(&s, &phi);
        let mkl = analytic::corr_mkl(&s, &phi);
        prop_assert!(mkl.mem_refs >= opt.mem_refs, "{} < {}", mkl.mem_refs, opt.mem_refs);
        prop_assert!(mkl.l2_misses >= opt.l2_misses);
        prop_assert!(mkl.vector_intensity() <= opt.vector_intensity());
    }

    /// Trace-simulated optimized-SYRK misses stay within 2x of the
    /// analytic model across random shapes.
    #[test]
    fn syrk_trace_tracks_model(m in 8u64..40, n in 96u64..768) {
        let phi = phi_5110p();
        let s = SyrkShape { m, n, voxels: 1 };
        // High associativity keeps strided panel reads from conflict-
        // missing (the analytic model counts capacity/compulsory only).
        let cache = CacheConfig { size_bytes: 64 * 1024, line_bytes: 64, associativity: 16 };
        let t = trace::trace_syrk_optimized(&s, cache, 96);
        let model = analytic::syrk_optimized(&s, &phi).l2_misses;
        let ratio = t.misses as f64 / model.max(1) as f64;
        prop_assert!((0.25..3.5).contains(&ratio), "trace {} model {model}", t.misses);
    }

    /// Time model: more counters → more time; more active threads → less.
    #[test]
    fn time_model_is_monotone(
        instr in 1u64..1_000_000_000,
        misses in 0u64..100_000_000,
        threads in 1usize..240,
    ) {
        let phi = phi_5110p();
        let tm = TimeModel::default();
        let c1 = fcma_sim::KernelCounters {
            vpu_instructions: instr,
            l2_misses: misses,
            ..Default::default()
        };
        let c2 = fcma_sim::KernelCounters {
            vpu_instructions: instr * 2,
            l2_misses: misses * 2,
            ..Default::default()
        };
        prop_assert!(tm.kernel_ms(&c2, &phi) >= tm.kernel_ms(&c1, &phi));
        prop_assert!(tm.limited_ms(&c1, &phi, threads) >= tm.kernel_ms(&c1, &phi) - 1e-12);
        prop_assert!(tm.per_thread_ms(&c1, &phi) >= 0.0);
    }

    /// Merged normalization never misses more than separated in the
    /// analytic model, for any size.
    #[test]
    fn merged_never_worse_in_model(elems in 1u64..100_000_000) {
        let phi = phi_5110p();
        let s = NormShape { elems };
        let m = analytic::norm_merged(&s, &phi);
        let sep = analytic::norm_separated(&s, &phi);
        let base = analytic::norm_baseline(&s, &phi);
        prop_assert!(m.l2_misses <= sep.l2_misses);
        prop_assert!(sep.l2_misses <= base.l2_misses);
        prop_assert!(m.mem_refs <= sep.mem_refs);
    }
}
