//! CLI subcommand implementations.

use crate::args::Args;
use fcma_cluster::{run_cluster_with, ChaosExecutor, ClusterConfig};
use fcma_core::{
    offline_analysis, recovery_rate, score_all_voxels, select_top_k, AnalysisConfig,
    BaselineExecutor, OptimizedExecutor, TaskContext, TaskExecutor, VoxelScore,
};
use fcma_fmri::geometry::{extract_clusters, Grid3};
use fcma_fmri::mask::VoxelMask;
use fcma_fmri::{io as fio, presets, Placement};
use fcma_sync::pool::Pool;
use fcma_trace::export::{from_chrome_json, to_chrome_json, to_prometheus_text};
use fcma_trace::slo::{SloRule, SloSpec, SloViolation};
use fcma_trace::{event, Collector};
use std::error::Error;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

type Result<T> = std::result::Result<T, Box<dyn Error>>;

/// Print the command reference.
pub(crate) fn print_help() {
    println!(
        "fcma — full correlation matrix analysis\n\n\
         commands:\n\
         \u{20} generate  synthesize a dataset      --preset tiny|face-scene|attention\n\
         \u{20}                                     --voxels N --subjects S --coupling X\n\
         \u{20}                                     --placement random|blobs --seed N --out STEM\n\
         \u{20} info      describe a dataset        --data STEM\n\
         \u{20} analyze   score every voxel         --data STEM --executor optimized|baseline\n\
         \u{20}                                     --task-size N --top-k K [--out scores.tsv]\n\
         \u{20}                                     [--threads N] kernel threads per worker\n\
         \u{20}                                     (default: $FCMA_THREADS or 1)\n\
         \u{20}                                     [--truth STEM.truth]\n\
         \u{20}                                     [--workers N] run on the fault-tolerant\n\
         \u{20}                                     threaded cluster driver, with\n\
         \u{20}                                     [--retries N] [--task-deadline-ms MS]\n\
         \u{20}                                     [--checkpoint FILE] [--resume]\n\
         \u{20}                                     [--trace-out trace.json] Chrome trace\n\
         \u{20}                                     [--metrics-out metrics.prom] Prometheus text\n\
         \u{20}                                     [--postmortem DIR] flight-recorder dumps\n\
         \u{20}                                     [--chaos-panic-task N] inject one panic on\n\
         \u{20}                                     the task starting at voxel N (fault drill)\n\
         \u{20} report    summarize a trace file    fcma report trace.json [--check]\n\
         \u{20}                                     [--slo slo.toml] enforce latency SLOs\n\
         \u{20} top       per-worker utilization    fcma top trace.json\n\
         \u{20} postmortem summarize a dump         fcma postmortem FILE\n\
         \u{20} offline   nested LOSO analysis      --data STEM --top-k K [--task-size N]\n\
         \u{20} clusters  ROI cluster extraction    --scores scores.tsv --top-k K [--grid X,Y,Z]\n\
         \u{20} mask      threshold-mask a dataset  --data STEM --threshold T --out STEM2\n\
         \u{20} help      this text"
    );
}

fn stem(args: &Args, key: &str) -> Result<PathBuf> {
    Ok(PathBuf::from(args.get(key).ok_or(format!("--{key} is required"))?))
}

/// `fcma generate`
pub(crate) fn generate(args: &Args) -> Result<()> {
    let preset = args.get_or("preset", "tiny");
    let mut cfg = match preset.as_str() {
        "tiny" => presets::tiny(),
        "face-scene" => presets::face_scene_scaled(512),
        "attention" => presets::attention_scaled(512),
        other => return Err(format!("unknown preset {other:?}").into()),
    };
    if let Some(v) = args.get("voxels") {
        cfg.n_voxels = v.parse()?;
        cfg.n_informative = (cfg.n_voxels / 16).max(4) & !1;
    }
    if let Some(v) = args.get("subjects") {
        cfg.n_subjects = v.parse()?;
    }
    if let Some(v) = args.get("coupling") {
        cfg.coupling = v.parse()?;
    }
    if let Some(v) = args.get("seed") {
        cfg.seed = v.parse()?;
    }
    match args.get_or("placement", "random").as_str() {
        "random" => cfg.placement = Placement::Random,
        "blobs" => cfg.placement = Placement::SphericalBlobs,
        other => return Err(format!("unknown placement {other:?}").into()),
    }
    let out = stem(args, "out")?;
    let (dataset, truth) = cfg.generate();
    fio::save_dataset(&out, &dataset)?;
    // Ground truth sidecar: one informative voxel index per line.
    let mut f = std::fs::File::create(out.with_extension("truth"))?;
    for v in &truth.informative {
        writeln!(f, "{v}")?;
    }
    println!(
        "wrote {} ({} voxels, {} subjects, {} epochs) + .epochs + .truth ({} planted voxels)",
        out.with_extension("fcma").display(),
        dataset.n_voxels(),
        dataset.n_subjects(),
        dataset.n_epochs(),
        truth.informative.len()
    );
    Ok(())
}

/// `fcma info`
pub(crate) fn info(args: &Args) -> Result<()> {
    let data = stem(args, "data")?;
    let dataset = fio::load_dataset(&data)?;
    println!("dataset    {}", data.display());
    println!("voxels     {}", dataset.n_voxels());
    println!("timepoints {}", dataset.n_timepoints());
    println!("subjects   {}", dataset.n_subjects());
    println!("epochs     {}", dataset.n_epochs());
    let a = dataset.epochs().iter().filter(|e| e.label == fcma_fmri::Condition::A).count();
    println!("labels     {a} A / {} B", dataset.n_epochs() - a);
    let lens: Vec<usize> = dataset.epochs().iter().map(|e| e.len).collect();
    println!("epoch len  {}..{}", lens.iter().min().unwrap(), lens.iter().max().unwrap());
    Ok(())
}

/// Kernel threads for the executors' pool: `--threads` if given, else
/// the `FCMA_THREADS` environment variable, else 1.
fn threads_of(args: &Args) -> Result<usize> {
    match args.get("threads") {
        Some(v) => {
            let n: usize = v.parse()?;
            if n == 0 {
                return Err("--threads must be at least 1".into());
            }
            Ok(n)
        }
        None => Ok(Pool::from_env().threads()),
    }
}

fn executor_of(args: &Args) -> Result<Arc<dyn TaskExecutor>> {
    let pool = Pool::new(threads_of(args)?);
    match args.get_or("executor", "optimized").as_str() {
        "optimized" => Ok(Arc::new(OptimizedExecutor { pool, ..Default::default() })),
        "baseline" => Ok(Arc::new(BaselineExecutor { pool, ..Default::default() })),
        other => Err(format!("unknown executor {other:?}").into()),
    }
}

/// Build the cluster driver config from the analyze flags.
fn cluster_config_of(args: &Args, task_size: usize) -> Result<ClusterConfig> {
    let checkpoint = args.get("checkpoint").map(PathBuf::from);
    let resume_from = if args.has_flag("resume") {
        let path = checkpoint
            .clone()
            .ok_or("--resume needs --checkpoint FILE to know what to resume from")?;
        if path.exists() {
            Some(path)
        } else {
            eprintln!(
                "warning: --resume requested but checkpoint {} does not exist; starting fresh",
                path.display()
            );
            event!("cluster.resume_missing", path = path.display().to_string());
            None
        }
    } else {
        None
    };
    Ok(ClusterConfig {
        n_workers: args.get_parsed("workers", 0usize, "integer")?,
        task_size,
        kernel_threads: threads_of(args)?,
        retry_budget: args.get_parsed("retries", 2usize, "integer")?,
        task_deadline: {
            let ms = args.get_parsed("task-deadline-ms", 0u64, "integer")?;
            (ms > 0).then(|| std::time::Duration::from_millis(ms))
        },
        checkpoint,
        resume_from,
        postmortem_dir: args.get("postmortem").map(PathBuf::from),
        ..Default::default()
    })
}

/// `fcma analyze`
pub(crate) fn analyze(args: &Args) -> Result<()> {
    let data = stem(args, "data")?;
    let dataset = fio::load_dataset(&data)?;
    let mut exec = executor_of(args)?;
    if let Some(start) = args.get("chaos-panic-task") {
        // Fault drill: one injected panic exercises the whole recovery
        // and observability path (requeue, postmortem, causal trace).
        let start: usize = start.parse()?;
        exec = Arc::new(ChaosExecutor::panic_once(exec, start));
        eprintln!("chaos: will panic once on the task starting at voxel {start}");
    }
    let task_size = args.get_parsed("task-size", 64usize, "integer")?;
    let top_k = args.get_parsed("top-k", 16usize, "integer")?;
    let trace_out = args.get("trace-out").map(PathBuf::from);
    let metrics_out = args.get("metrics-out").map(PathBuf::from);
    // Install the collector before the config is built so the
    // `cluster.resume_missing` event (emitted while resolving --resume)
    // lands in the trace.
    let collector = (trace_out.is_some() || metrics_out.is_some()).then(Collector::new);
    let scoped = collector.as_ref().map(Collector::install_scoped);
    let cluster_cfg = cluster_config_of(args, task_size)?;

    let ctx = TaskContext::full(&dataset);
    let t0 = std::time::Instant::now();
    let scores = if cluster_cfg.n_workers > 0 {
        let run = run_cluster_with(&ctx, Arc::clone(&exec), &cluster_cfg)?;
        eprintln!(
            "cluster run: {} workers, tasks/worker {:?}, {} requeued, {} worker(s) lost, \
             {} voxels resumed from checkpoint",
            cluster_cfg.n_workers,
            run.tasks_per_worker,
            run.requeued_tasks,
            run.failed_workers.len() + run.hung_workers.len(),
            run.resumed_voxels
        );
        run.scores
    } else {
        score_all_voxels(&ctx, exec.as_ref(), task_size, None)
    };
    eprintln!(
        "scored {} voxels with the {} executor in {:.2?}",
        scores.len(),
        exec.name(),
        t0.elapsed()
    );

    if let Some(scoped) = &scoped {
        // Bridge flight-recorder rings into the drained report so the
        // Chrome trace shows recorder events alongside collector spans.
        let report = scoped.drain_with_recorder();
        if let Some(path) = &trace_out {
            std::fs::write(path, to_chrome_json(&report))?;
            eprintln!("wrote trace {}", path.display());
        }
        if let Some(path) = &metrics_out {
            std::fs::write(path, to_prometheus_text(&report))?;
            eprintln!("wrote metrics {}", path.display());
        }
    }

    if let Some(out) = args.get("out") {
        write_scores(Path::new(out), &scores)?;
        eprintln!("wrote {out}");
    }
    let selected = select_top_k(&scores, top_k);
    println!("voxel\taccuracy");
    for &v in &selected {
        println!("{v}\t{:.4}", scores[v].accuracy);
    }
    if let Some(truth_path) = args.get("truth") {
        let truth = read_index_list(Path::new(truth_path))?;
        let rec = recovery_rate(&selected, &truth);
        eprintln!("recovery of planted network: {:.0}%", rec * 100.0);
    }
    Ok(())
}

/// `fcma report` — summarize a Chrome trace written by `analyze --trace-out`.
pub(crate) fn report(args: &Args) -> Result<()> {
    let path = args
        .positional(0)
        .or_else(|| args.get("trace"))
        .ok_or("report needs a trace file: `fcma report trace.json`")?;
    let text = std::fs::read_to_string(path)?;
    let report = from_chrome_json(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", report.summary_table());
    let violations = report.check_consistency();
    if violations.is_empty() {
        if args.has_flag("check") {
            eprintln!("consistency: ok");
        }
    } else {
        for v in &violations {
            eprintln!("consistency violation: {v}");
        }
        if args.has_flag("check") {
            return Err(format!("{} consistency violation(s)", violations.len()).into());
        }
    }
    if let Some(slo_path) = args.get("slo") {
        let spec = SloSpec::parse(&std::fs::read_to_string(slo_path)?)
            .map_err(|e| format!("{slo_path}: {e}"))?;
        let broken: Vec<SloViolation> = spec.check(&report.span_duration_histograms());
        if broken.is_empty() {
            let rules: &[SloRule] = &spec.rules;
            eprintln!("slo: ok ({} rule(s))", rules.len());
        } else {
            for v in &broken {
                eprintln!("{v}");
            }
            return Err(format!("{} SLO violation(s)", broken.len()).into());
        }
    }
    Ok(())
}

/// `fcma top` — per-worker utilization and straggler timeline from a
/// Chrome trace written by `analyze --trace-out`.
pub(crate) fn top(args: &Args) -> Result<()> {
    let path = args
        .positional(0)
        .or_else(|| args.get("trace"))
        .ok_or("top needs a trace file: `fcma top trace.json`")?;
    let text = std::fs::read_to_string(path)?;
    let report = from_chrome_json(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", report.top_table());
    Ok(())
}

/// `fcma postmortem` — validate and summarize a flight-recorder dump.
pub(crate) fn postmortem(args: &Args) -> Result<()> {
    let path = args
        .positional(0)
        .ok_or("postmortem needs a dump file: `fcma postmortem postmortem-....txt`")?;
    let text = std::fs::read_to_string(path)?;
    let summary: fcma_trace::postmortem::PostmortemSummary =
        fcma_trace::postmortem::validate(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("postmortem  {path}");
    println!("trigger     {}", summary.trigger);
    println!("events      {}", summary.events);
    println!("rings       {}", summary.rings);
    println!("chain       {} event(s)", summary.chain_len);
    Ok(())
}

/// `fcma offline`
pub(crate) fn offline(args: &Args) -> Result<()> {
    let data = stem(args, "data")?;
    let dataset = fio::load_dataset(&data)?;
    let exec = executor_of(args)?;
    let cfg = AnalysisConfig {
        task_size: args.get_parsed("task-size", 64usize, "integer")?,
        top_k: args.get_parsed("top-k", 16usize, "integer")?,
    };
    let t0 = std::time::Instant::now();
    let r = offline_analysis(&dataset, exec.as_ref(), &cfg);
    println!("fold\theld-out\ttest-accuracy");
    for f in &r.folds {
        println!("{}\t{}\t{:.4}", f.held_out, f.held_out, f.test_accuracy);
    }
    println!("mean test accuracy\t{:.4}", r.mean_test_accuracy);
    println!("stable ROI ({} voxels)\t{:?}", r.stable.len(), r.stable);
    eprintln!("nested LOSO finished in {:.2?}", t0.elapsed());
    Ok(())
}

/// `fcma clusters`
pub(crate) fn clusters(args: &Args) -> Result<()> {
    let scores_path = stem(args, "scores")?;
    let scores = read_scores(&scores_path)?;
    let top_k = args.get_parsed("top-k", 16usize, "integer")?;
    let selected = select_top_k(&scores, top_k);
    let grid = match args.get("grid") {
        None => Grid3::cube_for(scores.len()),
        Some(spec) => {
            let dims: Vec<usize> =
                spec.split(',').map(str::parse).collect::<std::result::Result<_, _>>()?;
            if dims.len() != 3 {
                return Err("--grid expects X,Y,Z".into());
            }
            Grid3::new(dims[0], dims[1], dims[2])
        }
    };
    let clusters = extract_clusters(&grid, &selected);
    println!("cluster\tsize\tcentroid\tvoxels");
    for (i, c) in clusters.iter().enumerate() {
        let (x, y, z) = c.centroid(&grid);
        println!("{i}\t{}\t({x:.1},{y:.1},{z:.1})\t{:?}", c.len(), c.voxels);
    }
    Ok(())
}

/// `fcma mask`
pub(crate) fn mask(args: &Args) -> Result<()> {
    let data = stem(args, "data")?;
    let out = stem(args, "out")?;
    let threshold: f32 = args.get_parsed("threshold", 0.0f32, "number")?;
    let dataset = fio::load_dataset(&data)?;
    let mask = VoxelMask::threshold_mean_abs(&dataset, threshold);
    if mask.n_kept() == 0 {
        return Err("mask keeps zero voxels; lower --threshold".into());
    }
    let (masked, map) = mask.apply(&dataset);
    fio::save_dataset(&out, &masked)?;
    let mut f = std::fs::File::create(out.with_extension("map"))?;
    for &orig in &map {
        writeln!(f, "{orig}")?;
    }
    println!(
        "kept {} / {} voxels; wrote {} + .epochs + .map",
        mask.n_kept(),
        dataset.n_voxels(),
        out.with_extension("fcma").display()
    );
    Ok(())
}

fn write_scores(path: &Path, scores: &[VoxelScore]) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "voxel\taccuracy")?;
    for s in scores {
        writeln!(f, "{}\t{:.6}", s.voxel, s.accuracy)?;
    }
    Ok(())
}

fn read_scores(path: &Path) -> Result<Vec<VoxelScore>> {
    let f = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for (ln, line) in f.lines().enumerate() {
        let line = line?;
        if ln == 0 && line.starts_with("voxel") {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let voxel: usize =
            parts.next().ok_or(format!("line {}: missing voxel", ln + 1))?.parse()?;
        let accuracy: f64 =
            parts.next().ok_or(format!("line {}: missing accuracy", ln + 1))?.parse()?;
        out.push(VoxelScore { voxel, accuracy });
    }
    Ok(out)
}

fn read_index_list(path: &Path) -> Result<Vec<usize>> {
    let f = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for line in f.lines() {
        let line = line?;
        let t = line.trim();
        if !t.is_empty() {
            out.push(t.parse()?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fcma_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn generate_info_analyze_roundtrip() {
        let ds = tmp("cli_ds");
        let scores = tmp("cli_scores.tsv");
        generate(&args(&[
            "generate",
            "--preset",
            "tiny",
            "--voxels",
            "64",
            "--coupling",
            "1.8",
            "--out",
            ds.to_str().unwrap(),
        ]))
        .unwrap();
        info(&args(&["info", "--data", ds.to_str().unwrap()])).unwrap();
        analyze(&args(&[
            "analyze",
            "--data",
            ds.to_str().unwrap(),
            "--task-size",
            "32",
            "--top-k",
            "8",
            "--out",
            scores.to_str().unwrap(),
            "--truth",
            ds.with_extension("truth").to_str().unwrap(),
        ]))
        .unwrap();
        // Scores file parses back.
        let parsed = read_scores(&scores).unwrap();
        assert_eq!(parsed.len(), 64);
        assert!(parsed.iter().all(|s| (0.0..=1.0).contains(&s.accuracy)));
    }

    #[test]
    fn analyze_on_cluster_driver_with_checkpoint_and_resume() {
        let ds = tmp("cli_cluster_ds");
        let ckpt = tmp("cli_cluster.ckpt");
        let scores = tmp("cli_cluster_scores.out.tsv");
        let _ = std::fs::remove_file(&ckpt);
        generate(&args(&[
            "generate",
            "--preset",
            "tiny",
            "--voxels",
            "48",
            "--out",
            ds.to_str().unwrap(),
        ]))
        .unwrap();
        analyze(&args(&[
            "analyze",
            "--data",
            ds.to_str().unwrap(),
            "--task-size",
            "16",
            "--workers",
            "3",
            "--retries",
            "1",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--out",
            scores.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(ckpt.exists(), "cluster analyze must write its checkpoint");
        // Resuming from the finished checkpoint recomputes nothing and
        // reproduces the same scores.
        let scores2 = tmp("cli_cluster_scores2.out.tsv");
        analyze(&args(&[
            "analyze",
            "--data",
            ds.to_str().unwrap(),
            "--task-size",
            "16",
            "--workers",
            "3",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--resume",
            "--out",
            scores2.to_str().unwrap(),
        ]))
        .unwrap();
        let a = read_scores(&scores).unwrap();
        let b = read_scores(&scores2).unwrap();
        assert_eq!(a.len(), 48);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.voxel, y.voxel);
            assert_eq!(x.accuracy.to_bits(), y.accuracy.to_bits());
        }
    }

    #[test]
    fn resume_without_checkpoint_is_an_error() {
        let a = args(&["analyze", "--data", "whatever", "--workers", "2", "--resume"]);
        assert!(cluster_config_of(&a, 16).is_err());
    }

    #[test]
    fn resume_with_missing_checkpoint_warns_and_starts_fresh() {
        let ckpt = tmp("cli_missing.ckpt");
        let _ = std::fs::remove_file(&ckpt);
        let a = args(&[
            "analyze",
            "--data",
            "whatever",
            "--workers",
            "2",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--resume",
        ]);
        let cfg = cluster_config_of(&a, 16).unwrap();
        assert_eq!(cfg.resume_from, None, "missing checkpoint must not be resumed from");
        assert_eq!(cfg.checkpoint.as_deref(), Some(ckpt.as_path()));
    }

    #[test]
    fn traced_analyze_writes_parseable_trace_and_metrics() {
        let ds = tmp("cli_trace_ds");
        let trace = tmp("cli_trace.json");
        let metrics = tmp("cli_trace.prom");
        generate(&args(&[
            "generate",
            "--preset",
            "tiny",
            "--voxels",
            "48",
            "--out",
            ds.to_str().unwrap(),
        ]))
        .unwrap();
        analyze(&args(&[
            "analyze",
            "--data",
            ds.to_str().unwrap(),
            "--task-size",
            "16",
            "--workers",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        let parsed = from_chrome_json(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert_eq!(parsed.span_count("cluster.run"), 1);
        assert_eq!(parsed.counter("cluster.tasks.total"), 3);
        assert_eq!(parsed.counter("cluster.tasks.completed"), 3);
        assert!(parsed.check_consistency().is_empty(), "{:?}", parsed.check_consistency());
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("fcma_cluster_tasks_completed 3"), "{prom}");
        // `fcma report --check` accepts the file it just wrote.
        report(&args(&["report", trace.to_str().unwrap(), "--check"])).unwrap();
    }

    #[test]
    fn chaos_run_emits_postmortem_and_survives_slo_and_top() {
        let ds = tmp("cli_chaos_ds");
        let trace = tmp("cli_chaos_trace.json");
        let pm_dir = tmp("cli_chaos_postmortems");
        let slo = tmp("cli_chaos_slo.toml");
        let _ = std::fs::remove_dir_all(&pm_dir);
        generate(&args(&[
            "generate",
            "--preset",
            "tiny",
            "--voxels",
            "48",
            "--out",
            ds.to_str().unwrap(),
        ]))
        .unwrap();
        analyze(&args(&[
            "analyze",
            "--data",
            ds.to_str().unwrap(),
            "--task-size",
            "16",
            "--workers",
            "3",
            "--chaos-panic-task",
            "16",
            "--postmortem",
            pm_dir.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        // The injected panic must have produced a validating dump that
        // names the panicking task.
        let dump = pm_dir.join("postmortem-task-panic-task16-attempt1.txt");
        assert!(dump.exists(), "missing postmortem artifact in {}", pm_dir.display());
        let summary =
            fcma_trace::postmortem::validate(&std::fs::read_to_string(&dump).unwrap()).unwrap();
        assert!(summary.trigger.starts_with("task.panic task=16"), "{}", summary.trigger);
        assert!(summary.chain_len > 0, "causal chain for the panicking task is empty");
        postmortem(&args(&["postmortem", dump.to_str().unwrap()])).unwrap();
        // The trace passes the causality check and drives `fcma top`.
        report(&args(&["report", trace.to_str().unwrap(), "--check"])).unwrap();
        top(&args(&["top", trace.to_str().unwrap()])).unwrap();
        // A generous SLO passes; an absurd one fails the command.
        std::fs::write(&slo, "[[slo]]\nspan = \"cluster.dispatch\"\np = 0.99\nmax_ms = 60000\n")
            .unwrap();
        report(&args(&["report", trace.to_str().unwrap(), "--slo", slo.to_str().unwrap()]))
            .unwrap();
        std::fs::write(&slo, "[[slo]]\nspan = \"cluster.dispatch\"\np = 0.5\nmax_ms = 0.000001\n")
            .unwrap();
        assert!(report(&args(&[
            "report",
            trace.to_str().unwrap(),
            "--slo",
            slo.to_str().unwrap(),
        ]))
        .is_err());
    }

    #[test]
    fn report_rejects_garbage_input() {
        let bad = tmp("cli_bad_trace.json");
        std::fs::write(&bad, "not json").unwrap();
        assert!(report(&args(&["report", bad.to_str().unwrap()])).is_err());
        assert!(report(&args(&["report"])).is_err());
    }

    #[test]
    fn clusters_reads_scores() {
        let scores_path = tmp("cli_cluster_scores.tsv");
        let scores: Vec<VoxelScore> = (0..27)
            .map(|v| VoxelScore { voxel: v, accuracy: if v < 4 { 0.9 } else { 0.5 } })
            .collect();
        write_scores(&scores_path, &scores).unwrap();
        clusters(&args(&[
            "clusters",
            "--scores",
            scores_path.to_str().unwrap(),
            "--top-k",
            "4",
            "--grid",
            "3,3,3",
        ]))
        .unwrap();
    }

    #[test]
    fn mask_threshold_roundtrip() {
        let ds = tmp("cli_mask_ds");
        let out = tmp("cli_mask_out");
        generate(&args(&[
            "generate",
            "--preset",
            "tiny",
            "--voxels",
            "48",
            "--out",
            ds.to_str().unwrap(),
        ]))
        .unwrap();
        mask(&args(&[
            "mask",
            "--data",
            ds.to_str().unwrap(),
            "--threshold",
            "0.0",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let masked = fio::load_dataset(&out).unwrap();
        assert_eq!(masked.n_voxels(), 48); // nothing below 0.0 threshold
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(generate(&args(&["generate", "--preset", "bogus", "--out", "x"])).is_err());
        assert!(info(&args(&["info", "--data", "/nonexistent/xyz"])).is_err());
        assert!(executor_of(&args(&["analyze", "--executor", "warp-speed"])).is_err());
    }
}
