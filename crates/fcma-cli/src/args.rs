//! Minimal flag parsing for the `fcma` CLI (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` pairs.
#[derive(Debug, Clone)]
pub(crate) struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` options.
    options: HashMap<String, String>,
    /// Bare `--flag` switches.
    flags: Vec<String>,
    /// Extra positional arguments (only for commands in [`POSITIONAL_COMMANDS`]).
    positionals: Vec<String>,
}

/// Parsing errors with user-facing messages.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ArgError {
    /// No subcommand given.
    NoCommand,
    /// An option that expected a value got none.
    MissingValue(String),
    /// A value failed to parse.
    BadValue { key: String, value: String, want: &'static str },
    /// Extra positional argument.
    UnexpectedPositional(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::NoCommand => write!(f, "no command given (try `fcma help`)"),
            ArgError::MissingValue(k) => write!(f, "option --{k} expects a value"),
            ArgError::BadValue { key, value, want } => {
                write!(f, "option --{key}: {value:?} is not a valid {want}")
            }
            ArgError::UnexpectedPositional(p) => {
                write!(f, "unexpected argument {p:?}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Keys that are switches (take no value).
const SWITCHES: &[&str] = &["verbose", "help", "resume", "check"];

/// Commands that accept bare positional arguments after the command name.
const POSITIONAL_COMMANDS: &[&str] = &["report", "top", "postmortem"];

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    pub(crate) fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, ArgError> {
        let mut it = args.into_iter().peekable();
        let command = it.next().ok_or(ArgError::NoCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::NoCommand);
        }
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if SWITCHES.contains(&key) {
                    flags.push(key.to_string());
                } else {
                    let v = it.next().ok_or_else(|| ArgError::MissingValue(key.into()))?;
                    options.insert(key.to_string(), v);
                }
            } else if POSITIONAL_COMMANDS.contains(&command.as_str()) {
                positionals.push(a);
            } else {
                return Err(ArgError::UnexpectedPositional(a));
            }
        }
        Ok(Args { command, options, flags, positionals })
    }

    /// Positional argument `i` (after the command name).
    pub(crate) fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(std::string::String::as_str)
    }

    /// Raw string option.
    pub(crate) fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(std::string::String::as_str)
    }

    /// String option with default.
    pub(crate) fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    /// Parsed numeric/typed option with default.
    pub(crate) fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        want: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ArgError::BadValue { key: key.into(), value: v.into(), want })
            }
        }
    }

    /// Whether a bare switch was given.
    pub(crate) fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, ArgError> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse(&["generate", "--voxels", "512", "--out", "ds", "--verbose"]).unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.get("voxels"), Some("512"));
        assert_eq!(a.get_or("preset", "tiny"), "tiny");
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get_parsed("voxels", 0usize, "integer").unwrap(), 512);
    }

    #[test]
    fn report_accepts_positionals() {
        let a = parse(&["report", "trace.json", "--check"]).unwrap();
        assert_eq!(a.positional(0), Some("trace.json"));
        assert_eq!(a.positional(1), None);
        assert!(a.has_flag("check"));
        // Other commands still reject stray positionals.
        assert!(matches!(
            parse(&["analyze", "trace.json"]).unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::NoCommand);
        assert_eq!(parse(&["run", "--out"]).unwrap_err(), ArgError::MissingValue("out".into()));
        assert!(matches!(parse(&["run", "stray"]).unwrap_err(), ArgError::UnexpectedPositional(_)));
        let a = parse(&["run", "--voxels", "abc"]).unwrap();
        assert!(matches!(
            a.get_parsed("voxels", 0usize, "integer").unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }
}
