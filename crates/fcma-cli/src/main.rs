//! `fcma` — command-line interface to the FCMA pipeline.
//!
//! ```sh
//! fcma generate --preset face-scene --voxels 512 --out ds
//! fcma info     --data ds
//! fcma analyze  --data ds --executor optimized --top-k 16 --out scores.tsv
//! fcma analyze  --data ds --workers 4 --retries 3 --checkpoint sweep.ckpt
//! fcma analyze  --data ds --workers 4 --checkpoint sweep.ckpt --resume
//! fcma analyze  --data ds --workers 4 --trace-out trace.json --metrics-out metrics.prom
//! fcma report   trace.json --check --slo slo.toml
//! fcma top      trace.json
//! fcma postmortem postmortems/postmortem-task-panic-task16-attempt1.txt
//! fcma offline  --data ds --top-k 16
//! fcma clusters --scores scores.tsv --top-k 16
//! fcma mask     --data ds --threshold 0.05 --out ds_masked
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            commands::print_help();
            std::process::exit(2);
        }
    };
    if args.has_flag("help") || args.command == "help" {
        commands::print_help();
        return;
    }
    let result = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "info" => commands::info(&args),
        "analyze" => commands::analyze(&args),
        "report" => commands::report(&args),
        "top" => commands::top(&args),
        "postmortem" => commands::postmortem(&args),
        "offline" => commands::offline(&args),
        "clusters" => commands::clusters(&args),
        "mask" => commands::mask(&args),
        other => {
            eprintln!("error: unknown command {other:?}");
            commands::print_help();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
