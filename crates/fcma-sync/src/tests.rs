//! Unit tests for the facade in real and virtual-clock modes (the
//! model-checked mode is exercised end-to-end from `fcma-mc` and the
//! cluster model-check suite).

use std::time::Duration;

use crate::channel::{unbounded, RecvTimeoutError, TryRecvError};
use crate::clock::VirtualClock;
use crate::time::Instant;
use crate::{thread, Condvar, Mutex};

#[test]
fn channel_roundtrip_and_disconnect() {
    let (tx, rx) = unbounded();
    tx.send(1).expect("open channel");
    tx.send(2).expect("open channel");
    assert_eq!(rx.recv(), Ok(1));
    assert_eq!(rx.try_recv(), Ok(2));
    assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    drop(tx);
    assert!(rx.recv().is_err(), "disconnect must surface once drained");
}

#[test]
fn send_fails_once_receivers_are_gone() {
    let (tx, rx) = unbounded();
    drop(rx);
    assert!(tx.send(7).is_err());
}

#[test]
fn channel_crosses_threads() {
    let (tx, rx) = unbounded();
    let (done_tx, done_rx) = unbounded();
    thread::spawn(move || {
        let v: u32 = rx.recv().expect("sender alive");
        done_tx.send(v * 2).expect("receiver alive");
    });
    tx.send(21).expect("receiver alive");
    assert_eq!(done_rx.recv(), Ok(42));
}

#[test]
fn mutex_and_condvar_real_mode() {
    let m = Mutex::new(0);
    *m.lock() += 41;
    assert_eq!(*m.lock(), 41);
    let cv = Condvar::new();
    let mut g = m.lock();
    let timed_out = cv.wait_timeout(&mut g, Duration::from_millis(1));
    assert!(timed_out, "no notifier: the wait must time out");
    *g += 1;
    assert_eq!(*g, 42);
}

#[test]
fn virtual_clock_timeout_costs_no_wall_time() {
    let wall = std::time::Instant::now();
    let clock = VirtualClock::install();
    let (tx, rx) = unbounded::<u8>();
    // Nobody sends: the ten-second timeout must be served virtually.
    let got = rx.recv_timeout(Duration::from_secs(10));
    assert_eq!(got, Err(RecvTimeoutError::Timeout));
    assert!(clock.now() >= Duration::from_secs(10), "clock advanced to the deadline");
    assert!(wall.elapsed() < Duration::from_secs(5), "no real sleeping");
    drop(tx);
}

#[test]
fn virtual_sleepers_wake_in_deadline_order() {
    let _clock = VirtualClock::install();
    let (tx, rx) = unbounded();
    for delay_ms in [30u64, 10, 20] {
        let tx = tx.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(delay_ms));
            tx.send(delay_ms).expect("main thread holds the receiver");
        });
    }
    let mut order = Vec::new();
    for _ in 0..3 {
        order.push(rx.recv_timeout(Duration::from_secs(60)).expect("sleepers wake"));
    }
    assert_eq!(order, vec![10, 20, 30], "virtual deadlines fire in order");
}

#[test]
fn virtual_instant_tracks_sleeps_exactly() {
    let _clock = VirtualClock::install();
    let t0 = Instant::now();
    // A lone registered thread sleeping advances the clock immediately.
    thread::sleep(Duration::from_millis(250));
    assert_eq!(t0.elapsed(), Duration::from_millis(250));
    let deadline = t0 + Duration::from_millis(200);
    assert!(Instant::now() > deadline, "arithmetic sees virtual time");
}

#[test]
fn dead_clock_drains_stragglers() {
    let (done_tx, done_rx) = unbounded();
    {
        let _clock = VirtualClock::install();
        let done_tx = done_tx.clone();
        thread::spawn(move || {
            // Parked forever in virtual time (no other thread advances
            // the clock past it once the guard is dropped).
            thread::sleep(Duration::from_secs(3600));
            done_tx.send(()).expect("outer receiver alive");
        });
        // Guard drops here with the child still parked.
    }
    // The child must exit promptly once the clock is dead. This recv is
    // in real mode (the guard is gone), so give it real slack.
    done_rx.recv_timeout(Duration::from_secs(10)).expect("straggler drains when the clock dies");
}
