//! Facade atomics.
//!
//! [`AtomicBool`] wraps `std::sync::atomic::AtomicBool`; under a model
//! checker each access is preceded by a scheduling point, so races on
//! flags (cancellation, shutdown) are part of the explored
//! interleavings. Orderings are passed straight through — under the
//! model threads are serialized, so every execution is sequentially
//! consistent anyway.

pub use std::sync::atomic::Ordering;

use crate::runtime::{mode, Mode};

/// A boolean flag shared between threads.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// A new flag holding `value`.
    pub fn new(value: bool) -> Self {
        AtomicBool { inner: std::sync::atomic::AtomicBool::new(value) }
    }

    /// Read the flag.
    pub fn load(&self, order: Ordering) -> bool {
        interleave();
        self.inner.load(order)
    }

    /// Write the flag.
    pub fn store(&self, value: bool, order: Ordering) {
        interleave();
        self.inner.store(value, order);
    }
}

/// Emit a scheduling point under the model checker.
fn interleave() {
    if let Mode::Model(rt) = mode() {
        rt.interleave();
    }
}
