//! Facade atomics.
//!
//! [`AtomicBool`] and [`AtomicU64`] wrap their `std::sync::atomic`
//! counterparts; under a model checker each access is preceded by a
//! scheduling point, so races on flags (cancellation, shutdown) and on
//! the flight recorder's ring-buffer words are part of the explored
//! interleavings. Orderings are passed straight through — under the
//! model threads are serialized, so every execution is sequentially
//! consistent anyway. Constructors are `const` so lock-free structures
//! (the recorder's enable flag, ring heads) can live in statics.

pub use std::sync::atomic::Ordering;

use crate::runtime::{mode, Mode};

/// A boolean flag shared between threads.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// A new flag holding `value`.
    pub const fn new(value: bool) -> Self {
        AtomicBool { inner: std::sync::atomic::AtomicBool::new(value) }
    }

    /// Read the flag.
    pub fn load(&self, order: Ordering) -> bool {
        interleave();
        self.inner.load(order)
    }

    /// Write the flag.
    pub fn store(&self, value: bool, order: Ordering) {
        interleave();
        self.inner.store(value, order);
    }
}

/// A 64-bit counter shared between threads.
///
/// The minimal surface the flight recorder's single-writer rings need:
/// plain loads/stores plus `fetch_add` for shared sequence counters.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    inner: std::sync::atomic::AtomicU64,
}

impl AtomicU64 {
    /// A new counter holding `value`.
    pub const fn new(value: u64) -> Self {
        AtomicU64 { inner: std::sync::atomic::AtomicU64::new(value) }
    }

    /// Read the counter.
    pub fn load(&self, order: Ordering) -> u64 {
        interleave();
        self.inner.load(order)
    }

    /// Write the counter.
    pub fn store(&self, value: u64, order: Ordering) {
        interleave();
        self.inner.store(value, order);
    }

    /// Add `delta`, returning the previous value.
    pub fn fetch_add(&self, delta: u64, order: Ordering) -> u64 {
        interleave();
        self.inner.fetch_add(delta, order)
    }
}

/// Emit a scheduling point under the model checker.
fn interleave() {
    if let Mode::Model(rt) = mode() {
        rt.interleave();
    }
}
