//! Facade MPMC channel, built once over the facade [`Mutex`] and
//! [`Condvar`].
//!
//! Because the only blocking it performs goes through facade
//! primitives, the channel is automatically deterministic under a
//! virtual clock (timed receives feed the discrete-event quiescence
//! check) and fully explorable under a model checker (every send,
//! receive, and disconnect is a scheduling point). The API mirrors the
//! `crossbeam-channel` subset the cluster scheduler uses: unbounded,
//! multi-producer, cloneable receivers, disconnect-aware errors.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::mutex::{Condvar, Mutex};
use crate::runtime::McEvent;
use crate::time::now_nanos;

/// The sending half of a channel returned by [`unbounded`].
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel returned by [`unbounded`].
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// A new unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cv: Condvar::new(),
    });
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Enqueue `value`, failing (and handing it back) if every receiver
    /// has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock();
        if st.receivers == 0 {
            if let Some((rt, id)) = st.model_info() {
                rt.record(McEvent::SendAfterClose { channel: id });
            }
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.cv.notify_one();
        Ok(())
    }

    /// Give up this handle's claim on the channel: decrement the sender
    /// count and, when this was the last sender, wake every blocked
    /// receiver so it observes the disconnect instead of sleeping
    /// forever. Named (rather than inlined in `Drop::drop`, which no
    /// call graph can see) so tests exercise the disconnect edge
    /// directly.
    fn release(&self) {
        let mut st = self.chan.state.lock();
        st.senders -= 1;
        let disconnected = st.senders == 0;
        drop(st);
        if disconnected {
            self.chan.cv.notify_all();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.release();
    }
}

impl<T> Receiver<T> {
    /// Dequeue a value, blocking until one arrives or every sender is
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock();
        loop {
            if let Some(value) = st.queue.pop_front() {
                return Ok(value);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            self.chan.cv.wait(&mut st);
        }
    }

    /// Dequeue a value without blocking.
    // audit: allow(deadpub) — facade API parity with crossbeam_channel::Receiver::try_recv; callers porting off crossbeam must not lose surface
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock();
        if let Some(value) = st.queue.pop_front() {
            return Ok(value);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Dequeue a value, blocking for at most `timeout` of (possibly
    /// virtual) time.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = now_nanos().saturating_add(crate::time::duration_to_nanos(timeout));
        let mut st = self.chan.state.lock();
        loop {
            if let Some(value) = st.queue.pop_front() {
                return Ok(value);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = now_nanos();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let remaining = Duration::from_nanos(deadline - now);
            self.chan.cv.wait_timeout(&mut st, remaining);
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().receivers += 1;
        Receiver { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock();
        st.receivers -= 1;
        drop(st);
    }
}

/// The channel is closed: every [`Receiver`] was dropped. Hands the
/// unsent value back.
#[derive(Clone, Copy, PartialEq, Eq)]
// audit: allow(deadpub) — the error type of Sender::send's public signature; named cross-crate only via `.is_err()` today
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a closed channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// The channel is empty and every [`Sender`] was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// audit: allow(deadpub) — the error type of Receiver::recv's public signature; named cross-crate only via `while let Ok(..)` today
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and closed channel")
    }
}

impl std::error::Error for RecvError {}

/// Why [`Receiver::try_recv`] returned no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// audit: allow(deadpub) — the error type of Receiver::try_recv's public signature, part of the facade's crossbeam-parity surface
pub enum TryRecvError {
    /// No value is queued right now.
    Empty,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel is empty"),
            TryRecvError::Disconnected => f.write_str("channel is empty and closed"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Why [`Receiver::recv_timeout`] returned no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed first.
    Timeout,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("channel receive timed out"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and closed"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_sender_release_drains_then_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.release();
        // `release` already gave up the handle's claim; dropping it too
        // would double-decrement the sender count.
        std::mem::forget(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
