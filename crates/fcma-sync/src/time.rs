//! Facade time: a mode-aware [`Instant`].
//!
//! In real mode, [`Instant::now`] measures nanoseconds from a
//! process-wide epoch taken on first use. Under a virtual clock or a
//! model checker it reads virtual nanoseconds instead, so deadline
//! arithmetic in the scheduler is deterministic. Instants are plain
//! nanosecond counts: cheap to copy, totally ordered, and comparable
//! only within the mode that produced them.

use std::ops::Add;
use std::sync::OnceLock;
use std::time::Duration;

use crate::runtime::{mode, Mode};

/// A monotonically non-decreasing point in (possibly virtual) time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    nanos: u64,
}

impl Instant {
    /// The current point in time under the calling thread's mode.
    pub fn now() -> Instant {
        Instant { nanos: now_nanos() }
    }

    /// Time elapsed since this instant (zero if it lies in the future).
    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    /// Time from `earlier` to `self`, saturating to zero.
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    /// Time from `earlier` to `self`; zero when `earlier` is later
    /// (facade instants never panic on reversed arguments).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.saturating_duration_since(earlier)
    }

    /// Raw nanoseconds since the mode's epoch.
    ///
    /// Meaningful only relative to other instants from the same mode;
    /// the flight recorder stores these directly in its ring slots.
    pub fn nanos(&self) -> u64 {
        self.nanos
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant { nanos: self.nanos.saturating_add(duration_to_nanos(rhs)) }
    }
}

/// Current time in nanoseconds under the calling thread's mode.
pub(crate) fn now_nanos() -> u64 {
    match mode() {
        Mode::Real => real_nanos(),
        Mode::Virtual(clock) => clock.now_nanos(),
        Mode::Model(rt) => rt.now_nanos(),
    }
}

/// Nanoseconds from the process-wide real epoch, taken on first use.
fn real_nanos() -> u64 {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    duration_to_nanos(epoch.elapsed())
}

/// A duration as nanoseconds, clamped to `u64::MAX` (~584 years).
pub(crate) fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}
