//! Work-stealing fork-join pool built on the facade primitives.
//!
//! [`Pool::run`] executes a vector of independent tasks across a fixed
//! number of workers and returns the results **in task order** — the
//! reduction tree is the task index, never arrival order, so a parallel
//! region's output is bit-identical to the serial loop at every thread
//! count. Internally each worker owns a deque seeded with a contiguous
//! block of tasks (locality for the band-partitioned kernels); a worker
//! that drains its own deque steals from the back of a victim chosen by
//! a seeded generator, and parks on a region condvar when every deque
//! is empty but tasks are still in flight.
//!
//! The pool is built from facade [`Mutex`]/[`Condvar`] only, so the
//! same code runs in all three facade modes:
//!
//! - **Real**: scoped OS threads (`std::thread::scope` — this crate is
//!   the facade, so it may touch `std::thread` directly).
//! - **Virtual clock**: workers are registered with the clock before
//!   they start and unregistered on exit, so idle parks participate in
//!   the quiescence check and injected stalls cost virtual time only.
//! - **Model-checked**: workers become model threads through the
//!   scoped-thread hooks on [`McRuntime`], and the parent performs a
//!   *model-visible* join ([`McRuntime::thread_join`]) before the
//!   OS-level scope join, so the checker can schedule every handoff.
//!
//! A panicking task poisons nothing: the first payload is captured, the
//! region is woken, every worker exits promptly, and the payload is
//! re-raised on the caller after all workers have been joined.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::clock;
use crate::mutex::{Condvar, Mutex};
use crate::runtime::{enter_model, mode, Mode};

/// Counters describing one parallel region, for the caller to bridge
/// into trace counters (`pool.*`). The pool itself stays trace-free so
/// the facade remains a leaf crate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed (the region's task count).
    pub tasks: u64,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
    /// Times a worker parked with empty deques and work still in
    /// flight.
    pub idle_parks: u64,
    /// Per-worker breakdown of the totals above, indexed by worker id
    /// within the region (worker 0 is the caller). Merged totals hide
    /// imbalance; these lanes are what the Prometheus `worker` labels
    /// are bridged from.
    pub per_worker: Vec<WorkerLane>,
}

/// One worker's share of a region's [`PoolStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerLane {
    /// Tasks this worker executed.
    pub tasks: u64,
    /// Tasks this worker took from another worker's deque.
    pub steals: u64,
    /// Times this worker parked idle.
    pub parks: u64,
}

impl PoolStats {
    /// Accumulate another region's counters into this one. Worker lanes
    /// are merged by worker id; a region with more workers widens the
    /// lane vector.
    pub fn merge(&mut self, other: &PoolStats) {
        self.tasks = self.tasks.saturating_add(other.tasks);
        self.steals = self.steals.saturating_add(other.steals);
        self.idle_parks = self.idle_parks.saturating_add(other.idle_parks);
        if self.per_worker.len() < other.per_worker.len() {
            self.per_worker.resize(other.per_worker.len(), WorkerLane::default());
        }
        for (mine, theirs) in self.per_worker.iter_mut().zip(&other.per_worker) {
            mine.tasks = mine.tasks.saturating_add(theirs.tasks);
            mine.steals = mine.steals.saturating_add(theirs.steals);
            mine.parks = mine.parks.saturating_add(theirs.parks);
        }
    }
}

/// Hooks that carry a caller-side task context onto a region's spawned
/// worker threads (DESIGN.md §11's causal tracing). The pool stays
/// trace-free: the hooks are opaque function pointers over two packed
/// words, registered once by the observability layer. `capture` runs on
/// the forking thread before workers spawn; `apply` runs on each spawned
/// worker at entry (with the captured words) and exit (with `None`).
#[derive(Debug, Clone, Copy)]
pub struct CtxHooks {
    /// Snapshot the calling thread's context, if any.
    pub capture: fn() -> Option<[u64; 2]>,
    /// Install (`Some`) or clear (`None`) a context on this thread.
    pub apply: fn(Option<[u64; 2]>),
}

static CTX_HOOKS: std::sync::OnceLock<CtxHooks> = std::sync::OnceLock::new();

/// Register the context-propagation hooks. First registration wins;
/// later calls are ignored (the observability layer registers a single
/// global pair).
pub fn set_ctx_hooks(hooks: CtxHooks) {
    let _ = CTX_HOOKS.set(hooks);
}

/// A work-stealing thread-pool configuration. Cheap to copy; threads
/// are spawned per [`Pool::run`] region (fork-join), not kept alive
/// between regions, so a `Pool` can be freely embedded in executors and
/// passed across the cluster scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
    seed: u64,
}

impl Default for Pool {
    /// The single-threaded pool (kernels run inline).
    fn default() -> Self {
        Pool::new(1)
    }
}

impl Pool {
    /// A pool with `threads` workers (the caller counts as one).
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "Pool: thread count must be at least 1");
        Pool { threads, seed: 0x5eed_f0c1_a11e_1e0d }
    }

    /// Same pool with a different steal-victim seed (exploration and
    /// tests; results never depend on the seed).
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        Pool { seed, ..self }
    }

    /// A pool sized from the `FCMA_THREADS` environment variable
    /// (default 1 — the serial configuration).
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var("FCMA_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1);
        Pool::new(threads)
    }

    /// Worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every task and return the results in task order.
    ///
    /// # Panics
    /// Re-raises the first panic from a task, after all workers exited.
    pub fn run<T, R>(&self, tasks: Vec<T>, job: impl Fn(usize, T) -> R + Sync) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        self.run_init(tasks, || (), |(), idx, task| job(idx, task))
    }

    /// [`Pool::run`] with per-worker state: `init` runs once per worker
    /// and the resulting state (e.g. packing scratch) is reused by every
    /// task that worker executes. The per-task computation must not
    /// depend on prior state contents — the kernels' dirty-scratch
    /// bit-identity contract.
    ///
    /// # Panics
    /// Re-raises the first panic from a task, after all workers exited.
    pub fn run_init<T, R, S>(
        &self,
        tasks: Vec<T>,
        init: impl Fn() -> S + Sync,
        job: impl Fn(&mut S, usize, T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        self.run_init_stats(tasks, init, job).0
    }

    /// [`Pool::run_init`] also returning the region's [`PoolStats`].
    ///
    /// # Panics
    /// Re-raises the first panic from a task, after all workers exited.
    pub fn run_init_stats<T, R, S>(
        &self,
        tasks: Vec<T>,
        init: impl Fn() -> S + Sync,
        job: impl Fn(&mut S, usize, T) -> R + Sync,
    ) -> (Vec<R>, PoolStats)
    where
        T: Send,
        R: Send,
    {
        let n = tasks.len();
        let n64 = u64::try_from(n).unwrap_or(u64::MAX);
        if self.threads <= 1 || n <= 1 {
            // Inline: one worker state, task order = index order. The
            // caller's context is already on this thread, so the ctx
            // hooks have nothing to do.
            let mut state = init();
            let results =
                tasks.into_iter().enumerate().map(|(i, t)| job(&mut state, i, t)).collect();
            let lane = WorkerLane { tasks: n64, steals: 0, parks: 0 };
            return (
                results,
                PoolStats { tasks: n64, per_worker: vec![lane], ..Default::default() },
            );
        }
        let workers = self.threads.min(n);

        // Seed each deque with a contiguous block of tasks.
        let mut queues: Vec<VecDeque<(usize, T)>> = Vec::with_capacity(workers);
        let mut iter = tasks.into_iter().enumerate();
        for w in 0..workers {
            let len = n / workers + usize::from(w < n % workers);
            queues.push(iter.by_ref().take(len).collect());
        }
        let shared = Region {
            deque: queues.into_iter().map(Mutex::new).collect(),
            region: Mutex::new(RegionState {
                results: (0..n).map(|_| None).collect(),
                remaining: n,
                panic: None,
                steals: 0,
                idle_parks: 0,
                lanes: vec![WorkerLane::default(); workers],
            }),
            cv: Condvar::new(),
        };
        let seed = self.seed;
        let run_worker = |wid: usize| worker(&shared, wid, workers, seed, &init, &job);
        let run_worker = &run_worker;
        // Capture the forking thread's task context once; every spawned
        // worker installs it for the region's duration so records made
        // on pool threads keep their causal link to the dispatch.
        // Worker 0 runs on the caller's own thread and must not touch
        // its context.
        let hooked_ctx = CTX_HOOKS.get().map(|h| (*h, (h.capture)()));
        let run_spawned = |wid: usize| match hooked_ctx {
            Some((hooks, Some(ctx))) => {
                (hooks.apply)(Some(ctx));
                run_worker(wid);
                (hooks.apply)(None);
            }
            _ => run_worker(wid),
        };
        let run_spawned = &run_spawned;

        match mode() {
            Mode::Real => {
                std::thread::scope(|s| {
                    for wid in 1..workers {
                        s.spawn(move || run_spawned(wid));
                    }
                    run_worker(0);
                });
            }
            Mode::Virtual(vclock) => {
                std::thread::scope(|s| {
                    for wid in 1..workers {
                        // Register before the thread exists so the
                        // quiescence check can never miss it.
                        vclock.register();
                        let vclock = Arc::clone(&vclock);
                        s.spawn(move || clock::run_registered(&vclock, || run_spawned(wid)));
                    }
                    run_worker(0);
                });
            }
            Mode::Model(rt) => {
                std::thread::scope(|s| {
                    let mut joined = Vec::with_capacity(workers - 1);
                    for wid in 1..workers {
                        let mid = rt.thread_register();
                        joined.push(mid);
                        let rt_child = Arc::clone(&rt);
                        s.spawn(move || {
                            let _mode = enter_model(Arc::clone(&rt_child));
                            if rt_child.thread_enter(mid) {
                                let out = catch_unwind(AssertUnwindSafe(|| run_spawned(wid)));
                                rt_child
                                    .thread_exit(mid, out.err().map(|p| panic_message(p.as_ref())));
                            } else {
                                rt_child.thread_exit(mid, None);
                            }
                        });
                        // Give the checker a decision point right after
                        // each worker becomes runnable.
                        rt.interleave();
                    }
                    let me = catch_unwind(AssertUnwindSafe(|| run_worker(0)));
                    // Model-visible joins first: the OS-level scope join
                    // below is invisible to the checker, so it must
                    // never be the wait that blocks the parent.
                    for mid in joined {
                        rt.thread_join(mid);
                    }
                    if let Err(p) = me {
                        resume_unwind(p);
                    }
                });
            }
        }

        let mut reg = shared.region.lock();
        if let Some(p) = reg.panic.take() {
            drop(reg);
            resume_unwind(p);
        }
        let stats = PoolStats {
            tasks: n64,
            steals: reg.steals,
            idle_parks: reg.idle_parks,
            per_worker: std::mem::take(&mut reg.lanes),
        };
        let results = reg
            .results
            .iter_mut()
            // audit: allow(panicpath) — remaining hit zero with no panic recorded, so every slot was filled
            .map(|slot| slot.take().expect("pool: task finished without a result"))
            .collect();
        drop(reg);
        (results, stats)
    }
}

/// Everything a region's workers share.
struct Region<T, R> {
    /// One deque per worker (lock rank 1, never held with `region`).
    deque: Vec<Mutex<VecDeque<(usize, T)>>>,
    /// Completion state (lock rank 2).
    region: Mutex<RegionState<R>>,
    /// Signaled when the region completes or a task panics.
    cv: Condvar,
}

struct RegionState<R> {
    /// Result slot per task index.
    results: Vec<Option<R>>,
    /// Tasks not yet completed.
    remaining: usize,
    /// First panic payload from a task, re-raised by the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
    steals: u64,
    idle_parks: u64,
    /// Per-worker task/steal/park counts (same lock, same updates).
    lanes: Vec<WorkerLane>,
}

/// One worker's loop: pop own deque from the front, steal from the back
/// of a seeded-random victim, park when everything is drained but tasks
/// are still in flight. Tasks are only ever seeded up front, so a
/// worker that finds every deque empty needs no re-check after waking —
/// the region is either complete or poisoned.
fn worker<T, R, S, I, F>(
    shared: &Region<T, R>,
    wid: usize,
    workers: usize,
    seed: u64,
    init: &I,
    job: &F,
) where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) -> R + Sync,
{
    let mut state = init();
    let mut rng = seed ^ u64::try_from(wid).unwrap_or(u64::MAX).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    loop {
        let mut stolen = false;
        let mut grabbed = shared.deque[wid].lock().pop_front();
        if grabbed.is_none() {
            let nw = u64::try_from(workers).unwrap_or(u64::MAX);
            let start = usize::try_from(splitmix(&mut rng) % nw).unwrap_or(0);
            for k in 0..workers {
                let victim = (start + k) % workers;
                if victim == wid {
                    continue;
                }
                if let Some(t) = shared.deque[victim].lock().pop_back() {
                    grabbed = Some(t);
                    stolen = true;
                    break;
                }
            }
        }
        match grabbed {
            Some((idx, task)) => {
                let out = catch_unwind(AssertUnwindSafe(|| job(&mut state, idx, task)));
                let mut reg = shared.region.lock();
                reg.lanes[wid].tasks += 1;
                if stolen {
                    reg.steals += 1;
                    reg.lanes[wid].steals += 1;
                }
                match out {
                    Ok(r) => {
                        reg.results[idx] = Some(r);
                        reg.remaining -= 1;
                        if reg.remaining == 0 {
                            drop(reg);
                            shared.cv.notify_all();
                            return;
                        }
                        if reg.panic.is_some() {
                            return;
                        }
                    }
                    Err(p) => {
                        if reg.panic.is_none() {
                            reg.panic = Some(p);
                        }
                        drop(reg);
                        shared.cv.notify_all();
                        return;
                    }
                }
            }
            None => {
                // Idle: park until the region completes or poisons.
                let mut reg = shared.region.lock();
                loop {
                    if reg.remaining == 0 || reg.panic.is_some() {
                        return;
                    }
                    reg.idle_parks += 1;
                    reg.lanes[wid].parks += 1;
                    shared.cv.wait(&mut reg);
                }
            }
        }
    }
}

/// One splitmix64 step (steal-victim selection only; never results).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Best-effort extraction of a panic payload's message (for the model
/// checker's panic detector).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_task_order_at_every_thread_count() {
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let tasks: Vec<u64> = (0..37).collect();
            let got = pool.run(tasks, |idx, t| {
                assert_eq!(u64::try_from(idx).unwrap(), t);
                t * 3 + 1
            });
            let want: Vec<u64> = (0..37).map(|t| t * 3 + 1).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn borrowed_tasks_and_disjoint_outputs() {
        // The kernel-band pattern: tasks borrow disjoint &mut slices.
        let mut buf = vec![0u32; 24];
        let mut tasks: Vec<(usize, &mut [u32])> = Vec::new();
        let mut rest: &mut [u32] = &mut buf;
        let mut at = 0usize;
        while !rest.is_empty() {
            let take = rest.len().min(5);
            let (band, tail) = rest.split_at_mut(take);
            tasks.push((at, band));
            at += take;
            rest = tail;
        }
        Pool::new(3).run(tasks, |_idx, (start, band)| {
            for (i, v) in band.iter_mut().enumerate() {
                *v = u32::try_from(start + i).unwrap();
            }
        });
        let want: Vec<u32> = (0..24).collect();
        assert_eq!(buf, want);
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        let pool = Pool::new(4);
        let counts = pool.run_init(
            vec![(); 40],
            || 0u32,
            |calls, _idx, ()| {
                *calls += 1;
                *calls
            },
        );
        // Each worker's counter climbs monotonically; across 40 tasks at
        // 4 workers the per-task call numbers must total 40 executions.
        assert_eq!(counts.len(), 40);
        assert!(counts.iter().all(|&c| (1..=40).contains(&c)));
    }

    #[test]
    fn stats_account_for_every_task() {
        let pool = Pool::new(3);
        let (got, stats) = pool.run_init_stats(vec![1u64; 17], || (), |(), _i, v| v);
        assert_eq!(got.len(), 17);
        assert_eq!(stats.tasks, 17);
        assert!(stats.steals <= stats.tasks);
    }

    #[test]
    fn per_worker_lanes_sum_to_region_totals() {
        let pool = Pool::new(3);
        let (_, stats) = pool.run_init_stats(vec![1u64; 23], || (), |(), _i, v| v);
        assert!(!stats.per_worker.is_empty());
        assert_eq!(stats.per_worker.iter().map(|l| l.tasks).sum::<u64>(), stats.tasks);
        assert_eq!(stats.per_worker.iter().map(|l| l.steals).sum::<u64>(), stats.steals);
        assert_eq!(stats.per_worker.iter().map(|l| l.parks).sum::<u64>(), stats.idle_parks);
    }

    #[test]
    fn merge_widens_and_adds_lanes() {
        let mut a = PoolStats {
            tasks: 3,
            steals: 1,
            idle_parks: 0,
            per_worker: vec![WorkerLane { tasks: 3, steals: 1, parks: 0 }],
        };
        let b = PoolStats {
            tasks: 5,
            steals: 0,
            idle_parks: 2,
            per_worker: vec![
                WorkerLane { tasks: 2, steals: 0, parks: 1 },
                WorkerLane { tasks: 3, steals: 0, parks: 1 },
            ],
        };
        a.merge(&b);
        assert_eq!(a.tasks, 8);
        assert_eq!(a.per_worker.len(), 2);
        assert_eq!(a.per_worker[0], WorkerLane { tasks: 5, steals: 1, parks: 1 });
        assert_eq!(a.per_worker[1], WorkerLane { tasks: 3, steals: 0, parks: 1 });
    }

    #[test]
    fn ctx_hooks_reach_spawned_workers() {
        use std::cell::Cell;
        thread_local! {
            static TEST_CTX: Cell<Option<[u64; 2]>> = const { Cell::new(None) };
        }
        fn capture() -> Option<[u64; 2]> {
            TEST_CTX.with(Cell::get)
        }
        fn apply(v: Option<[u64; 2]>) {
            TEST_CTX.with(|c| c.set(v));
        }
        set_ctx_hooks(CtxHooks { capture, apply });
        apply(Some([41, 7]));
        let seen = Pool::new(4).run(vec![(); 16], |_i, ()| TEST_CTX.with(Cell::get));
        apply(None);
        // Every task — whichever worker thread ran it — saw the context
        // captured on the forking thread.
        assert!(seen.iter().all(|&s| s == Some([41, 7])));
    }

    #[test]
    fn task_panic_propagates_after_join() {
        let pool = Pool::new(4);
        let hit = std::panic::catch_unwind(|| {
            pool.run(vec![0usize; 16], |idx, _| {
                assert!(idx != 7, "boom at 7");
            });
        });
        assert!(hit.is_err());
    }

    #[test]
    fn runs_under_the_virtual_clock() {
        let clock = crate::clock::VirtualClock::install();
        let pool = Pool::new(3);
        let got = pool.run((0..9u64).collect(), |_i, t| t + 1);
        assert_eq!(got, (1..=9).collect::<Vec<_>>());
        drop(clock);
    }

    #[test]
    fn seed_never_changes_results() {
        let tasks: Vec<u64> = (0..50).collect();
        let a = Pool::new(4).with_seed(1).run(tasks.clone(), |_i, t| t * t);
        let b = Pool::new(4).with_seed(99).run(tasks, |_i, t| t * t);
        assert_eq!(a, b);
    }
}
