//! Facade thread operations: [`spawn`] and [`sleep`].
//!
//! `spawn` propagates the parent's facade mode into the child: under a
//! virtual clock the child is registered with the clock for the
//! quiescence check (and unregistered when it exits); under a model
//! checker the child becomes a new model thread whose every facade
//! operation is a scheduling point. Threads are detached — the cluster
//! scheduler tracks worker liveness through its protocol, not joins.

use std::time::Duration;

use crate::clock::{self, Park};
use crate::runtime::{mode, Mode};
use crate::time::{duration_to_nanos, now_nanos};

/// Spawn a detached thread running `f` under the parent's facade mode.
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    match mode() {
        Mode::Real => {
            std::thread::spawn(f);
        }
        Mode::Virtual(vclock) => {
            vclock.register();
            std::thread::spawn(move || clock::run_registered(&vclock, f));
        }
        Mode::Model(rt) => rt.spawn(Box::new(f)),
    }
}

/// Block the calling thread for `dur` of (possibly virtual) time.
pub fn sleep(dur: Duration) {
    match mode() {
        Mode::Real => std::thread::sleep(dur),
        Mode::Virtual(vclock) => {
            let deadline = vclock.now_nanos() + duration_to_nanos(dur);
            while vclock.park(None, Some(deadline)) == Park::Woken {
                // Spurious wake (another waiter's event); park again.
            }
        }
        Mode::Model(rt) => rt.sleep(duration_to_nanos(dur)),
    }
}

/// Current facade time in nanoseconds — a convenience for tests that
/// assert on virtual timing without building an `Instant`.
pub fn now_virtual_nanos() -> u64 {
    now_nanos()
}
