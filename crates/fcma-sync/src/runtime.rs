//! Per-thread mode dispatch and the model-checker runtime interface.
//!
//! The facade primitives consult [`mode`] on every operation. In the
//! default [`Mode::Real`] they delegate to `std`; under
//! [`Mode::Virtual`] timed operations read the installed
//! [`crate::clock::VirtualClock`]; under [`Mode::Model`] every
//! operation is routed through the installed [`McRuntime`] — the hook
//! `fcma-mc` implements to serialize threads and explore interleavings.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

use crate::clock::VirtualClock;

/// Protocol-level events the facade reports to a model-check runtime.
///
/// These feed the model checker's built-in detectors; outside model
/// mode they are never constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McEvent {
    /// A send was attempted on a channel all of whose receivers have
    /// been dropped (the send returns an error to the caller either
    /// way; the checker may be configured to treat it as a failure).
    SendAfterClose {
        /// Facade object id of the channel's state lock.
        channel: u64,
    },
    /// An exactly-once completion key was observed (e.g. a scheduler
    /// accepted results for a task). A duplicate key is the
    /// double-completion defect.
    Completion {
        /// Caller-chosen key; see [`report_completion`].
        key: u64,
    },
}

/// The operations a model checker must provide to drive the facade.
///
/// Contract: threads under model mode run one at a time. A call that
/// blocks (`mutex_lock`, `condvar_wait`, `sleep`) returns only once the
/// scheduler has granted the resource to the calling thread and made it
/// the running thread, so the facade can then take the underlying std
/// primitive without contention. `condvar_wait` releases model
/// ownership of `mutex` on entry and re-grants it before returning;
/// the return value is `true` when the wait timed out.
pub trait McRuntime: Send + Sync {
    /// Allocate a deterministic id for a facade object (lock, condvar,
    /// channel) on first use under the model.
    fn next_object_id(&self) -> u64;
    /// Spawn `f` as a new model thread inheriting this runtime.
    fn spawn(&self, f: Box<dyn FnOnce() + Send>);
    /// Block until the model grants the calling thread lock `id`.
    fn mutex_lock(&self, id: u64);
    /// Release model ownership of lock `id` (a preemption point).
    fn mutex_unlock(&self, id: u64);
    /// Atomically release `mutex`, wait on `cv` (bounded by
    /// `timeout_nanos` of virtual time if given), re-acquire `mutex`.
    fn condvar_wait(&self, cv: u64, mutex: u64, timeout_nanos: Option<u64>) -> bool;
    /// Wake one (or all) waiters of `cv` (a preemption point).
    fn condvar_notify(&self, cv: u64, all: bool);
    /// Current virtual time in nanoseconds.
    fn now_nanos(&self) -> u64;
    /// Advance the calling thread past `nanos` of virtual time.
    fn sleep(&self, nanos: u64);
    /// A plain scheduling point (emitted before atomic accesses).
    fn interleave(&self);
    /// Report a protocol-level event to the checker's detectors.
    fn record(&self, event: McEvent);

    // --- scoped-thread hooks (used by `crate::pool`) ---
    //
    // `spawn` hands the closure to the runtime, which launches its own
    // OS thread — that only works for `'static` closures. A scoped pool
    // keeps the OS threads itself (so they may borrow from the caller's
    // stack) and instead tells the model about them through these four
    // hooks: the parent allocates a model-thread slot, each OS worker
    // enters/exits it, and the parent performs a *model-visible* join
    // before the OS-level scope join (which the model cannot see and
    // must therefore never be the operation that blocks first).

    /// Allocate a new runnable model-thread slot for a scoped worker,
    /// called by the spawning (parent) thread. Returns the slot id.
    fn thread_register(&self) -> usize;
    /// Called by the worker OS thread once it starts: block until the
    /// model schedules slot `id` for the first time. Returns `false`
    /// when the execution already failed (the worker must exit without
    /// running its body).
    fn thread_enter(&self, id: usize) -> bool;
    /// Called by the worker OS thread when its body returns (or
    /// unwinds); `panic` carries the panic message, if any.
    fn thread_exit(&self, id: usize, panic: Option<String>);
    /// Block the calling (parent) model thread until slot `id` has
    /// exited. Must be called before any OS-level join so the model
    /// never sees the parent blocked invisibly.
    fn thread_join(&self, id: usize);
}

/// The calling thread's current facade mode.
#[derive(Clone)]
pub(crate) enum Mode {
    /// Delegate to `std`; real time.
    Real,
    /// Real threading over a shared discrete-event clock.
    Virtual(Arc<VirtualClock>),
    /// Cooperative scheduling under a model checker.
    Model(Arc<dyn McRuntime>),
}

thread_local! {
    static MODE: RefCell<Mode> = const { RefCell::new(Mode::Real) };
}

/// Read (a clone of) the calling thread's mode.
pub(crate) fn mode() -> Mode {
    MODE.with(|m| m.borrow().clone())
}

/// Replace the calling thread's mode, returning the previous one.
pub(crate) fn set_mode(new: Mode) -> Mode {
    MODE.with(|m| std::mem::replace(&mut *m.borrow_mut(), new))
}

/// Restores the previous mode when dropped.
// audit: allow(deadpub) — RAII guard returned by `enter_model`; held as `let _guard`, so its name never appears cross-crate
pub struct ModeGuard {
    prev: Option<Mode>,
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            set_mode(prev);
        }
    }
}

/// Put the calling thread under model-checker control until the guard
/// drops. Called by `fcma-mc` at the top of every model thread.
pub fn enter_model(rt: Arc<dyn McRuntime>) -> ModeGuard {
    ModeGuard { prev: Some(set_mode(Mode::Model(rt))) }
}

/// Put the calling thread on a virtual clock until the guard drops.
pub(crate) fn enter_virtual(clock: Arc<VirtualClock>) -> ModeGuard {
    ModeGuard { prev: Some(set_mode(Mode::Virtual(clock))) }
}

/// The model-mode id of a facade object, allocated on first use.
///
/// Objects created fresh inside the checked closure see identical
/// allocation order on every execution (threads are serialized), so ids
/// are stable across replays.
pub(crate) fn model_object_id(slot: &OnceLock<u64>, rt: &Arc<dyn McRuntime>) -> u64 {
    *slot.get_or_init(|| rt.next_object_id())
}

/// Report an exactly-once completion key to the model checker's
/// double-completion detector. A no-op outside model mode.
pub fn report_completion(key: u64) {
    if let Mode::Model(rt) = mode() {
        rt.record(McEvent::Completion { key });
    }
}
