//! Synchronization facade for the FCMA workspace.
//!
//! Every blocking primitive the cluster scheduler uses — [`Mutex`],
//! [`Condvar`], the [`channel`] module, [`atomic::AtomicBool`],
//! [`thread::spawn`]/[`thread::sleep`], and [`time::Instant`] — is
//! re-exported here as a thin wrapper whose behavior depends on the
//! calling thread's *mode*:
//!
//! - **Real** (the default): delegate straight to `std`. Zero policy,
//!   near-zero overhead; this is what production runs use.
//! - **Virtual clock** ([`clock::VirtualClock::install`]): threading is
//!   still real, but `Instant::now`, `sleep`, and every timed wait read
//!   a discrete-event clock that only advances when *all* registered
//!   threads are blocked, jumping straight to the earliest pending
//!   deadline. Chaos and hang-detection tests become deterministic and
//!   stop burning wall time.
//! - **Model-checked** (a [`runtime::McRuntime`] installed by
//!   `fcma-mc`): every operation is a choice point for a cooperative
//!   scheduler that explores thread interleavings deterministically.
//!
//! The mode is thread-local and inherited by threads spawned through
//! [`thread::spawn`], so a whole master/worker cluster run shares one
//! mode without any global state. Primitives must not be shared between
//! threads running in different modes.
//!
//! The `syncfacade` audit pass keeps this facade *total*: outside this
//! crate (and the vendor tree) no workspace crate may reach for
//! `std::sync` primitives, `std::thread::{spawn, sleep}`, or
//! `crossbeam_channel` directly.

pub mod atomic;
pub mod channel;
pub mod clock;
pub mod mutex;
pub mod pool;
pub mod runtime;
pub mod thread;
pub mod time;

#[cfg(test)]
mod tests;

pub use mutex::{Condvar, Mutex, MutexGuard};
pub use pool::{Pool, PoolStats, WorkerLane};
