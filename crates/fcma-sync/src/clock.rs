//! Discrete-event virtual clock for deterministic timing tests.
//!
//! [`VirtualClock::install`] puts the calling thread (and every thread
//! it spawns through [`crate::thread::spawn`]) on a shared virtual
//! clock. Virtual time is frozen while any registered thread is
//! runnable; when *all* registered threads are blocked in a facade wait
//! (`sleep`, `recv_timeout`, a timed condvar wait), the clock jumps to
//! the earliest pending deadline and wakes its waiters. A ten-second
//! injected stall therefore costs zero wall time, and timeout races
//! ("did the deadline fire before the result arrived?") resolve
//! identically on every run.
//!
//! Dropping the [`ClockGuard`] marks the clock dead and drains any
//! stragglers: parked threads wake immediately with a timeout result,
//! so detached workers polling a cancellation token exit promptly.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::runtime::{enter_virtual, set_mode, Mode, ModeGuard};

/// Outcome of a [`VirtualClock::park`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Park {
    /// The deadline passed (or the clock is dead).
    TimedOut,
    /// A wake-up (send, notify, or clock advance) arrived first.
    Woken,
}

struct ClockState {
    /// Virtual nanoseconds since install.
    now: u64,
    /// Threads participating in the quiescence check.
    registered: usize,
    /// Registered threads currently parked.
    blocked: usize,
    /// Bumped by every wake-up; parked threads recheck on change.
    wake_gen: u64,
    /// Set when the guard drops; parked threads drain.
    dead: bool,
    /// Next park token.
    next_token: u64,
    /// Pending deadlines of parked threads, by token.
    deadlines: BTreeMap<u64, u64>,
}

/// A shared discrete-event clock; see the module docs.
pub struct VirtualClock {
    registry: Mutex<ClockState>,
    cv: Condvar,
}

impl VirtualClock {
    /// Install a fresh virtual clock on the calling thread, returning a
    /// guard that restores the previous mode (and drains the clock)
    /// when dropped.
    pub fn install() -> ClockGuard {
        let clock = Arc::new(VirtualClock {
            registry: Mutex::new(ClockState {
                now: 0,
                registered: 1,
                blocked: 0,
                wake_gen: 0,
                dead: false,
                next_token: 0,
                deadlines: BTreeMap::new(),
            }),
            cv: Condvar::new(),
        });
        let mode = enter_virtual(Arc::clone(&clock));
        ClockGuard { clock, _mode: mode }
    }

    /// Current virtual time in nanoseconds.
    pub(crate) fn now_nanos(&self) -> u64 {
        self.lock_registry().now
    }

    /// Current wake generation, for race-free park handoff: read it
    /// while still holding the lock you are about to release, then pass
    /// it to [`VirtualClock::park`] so a wake-up that lands in between
    /// is not lost.
    pub(crate) fn wake_gen(&self) -> u64 {
        self.lock_registry().wake_gen
    }

    /// Register one more participating thread (before it starts).
    pub(crate) fn register(&self) {
        self.lock_registry().registered += 1;
    }

    /// Remove a participating thread (when it exits).
    pub(crate) fn unregister(&self) {
        let mut st = self.lock_registry();
        st.registered = st.registered.saturating_sub(1);
        self.advance_if_quiescent(&mut st);
    }

    /// Wake every parked thread (they recheck their predicates).
    pub(crate) fn wake_all(&self) {
        let mut st = self.lock_registry();
        st.wake_gen += 1;
        self.cv.notify_all();
    }

    /// Park the calling thread until `deadline` (virtual nanos) passes
    /// or a wake-up arrives. With `expected_gen` set, returns
    /// immediately if a wake-up already landed since that generation
    /// was read. A parked thread counts toward quiescence: when every
    /// registered thread is parked, virtual time advances to the
    /// earliest pending deadline.
    pub(crate) fn park(&self, expected_gen: Option<u64>, deadline: Option<u64>) -> Park {
        let mut st = self.lock_registry();
        if st.dead {
            return Park::TimedOut;
        }
        if let Some(gen) = expected_gen {
            if st.wake_gen != gen {
                return Park::Woken;
            }
        }
        if let Some(d) = deadline {
            if st.now >= d {
                return Park::TimedOut;
            }
        }
        let token = st.next_token;
        st.next_token += 1;
        if let Some(d) = deadline {
            st.deadlines.insert(token, d);
        }
        st.blocked += 1;
        let entry_gen = st.wake_gen;
        self.advance_if_quiescent(&mut st);
        let result = loop {
            if st.dead {
                break Park::TimedOut;
            }
            if let Some(d) = deadline {
                if st.now >= d {
                    break Park::TimedOut;
                }
            }
            if st.wake_gen != entry_gen {
                break Park::Woken;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        };
        st.blocked -= 1;
        st.deadlines.remove(&token);
        result
    }

    /// If every registered thread is parked, jump to the earliest
    /// pending deadline and wake the clock's waiters.
    fn advance_if_quiescent(&self, st: &mut ClockState) {
        if st.dead || st.registered == 0 || st.blocked < st.registered {
            return;
        }
        let Some(&next) = st.deadlines.values().min() else {
            let n = st.registered;
            st.dead = true;
            self.cv.notify_all();
            // audit: allow(panicpath) — deadlock diagnostic: every registered thread is parked with no pending timer, so no wake-up can ever arrive
            panic!("fcma-sync virtual clock: all {n} registered threads are blocked with no pending timer (deadlock)");
        };
        if next > st.now {
            st.now = next;
        }
        st.wake_gen += 1;
        self.cv.notify_all();
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, ClockState> {
        self.registry.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Keeps the calling thread on a virtual clock; dropping it restores
/// the previous mode, marks the clock dead, and drains stragglers.
// audit: allow(deadpub) — RAII guard returned by `VirtualClock::install`; held as `let _clock`, so its name never appears cross-crate
pub struct ClockGuard {
    clock: Arc<VirtualClock>,
    _mode: ModeGuard,
}

impl ClockGuard {
    /// Virtual time elapsed since install.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.clock.now_nanos())
    }
}

impl Drop for ClockGuard {
    fn drop(&mut self) {
        let mut st = self.clock.lock_registry();
        st.dead = true;
        st.registered = st.registered.saturating_sub(1);
        st.wake_gen += 1;
        self.clock.cv.notify_all();
    }
}

/// Run `child` registered against `clock`, in virtual mode, always
/// unregistering on the way out (even if `child` panics). Used by
/// [`crate::thread::spawn`] for threads created under a virtual clock.
pub(crate) fn run_registered(clock: &Arc<VirtualClock>, child: impl FnOnce()) {
    struct Unregister(Arc<VirtualClock>);
    impl Drop for Unregister {
        fn drop(&mut self) {
            let prev = set_mode(Mode::Real);
            drop(prev);
            self.0.unregister();
        }
    }
    let _mode = enter_virtual(Arc::clone(clock));
    let _unregister = Unregister(Arc::clone(clock));
    child();
}
