//! Facade [`Mutex`] and [`Condvar`].
//!
//! Real and virtual modes delegate storage and exclusion to
//! `std::sync`; poisoning is swallowed (a panicking holder simply
//! releases the lock, like `parking_lot`). Under a model checker the
//! lock is granted at the model level first — threads run one at a
//! time, so the underlying std lock is then taken without contention —
//! and every acquire/release/wait/notify is a scheduling choice point.
//!
//! [`Condvar::wait`] takes the guard by `&mut` and re-acquires in
//! place, instead of consuming and returning it like `std`; callers
//! loop over their predicate exactly as with `std`.

use std::ops::{Deref, DerefMut};
use std::sync::{Arc, OnceLock, PoisonError};
use std::time::Duration;

use crate::clock;
use crate::runtime::{mode, model_object_id, McRuntime, Mode};
use crate::time::duration_to_nanos;

/// Mutual exclusion lock; see the module docs.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    id: OnceLock<u64>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new facade mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value), id: OnceLock::new() }
    }

    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match mode() {
            Mode::Real | Mode::Virtual(_) => {
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                MutexGuard { lock: self, inner: Some(inner), model: None }
            }
            Mode::Model(rt) => {
                let id = model_object_id(&self.id, &rt);
                rt.mutex_lock(id);
                // The model granted this lock with every other model
                // thread suspended, so this does not contend (and when
                // the checker is draining a failed execution, it
                // degrades to plain blocking acquisition).
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                MutexGuard { lock: self, inner: Some(inner), model: Some((rt, id)) }
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

/// RAII guard for a [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `None` only transiently, while a condvar wait holds the lock
    /// released.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Present when the lock was granted by a model runtime.
    model: Option<(Arc<dyn McRuntime>, u64)>,
}

impl<T> MutexGuard<'_, T> {
    /// The model runtime and lock id, when under a model checker.
    pub(crate) fn model_info(&self) -> Option<(Arc<dyn McRuntime>, u64)> {
        self.model.clone()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // audit: allow(panicpath) — the slot is only empty mid-wait, and Condvar::wait refills it before returning control
        self.inner.as_ref().expect("mutex guard is held")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // audit: allow(panicpath) — the slot is only empty mid-wait, and Condvar::wait refills it before returning control
        self.inner.as_mut().expect("mutex guard is held")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((rt, id)) = self.model.take() {
            rt.mutex_unlock(id);
        }
    }
}

/// Condition variable paired with a facade [`Mutex`]; see module docs.
pub struct Condvar {
    inner: std::sync::Condvar,
    id: OnceLock<u64>,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new(), id: OnceLock::new() }
    }

    /// Release the guard's lock, wait for a notification, re-acquire.
    /// Spurious wake-ups are possible in every mode; loop on the
    /// predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_impl(guard, None);
    }

    /// [`Condvar::wait`] bounded by `dur`; returns `true` if the wait
    /// timed out (the lock is re-acquired either way).
    // audit: allow(deadpub) — facade API parity with std::sync::Condvar::wait_timeout; the facade's own channel recv_timeout is built on it
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Duration) -> bool {
        self.wait_impl(guard, Some(dur))
    }

    fn wait_impl<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Option<Duration>) -> bool {
        // audit: allow(panicpath) — wait is only reachable through a live guard, whose slot is full outside wait itself
        let held = guard.inner.take().expect("mutex guard is held");
        match mode() {
            Mode::Real => {
                let (inner, timed_out) = match dur {
                    None => (self.inner.wait(held).unwrap_or_else(PoisonError::into_inner), false),
                    Some(d) => {
                        let (g, res) = self
                            .inner
                            .wait_timeout(held, d)
                            .unwrap_or_else(PoisonError::into_inner);
                        (g, res.timed_out())
                    }
                };
                guard.inner = Some(inner);
                timed_out
            }
            Mode::Virtual(vclock) => {
                // Read the wake generation before releasing the lock, so
                // a notification landing in the gap is not lost.
                let gen = vclock.wake_gen();
                let deadline = dur.map(|d| vclock.now_nanos() + duration_to_nanos(d));
                drop(held);
                let timed_out = vclock.park(Some(gen), deadline) == clock::Park::TimedOut;
                guard.inner = Some(guard.lock.inner.lock().unwrap_or_else(PoisonError::into_inner));
                timed_out
            }
            Mode::Model(rt) => {
                let (_, mutex_id) = guard
                    .model
                    .clone()
                    // audit: allow(panicpath) — a guard acquired under the model always carries its grant; modes cannot change mid-thread
                    .expect("a wait under the model requires a model-acquired guard");
                let cv_id = model_object_id(&self.id, &rt);
                drop(held);
                let timed_out = rt.condvar_wait(cv_id, mutex_id, dur.map(duration_to_nanos));
                // Re-granted by the model before condvar_wait returned,
                // so this does not contend (see Mutex::lock).
                guard.inner = Some(guard.lock.inner.lock().unwrap_or_else(PoisonError::into_inner));
                timed_out
            }
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.notify(false);
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.notify(true);
    }

    fn notify(&self, all: bool) {
        match mode() {
            Mode::Real => {
                if all {
                    self.inner.notify_all();
                } else {
                    self.inner.notify_one();
                }
            }
            Mode::Virtual(vclock) => {
                // Also signal the std condvar so a real-mode observer
                // (e.g. a test thread after its clock guard dropped)
                // still sees wake-ups from draining virtual threads.
                self.inner.notify_all();
                vclock.wake_all();
            }
            Mode::Model(rt) => {
                let id = model_object_id(&self.id, &rt);
                rt.condvar_notify(id, all);
            }
        }
    }
}
