//! Model-check the work-stealing pool (DESIGN.md §15).
//!
//! Bounded-preemption DFS over seeded fork-join workloads must find no
//! deadlock, lost wakeup, or double completion in the shipped pool; and
//! to prove the harness is armed (mirroring the cluster's
//! `model_check.rs`), a mutation fixture that drops the Condvar notify
//! in the idle path must be caught as a deadlock.

use std::sync::Arc;

use fcma_mc::{check, check_random, Config, FailureKind};
use fcma_sync::pool::Pool;
use fcma_sync::{Condvar, Mutex};

fn cfg(max_executions: usize) -> Config {
    Config { max_preemptions: 2, max_executions, max_steps: 200_000, ..Config::default() }
}

#[test]
fn pool_fork_join_explores_clean() {
    let outcome = check(&cfg(20_000), || {
        let got = Pool::new(2).run(vec![1u32, 2, 3], |_idx, v| v * 2);
        assert_eq!(got, vec![2, 4, 6]);
    });
    assert!(
        outcome.failure().is_none(),
        "pool failed exploration:\n{}",
        outcome.failure().unwrap()
    );
}

#[test]
fn pool_three_workers_random_walks_clean() {
    let outcome = check_random(&cfg(300), 0xF0CA, || {
        let got = Pool::new(3).with_seed(7).run((0..5u64).collect(), |_idx, v| v + 10);
        assert_eq!(got, vec![10, 11, 12, 13, 14]);
    });
    assert!(
        outcome.failure().is_none(),
        "pool failed random walks:\n{}",
        outcome.failure().unwrap()
    );
}

#[test]
fn pool_per_worker_state_explores_clean() {
    let outcome = check(&cfg(10_000), || {
        let got = Pool::new(2).run_init(
            vec![(); 3],
            || 0u32,
            |calls, _idx, ()| {
                *calls += 1;
                *calls
            },
        );
        assert_eq!(got.len(), 3);
    });
    assert!(
        outcome.failure().is_none(),
        "pool failed exploration:\n{}",
        outcome.failure().unwrap()
    );
}

#[test]
fn task_panic_is_reported_not_hung() {
    let outcome = check(&cfg(50), || {
        Pool::new(2).run(vec![0u8; 2], |idx, _| {
            assert!(idx != 1, "task boom");
        });
    });
    match outcome.failure().map(|f| &f.kind) {
        Some(FailureKind::Panic { message, .. }) => {
            assert!(message.contains("task boom"), "unexpected panic: {message}");
        }
        other => panic!("expected a Panic failure, got {other:?}"),
    }
}

/// A mini-replica of the pool's idle-park/termination monitor, with a
/// mutation knob: the completing worker can drop the final notify.
fn idle_park_fixture(drop_final_notify: bool) {
    let shared = Arc::new((Mutex::new(2usize), Condvar::new()));
    let worker = Arc::clone(&shared);
    fcma_sync::thread::spawn(move || {
        for _ in 0..2 {
            let mut remaining = worker.0.lock();
            *remaining -= 1;
            let done = *remaining == 0;
            drop(remaining);
            if done && !drop_final_notify {
                worker.1.notify_all();
            }
        }
    });
    let mut remaining = shared.0.lock();
    while *remaining != 0 {
        shared.1.wait(&mut remaining);
    }
}

#[test]
fn idle_park_protocol_explores_clean() {
    let outcome = check(&cfg(10_000), || idle_park_fixture(false));
    assert!(
        outcome.failure().is_none(),
        "idle-park protocol failed:\n{}",
        outcome.failure().unwrap()
    );
}

#[test]
fn dropped_notify_in_idle_path_is_caught() {
    let outcome = check(&cfg(10_000), || idle_park_fixture(true));
    match outcome.failure().map(|f| &f.kind) {
        Some(FailureKind::Deadlock { blocked, .. }) => {
            assert!(
                blocked.iter().any(|b| b.contains("waiting on cv#")),
                "deadlock must implicate the condvar wait: {blocked:?}"
            );
        }
        other => panic!("dropped notify must deadlock the waiter, got {other:?}"),
    }
}
