//! `threadescape`: escape analysis over thread boundaries. Every value
//! a closure captures when it is handed to the pool (`run`, `run_init`,
//! `run_init_stats`), to `spawn`, or across a channel `send` must fit
//! one of four classifications — immutable-shared (no mutation
//! evidence), facade-atomic (mutated only through atomic methods),
//! lock-guarded (mutated only under a `.lock()` guard), or
//! disjoint-band (declared `// audit: disjoint(<name>) — <reason>`, the
//! `split_at_mut` output-band pattern of DESIGN.md §15). A mutable
//! shared reach that fits none is a data race the type system cannot
//! see past the facade, and is rejected here at audit time.
//!
//! The analysis is lexical over the scrubbed source (closure argument
//! regions are extracted with balanced-paren scanning), anchored on the
//! parser's call sites so `master.run(&rx, n)` — no closure literal —
//! is never confused with a pool fan-out. Scope matches the other
//! concurrency passes: library code of non-[`SYNC_EXEMPT_CRATES`],
//! tests excluded.

use std::collections::BTreeSet;

use crate::parser::Call;
use crate::passes::{Violation, Workspace, SYNC_EXEMPT_CRATES};
use crate::source::{Role, SourceFile};

/// Pool methods whose task list and closures cross the worker boundary.
const POOL_BOUNDARIES: &[&str] = &["run", "run_init", "run_init_stats"];

/// Identifiers that are never captured values.
const KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "move", "if", "else", "match", "for", "while", "loop", "in", "return",
    "break", "continue", "as", "fn", "impl", "dyn", "where", "true", "false", "self", "crate",
    "super", "async", "await", "static", "const", "use", "pub", "mod", "struct", "enum", "trait",
    "type", "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
    "f32", "f64", "bool", "char", "str",
];

/// Atomic methods that count as facade-atomic mutation.
const ATOMIC_MUTATORS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

/// What kind of thread boundary a call site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Boundary {
    Pool,
    Spawn,
    Send,
}

/// The argument region of one call: `(0-based line, text)` per line,
/// with the outer parentheses stripped.
type Region = Vec<(usize, String)>;

/// One closure literal found in an argument region.
struct ClosureLit {
    /// Identifiers bound by the parameter list.
    params: BTreeSet<String>,
    /// Body text, per line.
    body: Region,
}

/// Pass: see the module docs.
pub fn check_threadescape(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if f.role != Role::Lib || SYNC_EXEMPT_CRATES.contains(&ws.crate_key(fi)) {
            continue;
        }
        for (idx, func) in ws.parsed[fi].fns.iter().enumerate() {
            if f.in_test_span(func.line) {
                continue;
            }
            for call in &func.calls {
                let boundary = match call.name.as_str() {
                    "spawn" => Boundary::Spawn,
                    "send" if call.method => Boundary::Send,
                    n if call.method && POOL_BOUNDARIES.contains(&n) => Boundary::Pool,
                    _ => continue,
                };
                let Some(region) = call_args(f, call) else {
                    continue;
                };
                let closures = closure_literals(&region);
                // A pool/spawn name without a closure literal is not a
                // thread boundary (`master.run(&rx, n)`, `cfg.run()`).
                if boundary != Boundary::Send && closures.is_empty() {
                    continue;
                }
                match boundary {
                    Boundary::Send => {
                        check_send(ws, fi, &region, &mut out);
                    }
                    Boundary::Pool | Boundary::Spawn => {
                        if boundary == Boundary::Pool {
                            check_task_arg(ws, fi, idx, call, &region, &mut out);
                        }
                        for cl in &closures {
                            check_captures(ws, fi, call, cl, &mut out);
                        }
                    }
                }
            }
        }
    }
    out
}

/// A channel `send` whose payload expression contains a `&mut` borrow
/// hands exclusive access to another thread with no owner transfer —
/// reject unless explicitly allowed.
fn check_send(ws: &Workspace, fi: usize, region: &Region, out: &mut Vec<Violation>) {
    for (line, text) in region {
        if text.contains("&mut ") && !ws.allowed(fi, "threadescape", *line) {
            out.push(Violation {
                file: ws.files[fi].rel_path.clone(),
                line: line + 1,
                pass: "threadescape",
                message: "channel `send` payload contains a `&mut` borrow; move an owned \
                          value across the channel instead"
                    .to_owned(),
            });
            return;
        }
    }
}

/// The pool's task list is handed out one element per worker. When it
/// is a bare binding whose declaration carries `&mut` (a vector of
/// mutable output bands), the partition must be declared disjoint.
fn check_task_arg(
    ws: &Workspace,
    fi: usize,
    fn_idx: usize,
    call: &Call,
    region: &Region,
    out: &mut Vec<Violation>,
) {
    let f = &ws.files[fi];
    let Some(first) = first_arg(region) else {
        return;
    };
    let arg = first.trim();
    if arg.is_empty() || !arg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return; // expression argument: ownership moves per element
    }
    let Some(body) = ws.parsed[fi].fns[fn_idx].body else {
        return;
    };
    // Nearest `let` declaring the binding, above the call.
    let decl = (body.0..=call.line.min(body.1))
        .rev()
        .find(|&l| {
            let code = &f.scan.code_lines[l];
            crate::passes::contains_word(code, "let") && crate::passes::contains_word(code, arg)
        })
        .filter(|&l| {
            let decl_text = format!(
                "{} {}",
                f.scan.code_lines[l],
                f.scan.code_lines.get(l + 1).map_or("", String::as_str)
            );
            decl_text.contains("&mut")
        });
    if decl.is_none() {
        return;
    }
    if ws.disjoint_allowed(fi, arg, call.line) || ws.allowed(fi, "threadescape", call.line) {
        return;
    }
    out.push(Violation {
        file: f.rel_path.clone(),
        line: call.line + 1,
        pass: "threadescape",
        message: format!(
            "task buffer `{arg}` carries `&mut` bands across the `{}` boundary; declare \
             the partition with `// audit: disjoint({arg}) — <reason>` (or restructure \
             to owned tasks)",
            call.name
        ),
    });
}

/// Classify every free identifier the closure captures; reject mutable
/// shared reach with no atomic, lock, or disjoint classification.
fn check_captures(
    ws: &Workspace,
    fi: usize,
    call: &Call,
    cl: &ClosureLit,
    out: &mut Vec<Violation>,
) {
    let f = &ws.files[fi];
    let bound = bound_idents(cl);
    for (name, mutation_line, rescued) in mutated_captures(cl, &bound) {
        if rescued {
            continue; // facade-atomic or lock-guarded mutation
        }
        if ws.disjoint_allowed(fi, &name, call.line)
            || ws.disjoint_allowed(fi, &name, mutation_line)
            || ws.allowed(fi, "threadescape", mutation_line)
            || ws.allowed(fi, "threadescape", call.line)
        {
            continue;
        }
        out.push(Violation {
            file: f.rel_path.clone(),
            line: mutation_line + 1,
            pass: "threadescape",
            message: format!(
                "closure passed to `{}` mutates captured `{name}` with no lock, atomic, \
                 or `audit: disjoint` classification — a shared mutable reach across the \
                 thread boundary",
                call.name
            ),
        });
    }
}

/// The balanced-paren argument region of `call`, or `None` when the
/// call name cannot be re-anchored on its line.
fn call_args(f: &SourceFile, call: &Call) -> Option<Region> {
    let lines = &f.scan.code_lines;
    let code = lines.get(call.line)?;
    let chars: Vec<char> = code.chars().collect();
    // First occurrence of the name, word-bounded, followed by `(`.
    let name_chars: Vec<char> = call.name.chars().collect();
    let mut open_col = None;
    for s in 0..chars.len().saturating_sub(name_chars.len()) {
        if chars[s..s + name_chars.len()] != name_chars[..] {
            continue;
        }
        let left_ok = s == 0 || !(chars[s - 1].is_ascii_alphanumeric() || chars[s - 1] == '_');
        let mut j = s + name_chars.len();
        if !left_ok || chars.get(j).is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_') {
            continue;
        }
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) == Some(&'(') {
            open_col = Some(j);
            break;
        }
    }
    let open_col = open_col?;
    let mut region = Vec::new();
    let mut depth = 0i32;
    for (lno, line) in lines.iter().enumerate().skip(call.line).take(400) {
        let mut text = String::new();
        for (col, c) in line.chars().enumerate() {
            if lno == call.line && col < open_col {
                continue;
            }
            match c {
                '(' => {
                    depth += 1;
                    if depth > 1 {
                        text.push(c);
                    }
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        region.push((lno, text));
                        return Some(region);
                    }
                    text.push(c);
                }
                _ if depth >= 1 => text.push(c),
                _ => {}
            }
        }
        region.push((lno, text));
    }
    None
}

/// Text of the first top-level argument in a region.
fn first_arg(region: &Region) -> Option<String> {
    let mut depth = 0i32;
    let mut arg = String::new();
    for (_, text) in region {
        for c in text.chars() {
            match c {
                '(' | '[' | '{' | '<' => depth += 1,
                ')' | ']' | '}' | '>' => depth -= 1,
                ',' if depth == 0 => return Some(arg),
                _ => {}
            }
            arg.push(c);
        }
        arg.push(' ');
    }
    Some(arg)
}

/// Extract the closure literals at the top level of an argument region.
fn closure_literals(region: &Region) -> Vec<ClosureLit> {
    let flat: Vec<(usize, char)> = region
        .iter()
        .flat_map(|(l, t)| t.chars().map(move |c| (*l, c)).chain(std::iter::once((*l, '\n'))))
        .collect();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut prev_sig = ' '; // previous significant char at top level
    let mut prev_word = String::new();
    let mut i = 0usize;
    while i < flat.len() {
        let (line, c) = flat[i];
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            '|' if depth == 0 && (prev_sig == ' ' || prev_sig == ',' || prev_word == "move") => {
                // Parameter list: up to the matching `|` (or empty `||`).
                let mut params = BTreeSet::new();
                let mut j = i + 1;
                if flat.get(j).map(|&(_, c)| c) == Some('|') {
                    j += 1;
                } else {
                    let mut word = String::new();
                    while j < flat.len() && flat[j].1 != '|' {
                        let ch = flat[j].1;
                        if ch.is_ascii_alphanumeric() || ch == '_' {
                            word.push(ch);
                        } else {
                            bind_word(&mut params, &mut word);
                        }
                        j += 1;
                    }
                    bind_word(&mut params, &mut word);
                    j += 1; // past closing `|`
                }
                // Body: until `,` at top level or region end.
                let mut body: Region = Vec::new();
                let mut cur = String::new();
                let mut cur_line = flat.get(j).map_or(line, |&(l, _)| l);
                let mut bdepth = 0i32;
                while j < flat.len() {
                    let (bl, bc) = flat[j];
                    if bl != cur_line {
                        body.push((cur_line, std::mem::take(&mut cur)));
                        cur_line = bl;
                    }
                    match bc {
                        '(' | '[' | '{' => bdepth += 1,
                        ')' | ']' | '}' => bdepth -= 1,
                        ',' if bdepth == 0 => break,
                        _ => {}
                    }
                    if bc != '\n' {
                        cur.push(bc);
                    }
                    j += 1;
                }
                body.push((cur_line, cur));
                out.push(ClosureLit { params, body });
                prev_sig = ',';
                prev_word.clear();
                i = j;
                continue;
            }
            _ => {}
        }
        if depth == 0 && c != '\n' {
            if c.is_ascii_alphanumeric() || c == '_' {
                prev_word.push(c);
            } else if !c.is_whitespace() {
                prev_word.clear();
            }
            if !c.is_whitespace() {
                prev_sig = if c == ',' { ',' } else { c };
            }
        }
        i += 1;
    }
    out
}

/// Move a collected identifier into the bound set (types excluded).
fn bind_word(params: &mut BTreeSet<String>, word: &mut String) {
    if !word.is_empty() && !word.chars().next().is_some_and(char::is_uppercase) {
        params.insert(std::mem::take(word));
    } else {
        word.clear();
    }
}

/// All identifiers the closure binds itself: parameters plus `let`/`for`
/// bindings and nested-closure parameters in the body.
fn bound_idents(cl: &ClosureLit) -> BTreeSet<String> {
    let mut bound = cl.params.clone();
    for (_, text) in &cl.body {
        let words: Vec<(usize, String)> = word_occurrences(text);
        let chars: Vec<char> = text.chars().collect();
        for (wi, (pos, w)) in words.iter().enumerate() {
            match w.as_str() {
                "let" => {
                    // Bind idents until `=` or `;`.
                    let mut stop = chars.len();
                    for (k, &c) in chars.iter().enumerate().skip(pos + 3) {
                        if c == '=' || c == ';' {
                            stop = k;
                            break;
                        }
                    }
                    for (p2, w2) in &words[wi + 1..] {
                        if *p2 >= stop {
                            break;
                        }
                        if !w2.chars().next().is_some_and(char::is_uppercase) {
                            bound.insert(w2.clone());
                        }
                    }
                }
                "for" => {
                    for (_, w2) in &words[wi + 1..] {
                        if w2 == "in" {
                            break;
                        }
                        if !w2.chars().next().is_some_and(char::is_uppercase) {
                            bound.insert(w2.clone());
                        }
                    }
                }
                _ => {}
            }
        }
        // Nested-closure parameter lists: `|a, b|` after `(`/`,`/`=`.
        let mut k = 0usize;
        while k < chars.len() {
            if chars[k] == '|' {
                let before = chars[..k].iter().rev().find(|c| !c.is_whitespace());
                if matches!(before, Some('(' | ',' | '=' | '{' | ';') | None) {
                    let mut word = String::new();
                    let mut j = k + 1;
                    while j < chars.len() && chars[j] != '|' {
                        if chars[j].is_ascii_alphanumeric() || chars[j] == '_' {
                            word.push(chars[j]);
                        } else {
                            bind_word(&mut bound, &mut word);
                        }
                        j += 1;
                    }
                    bind_word(&mut bound, &mut word);
                    k = j;
                }
            }
            k += 1;
        }
    }
    bound
}

/// Word occurrences with char positions in one line of text.
fn word_occurrences(text: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i].is_ascii_alphabetic() || chars[i] == '_' {
            let start = i;
            let mut w = String::new();
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                w.push(chars[i]);
                i += 1;
            }
            out.push((start, w));
        } else {
            i += 1;
        }
    }
    out
}

/// Captured identifiers with mutation evidence:
/// `(name, 0-based mutation line, rescued-by-atomic-or-lock)`.
fn mutated_captures(cl: &ClosureLit, bound: &BTreeSet<String>) -> Vec<(String, usize, bool)> {
    // First sweep: which captured idents are mutated, and which have
    // atomic/lock evidence anywhere in the body.
    let mut mutated: Vec<(String, usize)> = Vec::new();
    let mut rescued: BTreeSet<String> = BTreeSet::new();
    for (lno, text) in &cl.body {
        let chars: Vec<char> = text.chars().collect();
        for (pos, w) in word_occurrences(text) {
            if bound.contains(&w)
                || KEYWORDS.contains(&w.as_str())
                || w.starts_with('_')
                || w.chars().next().is_some_and(char::is_uppercase)
                    && !w.chars().all(|c| c.is_ascii_uppercase() || c == '_')
            {
                continue;
            }
            // Skip path segments, field positions, and call/macro names.
            let prev = chars[..pos].iter().rev().find(|c| !c.is_whitespace());
            if matches!(prev, Some('.' | ':')) {
                continue;
            }
            let mut j = pos + w.chars().count();
            // `&mut x` escapes as a mutable borrow.
            let lead: String = chars[..pos].iter().collect();
            if lead.trim_end().ends_with("&mut") {
                mutated.push((w.clone(), *lno));
                continue;
            }
            // Walk field/index/method suffixes.
            let mut is_mutation = false;
            loop {
                while j < chars.len() && chars[j].is_whitespace() {
                    j += 1;
                }
                match chars.get(j) {
                    Some('.') => {
                        // `.ident` — field or method.
                        let mut k = j + 1;
                        let mut m = String::new();
                        while k < chars.len()
                            && (chars[k].is_ascii_alphanumeric() || chars[k] == '_')
                        {
                            m.push(chars[k]);
                            k += 1;
                        }
                        if chars.get(k) == Some(&'(') {
                            if m == "lock" || ATOMIC_MUTATORS.contains(&m.as_str()) {
                                rescued.insert(w.clone());
                            }
                            break; // method-call result: not an lvalue path
                        }
                        j = k;
                    }
                    Some('[') => {
                        let mut d = 0i32;
                        while j < chars.len() {
                            match chars[j] {
                                '[' => d += 1,
                                ']' => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        j += 1;
                    }
                    Some('=')
                        if chars.get(j + 1) != Some(&'=') && chars.get(j + 1) != Some(&'>') =>
                    {
                        // Plain assignment — but not `<=`/`>=`/`!=`/`==`.
                        is_mutation = true;
                        break;
                    }
                    Some(&op) if "+-*/%&|^".contains(op) && chars.get(j + 1) == Some(&'=') => {
                        is_mutation = true;
                        break;
                    }
                    Some('<') | Some('>')
                        if chars.get(j + 1) == Some(&chars[j])
                            && chars.get(j + 2) == Some(&'=') =>
                    {
                        is_mutation = true; // `<<=` / `>>=`
                        break;
                    }
                    _ => break,
                }
            }
            if is_mutation {
                mutated.push((w.clone(), *lno));
            }
        }
    }
    let mut seen = BTreeSet::new();
    mutated
        .into_iter()
        .filter(|(w, _)| seen.insert(w.clone()))
        .map(|(w, l)| {
            let r = rescued.contains(&w);
            (w, l, r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Contracts, CrateGraph};
    use crate::source::SourceFile;

    fn ws_of(src: &str) -> Workspace {
        let f = SourceFile::new("crates/fcma-core/src/a.rs", Some("fcma-core"), Role::Lib, src);
        Workspace::new(vec![f], CrateGraph::default(), Contracts::default(), None)
    }

    fn hits(src: &str) -> Vec<Violation> {
        check_threadescape(&ws_of(src))
    }

    #[test]
    fn immutable_captures_are_clean() {
        let v = hits(
            "//! m\nfn f(pool: &Pool, n: usize, a: &[f32]) {\n    pool.run((0..n).collect(), \
             |_idx, i| helper(a, i, n));\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn mutated_capture_fires() {
        let v = hits(
            "//! m\nfn f(total: &mut usize) {\n    spawn(move || {\n        *total += 1;\n    });\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].pass, "threadescape");
        assert!(v[0].message.contains("total"), "{}", v[0].message);
    }

    #[test]
    fn atomic_and_lock_mutations_are_classified() {
        let v = hits(
            "//! m\nfn f(hits: &AtomicU64, shared: &Mutex<u64>) {\n    spawn(move || {\n        \
             hits.fetch_add(1, Ordering::Relaxed);\n        \
             *shared.lock().unwrap() += 1;\n    });\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn mut_task_buffer_needs_disjoint_marker() {
        let src = "//! m\nfn f(pool: &Pool, c: &mut [f32]) {\n    \
                   let mut tasks: Vec<(usize, &mut [f32])> = Vec::new();\n    \
                   tasks.push((0, c));\n    \
                   pool.run_init(tasks, || (), |s, _idx, (r, band)| fill(band, r));\n}\n";
        let v = hits(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("disjoint(tasks)"), "{}", v[0].message);

        let marked = src.replace(
            "    pool.run_init(",
            "    // audit: disjoint(tasks) — bands are split_at_mut slices\n    pool.run_init(",
        );
        let v = hits(&marked);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn run_without_closure_literal_is_not_a_boundary() {
        let v = hits("//! m\nfn f(m: &Master, rx: &Receiver<u8>) {\n    m.run(rx, 3);\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn send_of_mut_borrow_fires() {
        let v = hits(
            "//! m\nfn f(tx: &Sender<&mut [f32]>, band: &mut [f32]) {\n    \
             tx.send(&mut band[..]).unwrap();\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("send"), "{}", v[0].message);
    }

    #[test]
    fn closure_local_bindings_are_not_captures() {
        let v = hits(
            "//! m\nfn f(pool: &Pool, n: usize) {\n    pool.run((0..n).collect(), |_idx, i| {\n        \
             let mut acc = 0usize;\n        acc += i;\n        for k in 0..n { acc += k; }\n        \
             acc\n    });\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_marker_escapes() {
        let v = hits(
            "//! m\nfn f(total: &mut usize) {\n    // audit: allow(threadescape) — joined before read\n    \
             spawn(move || {\n        *total += 1;\n    });\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
