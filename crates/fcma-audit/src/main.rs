//! Command-line driver for the FCMA static-analysis audit.
//!
//! Usage: `fcma-audit check [--root DIR] [--format human|json]
//! [--passes a,b,c]` or `fcma-audit stats [--root DIR]`.
//!
//! With no `--root`, the workspace root is resolved from the location
//! of this crate at compile time (two levels above its manifest), so
//! `cargo run -p fcma-audit -- check` works from any directory inside
//! the workspace.

use std::path::PathBuf;
use std::process::ExitCode;

use fcma_audit::passes::{ESCAPABLE_PASSES, PASS_NAMES};
use fcma_audit::Format;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut command: Option<String> = None;
    let mut passes: Option<Vec<String>> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fcma-audit: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next().and_then(|v| Format::parse(v)) {
                Some(f) => format = f,
                None => {
                    eprintln!("fcma-audit: --format requires `human` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--passes" => match it.next() {
                Some(list) => {
                    passes = Some(list.split(',').map(str::to_owned).collect());
                }
                None => {
                    eprintln!("fcma-audit: --passes requires a comma-separated pass list");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if command.is_none() => command = Some(other.to_owned()),
            other => {
                eprintln!("fcma-audit: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let selected: Vec<&str> = match &passes {
        None => PASS_NAMES.to_vec(),
        Some(list) => {
            let mut sel = Vec::new();
            for p in list {
                match PASS_NAMES.iter().find(|known| **known == p.as_str()) {
                    Some(known) => sel.push(*known),
                    None => {
                        eprintln!(
                            "fcma-audit: unknown pass `{p}` (known: {})",
                            PASS_NAMES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            // unusedallow decides staleness from which markers the other
            // passes consumed; on a subset it would flag markers whose
            // pass simply didn't run.
            if sel.contains(&"unusedallow") && !ESCAPABLE_PASSES.iter().all(|p| sel.contains(p)) {
                eprintln!(
                    "fcma-audit: `unusedallow` needs every escapable pass selected \
                     (it checks which allow markers were consumed)"
                );
                return ExitCode::from(2);
            }
            sel
        }
    };

    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    match command.as_deref() {
        Some("check") => {}
        Some("stats") => {
            if passes.is_some() {
                eprintln!("fcma-audit: `stats` always covers every pass; drop --passes");
                return ExitCode::from(2);
            }
            return match fcma_audit::analyze(&root) {
                Ok(ws) => {
                    print!("{}", fcma_audit::render_stats(&ws.stats()));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("fcma-audit: error: {e}");
                    ExitCode::from(2)
                }
            };
        }
        Some(other) => {
            eprintln!("fcma-audit: unknown command `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
        None => {
            eprintln!("fcma-audit: missing command\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    match fcma_audit::analyze(&root) {
        Ok(ws) => {
            let violations = ws.run_selected(&selected);
            print!("{}", fcma_audit::render(&violations, format));
            if violations.is_empty() {
                // JSON consumers get a silent empty stream; humans get
                // a confirmation line.
                if format == Format::Human {
                    println!("fcma-audit: clean");
                }
                ExitCode::SUCCESS
            } else {
                if format == Format::Human {
                    println!("fcma-audit: {} violation(s)", violations.len());
                }
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("fcma-audit: error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: fcma-audit check [--root DIR] [--format human|json] [--passes a,b,c]
       fcma-audit stats [--root DIR]

commands:
  check  run the audit passes and print violations (exit 1 if any)
  stats  print per-pass violation and allow-marker counts as JSON
         (CI diffs this against the committed audit-baseline.json)

output:
  --format human  file:line: pass: message (default)
  --format json   one JSON object per violation:
                  {\"file\":…,\"line\":…,\"pass\":…,\"message\":…}
  --passes a,b,c  run only the named passes (`unusedallow` requires
                  every escapable pass to be selected with it)

passes:
  unsafe       no `unsafe` blocks anywhere (no escape hatch)
  cast         no `as` numeric casts in kernel crates (fcma-linalg, fcma-core)
  proptest     every pub fn kernel in fcma-linalg has a property test
  moddoc       every src/*.rs has module-level //! docs
  tracename    every span!/event!/counter!/histogram! name is snake.dotted
               and documented in DESIGN.md §Observability
  layering     Cargo.toml edges and fcma_*:: references obey the crate
               DAG in DESIGN.md §Architecture contracts
  panicpath    no library pub fn reaches panic!/unwrap/expect/[idx]
               (call-graph transitive; `# Panics` docs excuse a fn)
  protocol     ToWorker/FromWorker variants ↔ driver match arms ↔ the
               DESIGN.md §Architecture contracts protocol table
  deadpub      no workspace-pub item without cross-crate references
  syncfacade   no raw std::sync/std::thread/crossbeam_channel/parking_lot
               outside the fcma-sync facade (Arc/Weak stay allowed)
  lockorder    every .lock() receiver declared in DESIGN.md §13 and
               acquired in strictly increasing rank (call-graph transitive)
  blockinlock  no channel recv / file I/O reachable while a facade lock
               is held
  allocinloop  no heap allocation inside a loop of a hot fn, directly or
               through callees (DESIGN.md §14 table or `// audit: hot`)
  boundsinloop no `base[i]` indexing by the induction variable in an
               innermost hot loop (use slices/iterators/chunks)
  accumorder   no float compound accumulation across iterations of a hot
               loop without an `// audit: allow(accumorder)` justification
  hotcallout   hot fns call only hot or `// audit: pure` fns; no console
               I/O, trace probes, locks, or blocking calls in hot code
  unusedallow  every allow marker must suppress something

fn markers (on the fn line or the line directly above):
  // audit: hot   treat this fn as hot even if absent from DESIGN.md §14
  // audit: pure  trusted leaf: hot fns may call it; its body is not
                  scanned by hotcallout (allocation still propagates)

escape markers (same line or the line above; reason mandatory):
  // audit: allow(cast) — <reason>
  // audit: allow(proptest) — <reason>
  // audit: allow(tracename) — <reason>
  // audit: allow(panicpath) — <reason>
  // audit: allow(deadpub) — <reason>
  // audit: allow(syncfacade) — <reason>
  // audit: allow(lockorder) — <reason>
  // audit: allow(blockinlock) — <reason>
  // audit: allow(allocinloop) — <reason>
  // audit: allow(boundsinloop) — <reason>
  // audit: allow(accumorder) — <reason>
  // audit: allow(hotcallout) — <reason>";
