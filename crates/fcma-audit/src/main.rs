//! Command-line driver for the FCMA static-analysis audit.
//!
//! Usage: `fcma-audit check [--root DIR] [--format human|json]
//! [--passes a,b,c] [--changed [--since REF]]`,
//! `fcma-audit stats [--root DIR] [--check FILE]`, or
//! `fcma-audit mutants [--root DIR] [--format human|json]`.
//!
//! With no `--root`, the workspace root is resolved from the location
//! of this crate at compile time (two levels above its manifest), so
//! `cargo run -p fcma-audit -- check` works from any directory inside
//! the workspace.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fcma_audit::format::json_str;
use fcma_audit::passes::{ESCAPABLE_PASSES, PASS_NAMES};
use fcma_audit::Format;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut command: Option<String> = None;
    let mut passes: Option<Vec<String>> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut changed = false;
    let mut since: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fcma-audit: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--changed" => changed = true,
            "--since" => match it.next() {
                Some(r) => since = Some(r.clone()),
                None => {
                    eprintln!("fcma-audit: --since requires a git ref argument");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next().and_then(|v| Format::parse(v)) {
                Some(f) => format = f,
                None => {
                    eprintln!("fcma-audit: --format requires `human` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--passes" => match it.next() {
                Some(list) => {
                    passes = Some(list.split(',').map(str::to_owned).collect());
                }
                None => {
                    eprintln!("fcma-audit: --passes requires a comma-separated pass list");
                    return ExitCode::from(2);
                }
            },
            "--check" => match it.next() {
                Some(path) => baseline = Some(PathBuf::from(path)),
                None => {
                    eprintln!("fcma-audit: --check requires a baseline file argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if command.is_none() => command = Some(other.to_owned()),
            other => {
                eprintln!("fcma-audit: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let selected: Vec<&str> = match &passes {
        None => PASS_NAMES.to_vec(),
        Some(list) => {
            let mut sel = Vec::new();
            for p in list {
                match PASS_NAMES.iter().find(|known| **known == p.as_str()) {
                    Some(known) => sel.push(*known),
                    None => {
                        eprintln!(
                            "fcma-audit: unknown pass `{p}` (known: {})",
                            PASS_NAMES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            sel
        }
    };

    match command.as_deref() {
        Some("check") => {
            if baseline.is_some() {
                eprintln!("fcma-audit: --check belongs to the `stats` command");
                return ExitCode::from(2);
            }
        }
        Some("stats") => {
            if passes.is_some() {
                eprintln!("fcma-audit: `stats` always covers every pass; drop --passes");
                return ExitCode::from(2);
            }
        }
        Some("mutants") => {
            if passes.is_some() || baseline.is_some() {
                eprintln!("fcma-audit: `mutants` takes only --root and --format");
                return ExitCode::from(2);
            }
        }
        Some(other) => {
            eprintln!("fcma-audit: unknown command `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
        None => {
            eprintln!("fcma-audit: missing command\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    if (changed || since.is_some()) && command.as_deref() != Some("check") {
        eprintln!("fcma-audit: --changed/--since belong to the `check` command");
        return ExitCode::from(2);
    }
    if since.is_some() && !changed {
        eprintln!("fcma-audit: --since requires --changed");
        return ExitCode::from(2);
    }

    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    // Analysis first: selection validation below is data-driven (it
    // needs the workspace's actual markers, not just the pass list).
    let ws = match fcma_audit::analyze(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("fcma-audit: error: {e}");
            return ExitCode::from(2);
        }
    };

    // A malformed DESIGN.md contract row is a tool-level failure for
    // every command: the passes would otherwise run against a silently
    // weaker contract than the one the document appears to declare.
    if !ws.contracts.errors.is_empty() {
        for e in &ws.contracts.errors {
            eprintln!("fcma-audit: {e}");
        }
        eprintln!(
            "fcma-audit: {} malformed DESIGN.md contract row(s); fix the document",
            ws.contracts.errors.len()
        );
        return ExitCode::from(2);
    }

    if command.as_deref() == Some("mutants") {
        let mutants = fcma_audit::mutants::enumerate(&ws);
        for m in &mutants {
            match format {
                Format::Human => {
                    println!("{}:{}: {}: {}", m.rel_path, m.line + 1, m.class, m.description);
                }
                Format::Json => println!(
                    "{{\"id\":{},\"class\":{},\"file\":{},\"line\":{},\"fn\":{},\
                     \"description\":{}}}",
                    json_str(&m.id()),
                    json_str(m.class),
                    json_str(&m.rel_path),
                    m.line + 1,
                    json_str(m.fn_name.as_deref().unwrap_or("")),
                    json_str(&m.description)
                ),
            }
        }
        if format == Format::Human {
            println!("fcma-audit: {} mutant(s) enumerated", mutants.len());
        }
        return ExitCode::SUCCESS;
    }

    if command.as_deref() == Some("stats") {
        let stats = ws.stats();
        let Some(path) = baseline else {
            print!("{}", fcma_audit::render_stats(&stats));
            return ExitCode::SUCCESS;
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fcma-audit: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let Some(base) = fcma_audit::parse_stats(&text) else {
            eprintln!(
                "fcma-audit: baseline {} is not a stats document (regenerate it with \
                 `fcma-audit stats`)",
                path.display()
            );
            return ExitCode::from(2);
        };
        let delta = fcma_audit::render_stats_delta(&base, &stats);
        return if delta.is_empty() {
            println!("fcma-audit: stats match {}", path.display());
            ExitCode::SUCCESS
        } else {
            println!("fcma-audit: stats drift against {}:", path.display());
            print!("{delta}");
            println!("regenerate with `cargo run -p fcma-audit -- stats > {}`", path.display());
            ExitCode::from(1)
        };
    }

    // `unusedallow` decides staleness from which markers the other
    // passes consumed; excluding a pass whose markers exist in the tree
    // would flag those markers as stale only because their pass did not
    // run. Reject exactly those selections, naming the stranded markers.
    if passes.is_some() && selected.contains(&"unusedallow") {
        let mut stranded = Vec::new();
        let race_selected = selected.contains(&"threadescape") && selected.contains(&"lockset");
        for f in &ws.files {
            for m in f.markers() {
                if ESCAPABLE_PASSES.contains(&m.pass.as_str())
                    && !selected.contains(&m.pass.as_str())
                {
                    stranded.push(format!("{}:{}: allow({})", f.rel_path, m.line + 1, m.pass));
                }
            }
            if !race_selected {
                for d in f.disjoint_markers() {
                    stranded.push(format!("{}:{}: disjoint({})", f.rel_path, d.line + 1, d.what));
                }
            }
        }
        if !stranded.is_empty() {
            eprintln!(
                "fcma-audit: `unusedallow` is selected but --passes excludes passes whose \
                 markers exist in the tree (they would be reported stale only because their \
                 pass did not run); select those passes too, or drop `unusedallow`:"
            );
            for s in stranded {
                eprintln!("  {s}");
            }
            return ExitCode::from(2);
        }
    }

    let mut violations = ws.run_selected(&selected);
    if changed {
        match changed_files(&root, since.as_deref().unwrap_or("HEAD")) {
            Some(files) => {
                violations.retain(|v| files.contains(&v.file));
            }
            None => eprintln!(
                "fcma-audit: --changed: git unavailable or not a repository; \
                 reporting the full run"
            ),
        }
    }
    print!("{}", fcma_audit::render(&violations, format));
    if violations.is_empty() {
        // JSON consumers get a silent empty stream; humans get a
        // confirmation line.
        if format == Format::Human {
            println!("fcma-audit: clean");
        }
        ExitCode::SUCCESS
    } else {
        if format == Format::Human {
            println!("fcma-audit: {} violation(s)", violations.len());
        }
        ExitCode::from(1)
    }
}

/// Workspace-relative paths changed against `reference`, per
/// `git diff --name-only` plus untracked files; `None` when git is
/// unavailable or the root is not a repository, in which case the
/// caller falls back to the full run (a scoping aid must never hide
/// violations just because git is missing).
fn changed_files(root: &Path, reference: &str) -> Option<std::collections::BTreeSet<String>> {
    let run = |args: &[&str]| {
        let out = std::process::Command::new("git").arg("-C").arg(root).args(args).output().ok()?;
        out.status.success().then(|| String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let diff = run(&["diff", "--name-only", reference])?;
    let untracked = run(&["ls-files", "--others", "--exclude-standard"]).unwrap_or_default();
    Some(diff.lines().chain(untracked.lines()).map(str::to_owned).collect())
}

const USAGE: &str = "usage: fcma-audit check [--root DIR] [--format human|json] [--passes a,b,c]
                        [--changed [--since REF]]
       fcma-audit stats [--root DIR] [--check FILE]
       fcma-audit mutants [--root DIR] [--format human|json]

commands:
  check    run the audit passes and print violations (exit 1 if any)
  stats    print per-pass violation and allow-marker counts as JSON;
           with --check FILE, compare against the committed baseline and
           print a per-pass delta table on drift (exit 1)
  mutants  enumerate the semantic mutants the fcma-mut engine would
           apply, as file:line: class: description (or --format json);
           the classification itself lives in `cargo run -p fcma-mut`

any command exits 2 when DESIGN.md contains malformed contract rows
(bad lock-order/atomics/hot-fn/mutation table entries are named errors,
never silent skips)

output:
  --format human  file:line: pass: message (default)
  --format json   one JSON object per violation:
                  {\"file\":…,\"line\":…,\"pass\":…,\"message\":…}
  --passes a,b,c  run only the named passes; selecting `unusedallow`
                  while excluding a pass whose allow/disjoint markers
                  exist in the tree is rejected (stranded markers would
                  read as stale)
  --check FILE    (stats) compare against FILE instead of printing
  --changed       (check) report only violations in files changed per
                  `git diff --name-only` against --since REF (default
                  HEAD) plus untracked files; every pass still runs over
                  the whole tree, so cross-file analyses stay sound.
                  Falls back to the full report when git is unavailable

passes:
  unsafe       no `unsafe` blocks anywhere (no escape hatch)
  cast         no `as` numeric casts in kernel crates (fcma-linalg, fcma-core)
  proptest     every pub fn kernel in fcma-linalg has a property test
  moddoc       every src/*.rs has module-level //! docs
  tracename    every span!/event!/counter!/histogram! name is snake.dotted
               and documented in DESIGN.md §Observability
  layering     Cargo.toml edges and fcma_*:: references obey the crate
               DAG in DESIGN.md §Architecture contracts
  panicpath    no library pub fn reaches panic!/unwrap/expect/[idx]
               (call-graph transitive; `# Panics` docs excuse a fn)
  protocol     ToWorker/FromWorker variants ↔ driver match arms ↔ the
               DESIGN.md §Architecture contracts protocol table
  deadpub      no workspace-pub item without cross-crate references
  syncfacade   no raw std::sync/std::thread/crossbeam_channel/parking_lot
               outside the fcma-sync facade (Arc/Weak stay allowed)
  lockorder    every .lock() receiver declared in DESIGN.md §13 and
               acquired in strictly increasing rank (call-graph transitive)
  blockinlock  no channel recv / file I/O reachable while a facade lock
               is held
  allocinloop  no heap allocation inside a loop of a hot fn, directly or
               through callees (DESIGN.md §14 table or `// audit: hot`)
  boundsinloop no `base[i]` indexing by the induction variable in an
               innermost hot loop (use slices/iterators/chunks)
  accumorder   no float compound accumulation across iterations of a hot
               loop without an `// audit: allow(accumorder)` justification
  hotcallout   hot fns call only hot or `// audit: pure` fns; no console
               I/O, trace probes, locks, or blocking calls in hot code
  threadescape values captured by closures crossing pool.run*/spawn/
               channel-send boundaries must be immutable, facade-atomic,
               lock-guarded, or declared disjoint
  lockset      plain fields of shared structs written from >=2 fns must
               hold a non-empty intersection of facade locks
               (Eraser-style, call-graph entry sets)
  atomicorder  every Ordering::* site matches a DESIGN.md §16 atomics
               contract row (orderings allowed, site count, seqlock
               writer/reader publish shape)
  unusedallow  every allow or disjoint marker must suppress something

fn markers (on the fn line or the line directly above):
  // audit: hot   treat this fn as hot even if absent from DESIGN.md §14
  // audit: pure  trusted leaf: hot fns may call it; its body is not
                  scanned by hotcallout (allocation still propagates)

escape markers (same line or the line above; reason mandatory):
  // audit: allow(cast) — <reason>
  // audit: allow(proptest) — <reason>
  // audit: allow(tracename) — <reason>
  // audit: allow(panicpath) — <reason>
  // audit: allow(deadpub) — <reason>
  // audit: allow(syncfacade) — <reason>
  // audit: allow(lockorder) — <reason>
  // audit: allow(blockinlock) — <reason>
  // audit: allow(allocinloop) — <reason>
  // audit: allow(boundsinloop) — <reason>
  // audit: allow(accumorder) — <reason>
  // audit: allow(hotcallout) — <reason>
  // audit: allow(threadescape) — <reason>
  // audit: allow(lockset) — <reason>
  // audit: allow(atomicorder) — <reason>

disjoint markers (same line or the line above; reason mandatory):
  // audit: disjoint(<binding or field>) — <reason>
                  declares that a mutable value handed to worker tasks
                  is partitioned into non-overlapping per-task pieces
                  (consumed by threadescape/lockset; stale ones fail
                  unusedallow)

mutation-triage markers (same line or the line above; reason mandatory):
  // audit: equivalent(<mutant class>) — <reason>
                  declares that the mutant fcma-mut seeds at this site is
                  semantically equivalent to the original program, so no
                  oracle can kill it; unknown classes, missing reasons,
                  and markers with no enumerated mutant under them fail
                  unusedallow";
