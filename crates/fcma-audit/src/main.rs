//! Command-line driver for the FCMA static-analysis audit.
//!
//! Usage: `fcma-audit check [--root DIR]`
//!
//! With no `--root`, the workspace root is resolved from the location
//! of this crate at compile time (two levels above its manifest), so
//! `cargo run -p fcma-audit -- check` works from any directory inside
//! the workspace.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut command: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fcma-audit: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if command.is_none() => command = Some(other.to_owned()),
            other => {
                eprintln!("fcma-audit: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    match command.as_deref() {
        Some("check") => {}
        Some(other) => {
            eprintln!("fcma-audit: unknown command `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
        None => {
            eprintln!("fcma-audit: missing command\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    match fcma_audit::audit(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("fcma-audit: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("fcma-audit: {} violation(s)", violations.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("fcma-audit: error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: fcma-audit check [--root DIR]

passes:
  unsafe     no `unsafe` blocks anywhere (no escape hatch)
  unwrap     no .unwrap()/.expect() in library code
  cast       no `as` numeric casts in kernel crates (fcma-linalg, fcma-core)
  proptest   every pub fn kernel in fcma-linalg has a property test
  moddoc     every src/*.rs has module-level //! docs
  tracename  every span!/event!/counter!/histogram! name is snake.dotted
             and documented in DESIGN.md §Observability

escape markers (same line or the line above):
  // audit: allow(unwrap) — <reason>
  // audit: allow(cast) — <reason>
  // audit: allow(proptest) — <reason>
  // audit: allow(tracename) — <reason>";
