//! Command-line driver for the FCMA static-analysis audit.
//!
//! Usage: `fcma-audit check [--root DIR] [--format human|json]`
//!
//! With no `--root`, the workspace root is resolved from the location
//! of this crate at compile time (two levels above its manifest), so
//! `cargo run -p fcma-audit -- check` works from any directory inside
//! the workspace.

use std::path::PathBuf;
use std::process::ExitCode;

use fcma_audit::Format;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut command: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fcma-audit: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next().and_then(|v| Format::parse(v)) {
                Some(f) => format = f,
                None => {
                    eprintln!("fcma-audit: --format requires `human` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if command.is_none() => command = Some(other.to_owned()),
            other => {
                eprintln!("fcma-audit: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    match command.as_deref() {
        Some("check") => {}
        Some(other) => {
            eprintln!("fcma-audit: unknown command `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
        None => {
            eprintln!("fcma-audit: missing command\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    match fcma_audit::audit(&root) {
        Ok(violations) => {
            print!("{}", fcma_audit::render(&violations, format));
            if violations.is_empty() {
                // JSON consumers get a silent empty stream; humans get
                // a confirmation line.
                if format == Format::Human {
                    println!("fcma-audit: clean");
                }
                ExitCode::SUCCESS
            } else {
                if format == Format::Human {
                    println!("fcma-audit: {} violation(s)", violations.len());
                }
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("fcma-audit: error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: fcma-audit check [--root DIR] [--format human|json]

output:
  --format human  file:line: pass: message (default)
  --format json   one JSON object per violation:
                  {\"file\":…,\"line\":…,\"pass\":…,\"message\":…}

passes:
  unsafe       no `unsafe` blocks anywhere (no escape hatch)
  cast         no `as` numeric casts in kernel crates (fcma-linalg, fcma-core)
  proptest     every pub fn kernel in fcma-linalg has a property test
  moddoc       every src/*.rs has module-level //! docs
  tracename    every span!/event!/counter!/histogram! name is snake.dotted
               and documented in DESIGN.md §Observability
  layering     Cargo.toml edges and fcma_*:: references obey the crate
               DAG in DESIGN.md §Architecture contracts
  panicpath    no library pub fn reaches panic!/unwrap/expect/[idx]
               (call-graph transitive; `# Panics` docs excuse a fn)
  protocol     ToWorker/FromWorker variants ↔ driver match arms ↔ the
               DESIGN.md §Architecture contracts protocol table
  deadpub      no workspace-pub item without cross-crate references
  syncfacade   no raw std::sync/std::thread/crossbeam_channel/parking_lot
               outside the fcma-sync facade (Arc/Weak stay allowed)
  lockorder    every .lock() receiver declared in DESIGN.md §13 and
               acquired in strictly increasing rank (call-graph transitive)
  blockinlock  no channel recv / file I/O reachable while a facade lock
               is held
  unusedallow  every allow marker must suppress something

escape markers (same line or the line above; reason mandatory):
  // audit: allow(cast) — <reason>
  // audit: allow(proptest) — <reason>
  // audit: allow(tracename) — <reason>
  // audit: allow(panicpath) — <reason>
  // audit: allow(deadpub) — <reason>
  // audit: allow(syncfacade) — <reason>
  // audit: allow(lockorder) — <reason>
  // audit: allow(blockinlock) — <reason>";
