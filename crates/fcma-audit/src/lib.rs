//! fcma-audit: workspace-wide static analysis for the FCMA codebase.
//!
//! A zero-dependency (std-only) lint tool that walks the workspace
//! source tree and enforces project-specific invariants that `clippy`
//! cannot express: no `unsafe` anywhere, no panicking `.unwrap()` /
//! `.expect()` in library code, no lossy `as` casts in the numeric
//! kernel crates, property-test coverage of every public linalg kernel,
//! and module-level documentation on every source file.
//!
//! Run it with `cargo run -p fcma-audit -- check`. Exit code 0 means
//! clean, 1 means violations were printed, 2 means the tool itself
//! could not run (bad usage or I/O failure).
//!
//! The implementation deliberately avoids `syn`: a line-preserving
//! scrubbing lexer ([`lexer`]) plus a brace-depth scope analyzer
//! ([`source`]) are exact for the constructs these passes need, keep
//! the tool dependency-free, and make diagnostics trivially clickable.

pub mod lexer;
pub mod passes;
pub mod source;
pub mod workspace;

use std::io;
use std::path::Path;

pub use passes::Violation;

/// Analyze the workspace at `root` and return all violations.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading sources.
pub fn audit(root: &Path) -> io::Result<Vec<Violation>> {
    let files = workspace::discover(root)?;
    Ok(passes::run_all(&files))
}
