//! fcma-audit: workspace-wide static analysis for the FCMA codebase.
//!
//! A zero-dependency (std-only) lint tool that walks the workspace
//! source tree and enforces project-specific invariants that `clippy`
//! cannot express: no `unsafe` anywhere, no panicking `.unwrap()` /
//! `.expect()` in library code, no lossy `as` casts in the numeric
//! kernel crates, property-test coverage of every public linalg kernel,
//! module-level documentation on every source file, and trace-probe
//! names that match the span/counter taxonomy documented in
//! DESIGN.md §Observability.
//!
//! Run it with `cargo run -p fcma-audit -- check`. Exit code 0 means
//! clean, 1 means violations were printed, 2 means the tool itself
//! could not run (bad usage or I/O failure).
//!
//! The implementation deliberately avoids `syn`: a line-preserving
//! scrubbing lexer ([`lexer`]) plus a brace-depth scope analyzer
//! ([`source`]) are exact for the constructs these passes need, keep
//! the tool dependency-free, and make diagnostics trivially clickable.

pub mod lexer;
pub mod passes;
pub mod source;
pub mod workspace;

use std::io;
use std::path::Path;

pub use passes::{Taxonomy, Violation};

/// Analyze the workspace at `root` and return all violations.
///
/// The trace-name taxonomy is parsed from `<root>/DESIGN.md`; if the
/// file or its §Observability section is absent, the `tracename` pass
/// still checks name shape but skips the membership check.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading sources.
pub fn audit(root: &Path) -> io::Result<Vec<Violation>> {
    let files = workspace::discover(root)?;
    let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    let taxonomy = design.as_deref().and_then(Taxonomy::from_design_md);
    Ok(passes::run_all(&files, taxonomy.as_ref()))
}
