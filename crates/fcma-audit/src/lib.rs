//! fcma-audit: workspace-wide static analysis for the FCMA codebase.
//!
//! A zero-dependency (std-only) lint tool that walks the workspace
//! source tree and enforces project-specific invariants that `clippy`
//! cannot express: no `unsafe` anywhere, no lossy `as` casts in the
//! numeric kernel crates, property-test coverage of every public linalg
//! kernel, module-level documentation on every source file, trace-probe
//! names that match the DESIGN.md §Observability taxonomy, the crate
//! layering DAG of DESIGN.md §Architecture contracts, call-graph panic
//! reachability of library `pub fn`s, master–worker protocol
//! conformance, workspace-`pub` items nobody references, stale
//! allow markers, the DESIGN.md §14 hot-path performance contracts
//! (no allocation, bounds-checked gathers, order-unstable float
//! accumulation, or I/O/locking callouts inside hot kernel loops), and
//! three race-detection passes: thread-escape analysis of values
//! captured by pool/spawn/channel boundaries ([`escape`]), Eraser-style
//! lockset intersection over the call graph ([`lockset`]), and the
//! DESIGN.md §16 atomics memory-ordering contracts with a seqlock
//! publish-protocol shape check ([`passes::check_atomicorder`]).
//!
//! Run it with `cargo run -p fcma-audit -- check [--format human|json]
//! [--passes a,b,c]`. Exit code 0 means clean, 1 means violations were
//! printed, 2 means the tool itself could not run (bad usage or I/O
//! failure).
//!
//! The implementation deliberately avoids `syn`: a line-preserving
//! scrubbing lexer ([`lexer`]) feeds a brace-depth scope analyzer
//! ([`source`]) and a token-tree item parser ([`parser`]); [`graph`]
//! assembles the crate-dependency graph from the manifests and the call
//! graph from the parsed items, and [`cfg`]/[`dataflow`] recover loop
//! structure and reaching definitions for the hot-path passes. This
//! stays exact for the constructs the passes need, keeps the tool
//! dependency-free, and makes diagnostics trivially clickable.

pub mod cfg;
pub mod dataflow;
pub mod escape;
pub mod format;
pub mod graph;
pub mod lexer;
pub mod lockset;
pub mod mutants;
pub mod parser;
pub mod passes;
pub mod source;
pub mod workspace;

use std::io;
use std::path::Path;

pub use format::{parse_stats, render, render_stats, render_stats_delta, Format};
pub use passes::{Taxonomy, Violation, Workspace};

use graph::{Contracts, CrateGraph};

/// Analyze the workspace at `root` and return all violations.
///
/// The trace-name taxonomy is parsed from `<root>/DESIGN.md`
/// §Observability and the layering/protocol contracts from
/// §Architecture contracts; when a section is absent, the passes that
/// depend on it skip their contract half (shape checks still run).
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading sources.
pub fn audit(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(analyze(root)?.run_all())
}

/// Build the full workspace model (files, crate graph, contracts)
/// without running the passes — for callers that want the model itself.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading sources.
pub fn analyze(root: &Path) -> io::Result<Workspace> {
    let files = workspace::discover(root)?;
    let crates = CrateGraph::discover(root)?;
    let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    let taxonomy = design.as_deref().and_then(Taxonomy::from_design_md);
    let contracts = design.as_deref().map(Contracts::from_design_md).unwrap_or_default();
    Ok(Workspace::new(files, crates, contracts, taxonomy))
}
