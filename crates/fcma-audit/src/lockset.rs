//! `lockset`: Eraser-style lockset intersection over the call graph.
//! For every plain (non-synchronized) field of a *shared* struct — one
//! that also carries a `Mutex`/`RwLock`/`Condvar`/`Atomic*` field, the
//! marker that its instances are reached from more than one thread —
//! the set of facade locks held at every access must have a non-empty
//! intersection whenever the field is written and accessed from two or
//! more functions. An empty lockset is the classic data-race witness:
//! no single lock consistently protects the field.
//!
//! Held-lock sets reuse the `lockorder` scaffolding: direct `.lock()`
//! sites are held from their line to the end of the enclosing function
//! (the same conservative guard lifetime `lockorder` assumes), and a
//! function's entry set is the *intersection* over its callers of what
//! each caller holds at the call site, iterated to a fixed point — a
//! callee reached only from locked contexts inherits the lock, one
//! reachable from any unlocked context does not.
//!
//! Escape hatches: `// audit: allow(lockset) — <reason>` on an access
//! line, or `// audit: disjoint(<field>) — <reason>` when the access
//! pattern partitions the field (different tasks touch disjoint parts).

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{TypeItem, TypeKind};
use crate::passes::{contains_word, lock_graph, Violation, Workspace};
use crate::source::SourceFile;

/// Synchronization primitives whose presence marks a struct as shared.
const SYNC_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// One field of a struct, extracted lexically (the item parser skips
/// struct bodies).
struct Field {
    name: String,
    type_text: String,
}

/// One access to a tracked field.
struct Access {
    node: usize,
    file: usize,
    /// 0-based line.
    line: usize,
    write: bool,
    /// Facade locks held at the access.
    held: BTreeSet<String>,
}

/// Pass: see the module docs.
pub fn check_lockset(ws: &Workspace) -> Vec<Violation> {
    let (graph, sites) = lock_graph(ws, "lockset");
    if graph.nodes.is_empty() {
        return Vec::new();
    }

    // Entry-held fixed point (see module docs).
    let universe: BTreeSet<String> =
        sites.iter().flatten().filter_map(|s| s.recv.clone()).collect();
    let mut entry: Vec<BTreeSet<String>> = (0..graph.nodes.len())
        .map(|i| if graph.callers[i].is_empty() { BTreeSet::new() } else { universe.clone() })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..graph.nodes.len() {
            for &(j, line) in &graph.callees[i] {
                let mut contrib = entry[i].clone();
                contrib.extend(
                    sites[i].iter().filter(|s| s.line <= line).filter_map(|s| s.recv.clone()),
                );
                let next: BTreeSet<String> = entry[j].intersection(&contrib).cloned().collect();
                if next != entry[j] {
                    entry[j] = next;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Plain fields of shared structs, by field name.
    let mut tracked: BTreeMap<String, (String, String)> = BTreeMap::new(); // field → (struct, file)
    let in_scope_file = |fi: usize| graph.nodes.iter().any(|n| n.file == fi);
    for (fi, f) in ws.files.iter().enumerate() {
        if !in_scope_file(fi) {
            continue;
        }
        for t in &ws.parsed[fi].types {
            if t.kind != TypeKind::Struct || f.in_test_span(t.line) {
                continue;
            }
            let fields = struct_fields(f, t);
            if !fields.iter().any(|fd| is_sync_type(&fd.type_text)) {
                continue;
            }
            for fd in fields.iter().filter(|fd| !is_sync_type(&fd.type_text)) {
                tracked
                    .entry(fd.name.clone())
                    .or_insert_with(|| (t.name.clone(), f.rel_path.clone()));
            }
        }
    }
    if tracked.is_empty() {
        return Vec::new();
    }

    // Collect accesses across the in-scope call graph.
    let mut accesses: BTreeMap<&str, Vec<Access>> = BTreeMap::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        let f = &ws.files[n.file];
        let Some((b0, b1)) = ws.parsed[n.file].fns[n.idx].body else {
            continue;
        };
        for l in b0..=b1 {
            let code = &f.scan.code_lines[l];
            for name in tracked.keys() {
                let Some(write) = field_access(code, name) else {
                    continue;
                };
                if ws.allowed(n.file, "lockset", l) || ws.disjoint_allowed(n.file, name, l) {
                    continue;
                }
                let mut held = entry[i].clone();
                held.extend(sites[i].iter().filter(|s| s.line <= l).filter_map(|s| s.recv.clone()));
                accesses.entry(name.as_str()).push_or(Access {
                    node: i,
                    file: n.file,
                    line: l,
                    write,
                    held,
                });
            }
        }
    }

    let mut out = Vec::new();
    for (field, acc) in &accesses {
        let fns: BTreeSet<usize> = acc.iter().map(|a| a.node).collect();
        if fns.len() < 2 || !acc.iter().any(|a| a.write) {
            continue;
        }
        let mut common = acc[0].held.clone();
        for a in &acc[1..] {
            common = common.intersection(&a.held).cloned().collect();
        }
        if !common.is_empty() {
            continue;
        }
        let (struct_name, _) = &tracked[*field];
        let w = acc.iter().find(|a| a.write).unwrap_or(&acc[0]);
        out.push(Violation {
            file: ws.files[w.file].rel_path.clone(),
            line: w.line + 1,
            pass: "lockset",
            message: format!(
                "field `{field}` of shared struct `{struct_name}` is written with an empty \
                 lockset ({} accessing functions hold no common facade lock); guard every \
                 access with one declared lock, make the field atomic, or classify it \
                 `// audit: disjoint({field}) — <reason>`",
                fns.len()
            ),
        });
    }
    out
}

/// Does `Vec::entry(..).push_or(..)` — tiny helper trait to keep the
/// access-collection loop readable.
trait PushOr {
    fn push_or(self, a: Access);
}

impl PushOr for std::collections::btree_map::Entry<'_, &str, Vec<Access>> {
    fn push_or(self, a: Access) {
        self.or_default().push(a);
    }
}

/// Is this field type a synchronization primitive (never a plain field)?
fn is_sync_type(type_text: &str) -> bool {
    SYNC_TYPES.iter().any(|t| contains_word(type_text, t))
        || type_text
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .any(|w| w.starts_with("Atomic"))
}

/// `.field` access on one scrubbed line: `Some(is_write)` for the first
/// occurrence that is a field access (not a method call), else `None`.
fn field_access(code: &str, field: &str) -> Option<bool> {
    let chars: Vec<char> = code.chars().collect();
    let flen = field.chars().count();
    let mut i = 0usize;
    while i + flen < chars.len() + 1 {
        if chars[i] != '.' {
            i += 1;
            continue;
        }
        let s = i + 1;
        if s + flen > chars.len()
            || chars[s..s + flen].iter().collect::<String>() != field
            || chars.get(s + flen).is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
        {
            i += 1;
            continue;
        }
        let mut j = s + flen;
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) == Some(&'(') {
            i = s + flen; // method call, keep scanning
            continue;
        }
        // `&mut recv.field` is a write-capable borrow.
        let mut b = i;
        while b > 0 && (chars[b - 1].is_ascii_alphanumeric() || chars[b - 1] == '_') {
            b -= 1;
        }
        let lead: String = chars[..b].iter().collect();
        if lead.trim_end().ends_with("&mut") {
            return Some(true);
        }
        let write = match chars.get(j) {
            Some('=') if chars.get(j + 1) != Some(&'=') && chars.get(j + 1) != Some(&'>') => true,
            Some(&op) if "+-*/%&|^".contains(op) && chars.get(j + 1) == Some(&'=') => true,
            _ => false,
        };
        return Some(write);
    }
    None
}

/// Lexical field extraction for a struct item (the token-tree parser
/// deliberately skips struct bodies). Tuple and unit structs yield no
/// fields.
fn struct_fields(f: &SourceFile, t: &TypeItem) -> Vec<Field> {
    let lines = &f.scan.code_lines;
    let mut fields = Vec::new();
    // Find the opening `{` (skipping `(`/`;` forms).
    let mut open: Option<(usize, usize)> = None;
    'find: for (lno, code) in lines.iter().enumerate().skip(t.line).take(6) {
        let from = if lno == t.line {
            // Start after the struct name to skip derive-attr braces.
            code.find("struct").unwrap_or_default()
        } else {
            0
        };
        for (col, c) in code.chars().enumerate().skip(from) {
            match c {
                '{' => {
                    open = Some((lno, col));
                    break 'find;
                }
                '(' | ';' => return fields,
                _ => {}
            }
        }
    }
    let Some((start_line, start_col)) = open else {
        return fields;
    };
    let mut depth = 0i32; // brace depth
    let mut nest = 0i32; // paren/bracket/angle depth inside a type
    let mut pending_name: Option<String> = None;
    let mut type_text = String::new();
    let mut word = String::new();
    let mut in_type = false;
    for (lno, code) in lines.iter().enumerate().skip(start_line) {
        for (col, c) in code.chars().enumerate() {
            if lno == start_line && col < start_col {
                continue;
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        if let Some(name) = pending_name.take() {
                            fields.push(Field { name, type_text: std::mem::take(&mut type_text) });
                        }
                        return fields;
                    }
                }
                _ => {}
            }
            if depth != 1 && !(c == '}' && depth == 0) {
                if in_type {
                    type_text.push(c);
                }
                continue;
            }
            if in_type {
                match c {
                    '<' | '(' | '[' => nest += 1,
                    '>' | ')' | ']' => nest -= 1,
                    ',' if nest == 0 => {
                        if let Some(name) = pending_name.take() {
                            fields.push(Field { name, type_text: std::mem::take(&mut type_text) });
                        }
                        in_type = false;
                        continue;
                    }
                    _ => {}
                }
                type_text.push(c);
            } else if c.is_ascii_alphanumeric() || c == '_' {
                word.push(c);
            } else {
                if c == ':' && !word.is_empty() && word != "pub" && word != "crate" {
                    pending_name = Some(std::mem::take(&mut word));
                    in_type = true;
                    nest = 0;
                    continue;
                }
                word.clear();
            }
        }
        if in_type {
            type_text.push(' ');
        }
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Contracts, CrateGraph};
    use crate::source::{Role, SourceFile};

    fn ws_of(src: &str) -> Workspace {
        let f = SourceFile::new("crates/fcma-core/src/a.rs", Some("fcma-core"), Role::Lib, src);
        Workspace::new(vec![f], CrateGraph::default(), Contracts::default(), None)
    }

    fn hits(src: &str) -> Vec<Violation> {
        check_lockset(&ws_of(src))
    }

    const SHARED: &str = "//! m\nstruct Shared {\n    guard: Mutex<u32>,\n    count: usize,\n}\n";

    #[test]
    fn empty_lockset_write_fires() {
        let src = format!(
            "{SHARED}fn writer(s: &mut Shared) {{\n    s.count += 1;\n}}\n\
             fn reader(s: &Shared) -> usize {{\n    s.count\n}}\n"
        );
        let v = hits(&src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].pass, "lockset");
        assert!(v[0].message.contains("count"), "{}", v[0].message);
        assert!(v[0].message.contains("Shared"), "{}", v[0].message);
    }

    #[test]
    fn consistently_guarded_field_is_clean() {
        let src = format!(
            "{SHARED}fn writer(s: &mut Shared) {{\n    let _g = s.guard.lock();\n    \
             s.count += 1;\n}}\n\
             fn reader(s: &Shared) -> usize {{\n    let _g = s.guard.lock();\n    s.count\n}}\n"
        );
        assert!(hits(&src).is_empty());
    }

    #[test]
    fn lock_inherited_from_caller_entry() {
        let src = format!(
            "{SHARED}fn outer(s: &Shared) {{\n    let _g = s.guard.lock();\n    inner(s);\n}}\n\
             fn inner(s: &Shared) {{\n    s.count += 1;\n}}\n\
             fn reader(s: &Shared) -> usize {{\n    let _g = s.guard.lock();\n    s.count\n}}\n"
        );
        assert!(hits(&src).is_empty());
    }

    #[test]
    fn unlocked_caller_breaks_the_inheritance() {
        let src = format!(
            "{SHARED}fn outer(s: &Shared) {{\n    let _g = s.guard.lock();\n    inner(s);\n}}\n\
             fn bare(s: &Shared) {{\n    inner(s);\n}}\n\
             fn inner(s: &Shared) {{\n    s.count += 1;\n}}\n\
             fn reader(s: &Shared) -> usize {{\n    let _g = s.guard.lock();\n    s.count\n}}\n"
        );
        let v = hits(&src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn single_function_access_is_quiet() {
        let src = format!("{SHARED}fn only(s: &mut Shared) {{\n    s.count += 1;\n}}\n");
        assert!(hits(&src).is_empty());
    }

    #[test]
    fn read_only_field_is_quiet() {
        let src = format!(
            "{SHARED}fn r1(s: &Shared) -> usize {{\n    s.count\n}}\n\
             fn r2(s: &Shared) -> usize {{\n    s.count\n}}\n"
        );
        assert!(hits(&src).is_empty());
    }

    #[test]
    fn atomic_fields_are_not_tracked() {
        let src = "//! m\nstruct Stats {\n    guard: Mutex<u32>,\n    hits: AtomicU64,\n}\n\
                   fn w(s: &Stats) {\n    s.hits.fetch_add(1, Ordering::Relaxed);\n}\n\
                   fn r(s: &Stats) -> u64 {\n    s.hits.load(Ordering::Relaxed)\n}\n";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn struct_without_sync_field_is_not_shared() {
        let src = "//! m\nstruct Plain {\n    count: usize,\n}\n\
                   fn w(s: &mut Plain) {\n    s.count += 1;\n}\n\
                   fn r(s: &Plain) -> usize {\n    s.count\n}\n";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn disjoint_marker_escapes_the_access() {
        let src = format!(
            "{SHARED}fn writer(s: &mut Shared) {{\n    \
             // audit: disjoint(count) — per-task rows, no overlap\n    s.count += 1;\n}}\n\
             fn reader(s: &Shared) -> usize {{\n    s.count\n}}\n"
        );
        assert!(hits(&src).is_empty());
    }

    #[test]
    fn method_call_is_not_a_field_access() {
        assert!(field_access("s.count()", "count").is_none());
        assert_eq!(field_access("s.count += 1;", "count"), Some(true));
        assert_eq!(field_access("let x = s.count;", "count"), Some(false));
        assert_eq!(field_access("take(&mut s.count)", "count"), Some(true));
        assert_eq!(field_access("if s.count == 3 {", "count"), Some(false));
        assert!(field_access("discount.apply()", "count").is_none());
    }

    #[test]
    fn struct_fields_lexical_extraction() {
        let f = SourceFile::new(
            "crates/x/src/a.rs",
            Some("x"),
            Role::Lib,
            "//! m\n#[derive(Debug)]\npub struct S {\n    pub guard: Mutex<u32>,\n    \
             pub(crate) pairs: Vec<(usize, usize)>,\n    last: Option<u64>,\n}\n\
             struct Unit;\nstruct Tup(u32);\n",
        );
        let t = &crate::parser::parse(&f.scan).types[0];
        let fields = struct_fields(&f, t);
        let names: Vec<&str> = fields.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["guard", "pairs", "last"], "{names:?}");
        assert!(is_sync_type(&fields[0].type_text));
        assert!(!is_sync_type(&fields[1].type_text));
    }
}
