//! The six audit passes. Each takes the analyzed workspace and returns
//! violations; the driver prints them as `file:line: pass: message`.
//!
//! | pass        | scope                               | escape hatch |
//! |-------------|-------------------------------------|--------------|
//! | `unsafe`    | every source file                   | none |
//! | `unwrap`    | library code outside `#[cfg(test)]` | `# Panics` docs or allow marker |
//! | `cast`      | kernel-crate library code           | allow marker |
//! | `proptest`  | top-level `pub fn`s of fcma-linalg  | allow marker |
//! | `moddoc`    | every `src/*.rs` file               | none |
//! | `tracename` | span!/event!/counter!/histogram! sites outside fcma-trace | allow marker |
//!
//! Allow markers are comments of the form
//! `// audit: allow(<pass>) — <reason>` on the offending line or the line
//! directly above; the reason is mandatory.

use crate::source::{Role, SourceFile};

/// Crates whose numeric code is held to the no-`as`-cast rule.
const KERNEL_CRATES: &[&str] = &["fcma-linalg", "fcma-core"];

/// The crate whose public kernels must be exercised by property tests.
const PROPTEST_CRATE: &str = "fcma-linalg";

/// The tracing substrate itself — exempt from the `tracename` pass (it
/// defines the probes; instrumentation lives in the other crates).
const TRACE_CRATE: &str = "fcma-trace";

/// Call-site prefixes whose first string literal is a trace name.
const TRACE_SITES: &[&str] =
    &["span!(", "event!(", "counter!(", "histogram!(", "record_span_since("];

/// One diagnostic. Lines are 1-based for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Pass name (`unsafe`, `unwrap`, `cast`, `proptest`, `moddoc`).
    pub pass: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.pass, self.message)
    }
}

/// Run every pass over the analyzed workspace. `taxonomy` is the span/
/// counter name contract parsed from DESIGN.md §Observability (`None`
/// skips the membership half of the `tracename` pass).
pub fn run_all(files: &[SourceFile], taxonomy: Option<&Taxonomy>) -> Vec<Violation> {
    let mut v = Vec::new();
    v.extend(check_unsafe(files));
    v.extend(check_unwrap(files));
    v.extend(check_casts(files));
    v.extend(check_proptest_coverage(files));
    v.extend(check_module_docs(files));
    v.extend(check_trace_names(files, taxonomy));
    v.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    v
}

/// Pass 1: no `unsafe` anywhere, no escape hatch.
///
/// The whole point of the Rust port is memory safety under heavy
/// threading; a single `unsafe` block reopens the class of bugs the
/// rewrite closed, so this pass has no allow marker.
pub fn check_unsafe(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        for &line in &f.unsafe_lines {
            out.push(Violation {
                file: f.rel_path.clone(),
                line: line + 1,
                pass: "unsafe",
                message: "`unsafe` is forbidden workspace-wide (no escape hatch)".to_owned(),
            });
        }
    }
    out
}

/// Pass 2: no `.unwrap()` / `.expect()` in library code.
///
/// Exempt: test/bench/bin/example targets, `#[cfg(test)]` items,
/// functions documented with a `# Panics` section, and explicitly
/// justified allow markers.
pub fn check_unwrap(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| f.role == Role::Lib) {
        for &(line, which) in &f.unwrap_lines {
            if f.in_test_span(line) || f.in_panics_fn(line) || f.allow_marker("unwrap", line) {
                continue;
            }
            out.push(Violation {
                file: f.rel_path.clone(),
                line: line + 1,
                pass: "unwrap",
                message: format!(
                    "`.{which}()` in library code: return a typed error, document \
                     `# Panics`, or add `// audit: allow(unwrap) — <reason>`"
                ),
            });
        }
    }
    out
}

/// Pass 3: no `as` numeric casts in kernel-crate library code.
///
/// `as` silently truncates and saturates; in the correlation kernels a
/// lossy index or value cast corrupts results instead of failing. Use
/// `From`/`TryFrom` (or the crate's cast helpers), or justify with
/// `// audit: allow(cast) — <reason>`.
pub fn check_casts(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| {
        f.role == Role::Lib && f.crate_name.as_deref().is_some_and(|c| KERNEL_CRATES.contains(&c))
    }) {
        for cast in &f.casts {
            if f.in_test_span(cast.line) || f.allow_marker("cast", cast.line) {
                continue;
            }
            out.push(Violation {
                file: f.rel_path.clone(),
                line: cast.line + 1,
                pass: "cast",
                message: format!(
                    "`as {}` in kernel crate: use From/TryFrom or add \
                     `// audit: allow(cast) — <reason>`",
                    cast.target
                ),
            });
        }
    }
    out
}

/// Pass 4: every top-level `pub fn` in the linalg crate is referenced
/// from at least one of its integration-test files (where the property
/// tests live), or carries an allow marker.
pub fn check_proptest_coverage(files: &[SourceFile]) -> Vec<Violation> {
    let test_code: Vec<&String> = files
        .iter()
        .filter(|f| f.crate_name.as_deref() == Some(PROPTEST_CRATE) && f.role == Role::Test)
        .flat_map(|f| f.scan.code_lines.iter())
        .collect();

    let mut out = Vec::new();
    for f in files
        .iter()
        .filter(|f| f.crate_name.as_deref() == Some(PROPTEST_CRATE) && f.role == Role::Lib)
    {
        for pf in &f.pub_fns {
            if f.allow_marker("proptest", pf.line) {
                continue;
            }
            let covered = test_code.iter().any(|line| contains_word(line, &pf.name));
            if !covered {
                out.push(Violation {
                    file: f.rel_path.clone(),
                    line: pf.line + 1,
                    pass: "proptest",
                    message: format!(
                        "pub fn `{}` is not exercised by any {PROPTEST_CRATE} \
                         integration test; add a property test or \
                         `// audit: allow(proptest) — <reason>`",
                        pf.name
                    ),
                });
            }
        }
    }
    out
}

/// Pass 5: every library/binary source file starts with `//!` docs.
pub fn check_module_docs(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| matches!(f.role, Role::Lib | Role::Bin)) {
        if !f.has_module_docs() {
            out.push(Violation {
                file: f.rel_path.clone(),
                line: 1,
                pass: "moddoc",
                message: "missing module-level `//!` documentation".to_owned(),
            });
        }
    }
    out
}

/// The documented span/counter taxonomy: every backticked `snake.dotted`
/// token under the DESIGN.md "Observability" heading.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    names: std::collections::BTreeSet<String>,
}

impl Taxonomy {
    /// Parse the taxonomy out of DESIGN.md: all backticked tokens of
    /// `snake.dotted` shape between a heading containing "Observability"
    /// and the next heading. Returns `None` if no such section (or no
    /// names) exists.
    pub fn from_design_md(text: &str) -> Option<Taxonomy> {
        let mut names = std::collections::BTreeSet::new();
        let mut in_section = false;
        for line in text.lines() {
            if line.starts_with('#') {
                if in_section {
                    break;
                }
                in_section = line.contains("Observability");
                continue;
            }
            if in_section {
                let mut parts = line.split('`');
                // Odd-indexed split segments are inside backticks.
                while let (Some(_), Some(tok)) = (parts.next(), parts.next()) {
                    if is_snake_dotted(tok) {
                        names.insert(tok.to_owned());
                    }
                }
            }
        }
        if names.is_empty() {
            None
        } else {
            Some(Taxonomy { names })
        }
    }

    /// Is `name` part of the documented contract?
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Number of documented names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the taxonomy is empty (never true for a parsed one).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Pass 6: every trace-probe name literal is well-formed and documented.
///
/// Span, event, counter, and histogram names are a stable contract —
/// dashboards, the `fcma report --check` invariants, and the CI trace
/// validation all parse them — so each call site's name must (a) be an
/// inline string literal, (b) match the `snake.dotted` shape, and (c)
/// with a taxonomy present, appear verbatim in DESIGN.md §Observability.
/// The fcma-trace crate itself (which defines the probes) and test code
/// are exempt.
pub fn check_trace_names(files: &[SourceFile], taxonomy: Option<&Taxonomy>) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| {
        matches!(f.role, Role::Lib | Role::Bin) && f.crate_name.as_deref() != Some(TRACE_CRATE)
    }) {
        for (lno, code) in f.scan.code_lines.iter().enumerate() {
            for pat in TRACE_SITES {
                for col in site_starts(code, pat) {
                    if f.in_test_span(lno) || f.allow_marker("tracename", lno) {
                        continue;
                    }
                    let site = &pat[..pat.len() - 1];
                    match extract_name(&f.scan.raw_lines, lno, col + pat.len()) {
                        None => out.push(Violation {
                            file: f.rel_path.clone(),
                            line: lno + 1,
                            pass: "tracename",
                            message: format!(
                                "`{site}` call: trace name must be an inline string literal"
                            ),
                        }),
                        Some((name_line, name)) => {
                            if !is_snake_dotted(&name) {
                                out.push(Violation {
                                    file: f.rel_path.clone(),
                                    line: name_line + 1,
                                    pass: "tracename",
                                    message: format!(
                                        "trace name `{name}` is not `snake.dotted` (two or \
                                         more dot-separated [a-z][a-z0-9_]* segments)"
                                    ),
                                });
                            } else if let Some(tax) = taxonomy {
                                if !tax.contains(&name) {
                                    out.push(Violation {
                                        file: f.rel_path.clone(),
                                        line: name_line + 1,
                                        pass: "tracename",
                                        message: format!(
                                            "trace name `{name}` is not documented in \
                                             DESIGN.md §Observability; add it to the taxonomy \
                                             or `// audit: allow(tracename) — <reason>`"
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// `snake.dotted`: two or more dot-separated segments, each
/// `[a-z][a-z0-9_]*`.
fn is_snake_dotted(name: &str) -> bool {
    let mut segments = 0usize;
    for seg in name.split('.') {
        let mut ch = seg.chars();
        if !matches!(ch.next(), Some(c) if c.is_ascii_lowercase()) {
            return false;
        }
        if !ch.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Char positions where `pat` occurs in `line` with a non-identifier
/// character (or line start) on its left.
fn site_starts(line: &str, pat: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let pat_chars: Vec<char> = pat.chars().collect();
    let mut out = Vec::new();
    if chars.len() < pat_chars.len() {
        return out;
    }
    for start in 0..=(chars.len() - pat_chars.len()) {
        if chars[start..start + pat_chars.len()] == pat_chars[..] {
            let left_ok = start == 0 || {
                let p = chars[start - 1];
                !(p.is_ascii_alphanumeric() || p == '_')
            };
            if left_ok {
                out.push(start);
            }
        }
    }
    out
}

/// First `"…"` literal at or after char `from` on line `lno`, searching
/// up to two continuation lines (rustfmt may wrap the name onto the line
/// after the macro's opening paren). Returns (0-based line, contents).
fn extract_name(raw_lines: &[String], lno: usize, from: usize) -> Option<(usize, String)> {
    for (idx, raw) in raw_lines.iter().enumerate().skip(lno).take(3) {
        let chars: Vec<char> = raw.chars().collect();
        let mut i = if idx == lno { from } else { 0 };
        while i < chars.len() && chars[i] != '"' {
            i += 1;
        }
        if i < chars.len() {
            let mut name = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                name.push(chars[i]);
                i += 1;
            }
            return Some((idx, name));
        }
    }
    None
}

/// Word-boundary containment: `name` in `line` not flanked by ident chars.
fn contains_word(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(p) = line[from..].find(name) {
        let start = from + p;
        let end = start + name.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn lib_file(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(&format!("crates/{crate_name}/src/a.rs"), Some(crate_name), Role::Lib, src)
    }

    fn test_file(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(
            &format!("crates/{crate_name}/tests/t.rs"),
            Some(crate_name),
            Role::Test,
            src,
        )
    }

    #[test]
    fn unsafe_fires_everywhere_no_escape() {
        let f = SourceFile::new(
            "crates/x/tests/t.rs",
            Some("x"),
            Role::Test,
            "//! t\n// audit: allow(unsafe) — nice try\nunsafe fn f() {}\n",
        );
        let v = check_unsafe(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn unsafe_quiet_on_clean_file() {
        let f = lib_file("x", "//! m\nfn f() { let safety = \"unsafe\"; }\n");
        assert!(check_unsafe(&[f]).is_empty());
    }

    #[test]
    fn unwrap_fires_in_lib_code() {
        let f = lib_file("x", "//! m\nfn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n");
        let v = check_unwrap(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert_eq!(v[0].pass, "unwrap");
    }

    #[test]
    fn unwrap_quiet_in_tests_bins_and_cfg_test() {
        let t = test_file("x", "//! t\nfn f(o: Option<u8>) { o.unwrap(); }\n");
        let b = SourceFile::new(
            "crates/x/src/main.rs",
            Some("x"),
            Role::Bin,
            "//! b\nfn main() { Some(1).unwrap(); }\n",
        );
        let l = lib_file(
            "x",
            "//! m\n#[cfg(test)]\nmod tests {\n    fn f(o: Option<u8>) { o.unwrap(); }\n}\n",
        );
        assert!(check_unwrap(&[t, b, l]).is_empty());
    }

    #[test]
    fn unwrap_escaped_by_panics_docs_and_marker() {
        let docs = lib_file(
            "x",
            "//! m\n/// # Panics\n/// If empty.\npub fn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n",
        );
        let marker = lib_file(
            "x",
            "//! m\nfn f(o: Option<u8>) -> u8 {\n    // audit: allow(unwrap) — invariant: set in new()\n    o.unwrap()\n}\n",
        );
        assert!(check_unwrap(&[docs, marker]).is_empty());
    }

    #[test]
    fn unwrap_marker_without_reason_still_fires() {
        let f = lib_file(
            "x",
            "//! m\nfn f(o: Option<u8>) -> u8 {\n    // audit: allow(unwrap)\n    o.unwrap()\n}\n",
        );
        assert_eq!(check_unwrap(&[f]).len(), 1);
    }

    #[test]
    fn cast_fires_only_in_kernel_crates() {
        let kernel = lib_file("fcma-linalg", "//! m\nfn f(n: usize) -> f32 {\n    n as f32\n}\n");
        let other = lib_file("fcma-io", "//! m\nfn f(n: usize) -> f32 {\n    n as f32\n}\n");
        let v = check_casts(&[kernel, other]);
        assert_eq!(v.len(), 1);
        assert!(v[0].file.contains("fcma-linalg"));
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn cast_escaped_by_marker_and_cfg_test() {
        let marked = lib_file(
            "fcma-core",
            "//! m\nfn f(n: usize) -> f32 {\n    // audit: allow(cast) — n < 2^24, exact in f32\n    n as f32\n}\n",
        );
        let tested = lib_file(
            "fcma-core",
            "//! m\n#[cfg(test)]\nmod tests {\n    fn f(n: usize) -> f32 { n as f32 }\n}\n",
        );
        assert!(check_casts(&[marked, tested]).is_empty());
    }

    #[test]
    fn proptest_pass_fires_on_unreferenced_pub_fn() {
        let l = lib_file("fcma-linalg", "//! m\npub fn lonely_kernel() {}\n");
        let t = test_file("fcma-linalg", "//! t\nfn probe() { other(); }\n");
        let v = check_proptest_coverage(&[l, t]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("lonely_kernel"));
    }

    #[test]
    fn proptest_pass_quiet_when_referenced_or_marked() {
        let l = lib_file(
            "fcma-linalg",
            "//! m\npub fn covered_kernel() {}\n// audit: allow(proptest) — trivial accessor\npub fn marked_kernel() {}\n",
        );
        let t = test_file("fcma-linalg", "//! t\nfn probe() { covered_kernel(); }\n");
        assert!(check_proptest_coverage(&[l, t]).is_empty());
    }

    #[test]
    fn proptest_reference_needs_word_boundary() {
        let l = lib_file("fcma-linalg", "//! m\npub fn dot() {}\n");
        let t = test_file("fcma-linalg", "//! t\nfn probe() { syrk_dotty(); }\n");
        assert_eq!(check_proptest_coverage(&[l, t]).len(), 1);
    }

    #[test]
    fn moddoc_fires_on_missing_banner() {
        let f = lib_file("x", "fn f() {}\n");
        let v = check_module_docs(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].pass, "moddoc");
    }

    #[test]
    fn moddoc_quiet_with_banner_and_skips_tests() {
        let l = lib_file("x", "//! Documented.\nfn f() {}\n");
        let t = test_file("x", "fn f() {}\n");
        assert!(check_module_docs(&[l, t]).is_empty());
    }

    #[test]
    fn run_all_sorts_and_aggregates() {
        let f = lib_file("fcma-linalg", "fn f(o: Option<u8>) {\n    o.unwrap();\n}\n");
        let v = run_all(&[f], None);
        let passes: Vec<&str> = v.iter().map(|x| x.pass).collect();
        assert!(passes.contains(&"unwrap"));
        assert!(passes.contains(&"moddoc"));
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
        assert_eq!(v, sorted);
    }

    const DESIGN_FIXTURE: &str = "# Doc\n\n## 10. Other\n`not.this`\n\n\
        ## 11. Observability\nSpans: `stage1.corr`, `cluster.run`.\n\
        Counters: `svm.smo.solves`.\n\n## 12. After\n`not.that`\n";

    #[test]
    fn taxonomy_parses_only_the_observability_section() {
        let t = Taxonomy::from_design_md(DESIGN_FIXTURE).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.contains("stage1.corr"));
        assert!(t.contains("cluster.run"));
        assert!(t.contains("svm.smo.solves"));
        assert!(!t.contains("not.this"));
        assert!(!t.contains("not.that"));
        assert!(Taxonomy::from_design_md("# Doc\nno section\n").is_none());
    }

    #[test]
    fn tracename_accepts_documented_names_and_flags_undocumented() {
        let t = Taxonomy::from_design_md(DESIGN_FIXTURE).unwrap();
        let ok = lib_file(
            "fcma-core",
            "//! m\nfn f() {\n    let _s = span!(\"stage1.corr\", v = 1);\n}\n",
        );
        assert!(check_trace_names(&[ok], Some(&t)).is_empty());
        let bad =
            lib_file("fcma-core", "//! m\nfn f() {\n    counter!(\"stage9.rogue\", 1_u64);\n}\n");
        let v = check_trace_names(&[bad], Some(&t));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("stage9.rogue"), "{}", v[0].message);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn tracename_enforces_snake_dotted_shape() {
        assert!(is_snake_dotted("cluster.tasks.total"));
        assert!(is_snake_dotted("a.b_2"));
        assert!(!is_snake_dotted("single"));
        assert!(!is_snake_dotted("Bad.Case"));
        assert!(!is_snake_dotted("has.empty."));
        assert!(!is_snake_dotted("1.leading_digit"));
        assert!(!is_snake_dotted("spa ced.name"));
        // Shape is checked even without a taxonomy.
        let f = lib_file("fcma-core", "//! m\nfn f() {\n    event!(\"NotSnake\");\n}\n");
        assert_eq!(check_trace_names(&[f], None).len(), 1);
    }

    #[test]
    fn tracename_finds_wrapped_multiline_names() {
        let f = lib_file(
            "fcma-cluster",
            "//! m\nfn f() {\n    let _s = span!(\n        \"cluster.run\",\n        w = 1\n    );\n}\n",
        );
        let t = Taxonomy::from_design_md(DESIGN_FIXTURE).unwrap();
        assert!(check_trace_names(&[f], Some(&t)).is_empty());
        let miss = lib_file(
            "fcma-cluster",
            "//! m\nfn f() {\n    let _s = span!(\n        \"cluster.rogue\",\n    );\n}\n",
        );
        let v = check_trace_names(&[miss], Some(&t));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4, "violation anchors to the literal's line");
    }

    #[test]
    fn tracename_skips_tests_trace_crate_and_markers() {
        let t = Taxonomy::from_design_md(DESIGN_FIXTURE).unwrap();
        let in_tests = lib_file(
            "fcma-core",
            "//! m\n#[cfg(test)]\nmod tests {\n    fn f() { event!(\"rogue.name\"); }\n}\n",
        );
        let trace_crate =
            lib_file("fcma-trace", "//! m\nfn f() {\n    span!(\"internal.probe\");\n}\n");
        let marked = lib_file(
            "fcma-core",
            "//! m\nfn f() {\n    // audit: allow(tracename) — experimental probe\n    event!(\"rogue.name\");\n}\n",
        );
        assert!(check_trace_names(&[in_tests, trace_crate, marked], Some(&t)).is_empty());
    }

    #[test]
    fn tracename_requires_inline_literal() {
        let f = lib_file("fcma-core", "//! m\nfn f(n: u64) {\n    counter!(NAME, n);\n}\n");
        let v = check_trace_names(&[f], None);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("inline string literal"));
    }
}
