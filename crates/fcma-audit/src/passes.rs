//! The five audit passes. Each takes the analyzed workspace and returns
//! violations; the driver prints them as `file:line: pass: message`.
//!
//! | pass       | scope                               | escape hatch |
//! |------------|-------------------------------------|--------------|
//! | `unsafe`   | every source file                   | none |
//! | `unwrap`   | library code outside `#[cfg(test)]` | `# Panics` docs or allow marker |
//! | `cast`     | kernel-crate library code           | allow marker |
//! | `proptest` | top-level `pub fn`s of fcma-linalg  | allow marker |
//! | `moddoc`   | every `src/*.rs` file               | none |
//!
//! Allow markers are comments of the form
//! `// audit: allow(<pass>) — <reason>` on the offending line or the line
//! directly above; the reason is mandatory.

use crate::source::{Role, SourceFile};

/// Crates whose numeric code is held to the no-`as`-cast rule.
const KERNEL_CRATES: &[&str] = &["fcma-linalg", "fcma-core"];

/// The crate whose public kernels must be exercised by property tests.
const PROPTEST_CRATE: &str = "fcma-linalg";

/// One diagnostic. Lines are 1-based for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Pass name (`unsafe`, `unwrap`, `cast`, `proptest`, `moddoc`).
    pub pass: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.pass, self.message)
    }
}

/// Run every pass over the analyzed workspace.
pub fn run_all(files: &[SourceFile]) -> Vec<Violation> {
    let mut v = Vec::new();
    v.extend(check_unsafe(files));
    v.extend(check_unwrap(files));
    v.extend(check_casts(files));
    v.extend(check_proptest_coverage(files));
    v.extend(check_module_docs(files));
    v.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    v
}

/// Pass 1: no `unsafe` anywhere, no escape hatch.
///
/// The whole point of the Rust port is memory safety under heavy
/// threading; a single `unsafe` block reopens the class of bugs the
/// rewrite closed, so this pass has no allow marker.
pub fn check_unsafe(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        for &line in &f.unsafe_lines {
            out.push(Violation {
                file: f.rel_path.clone(),
                line: line + 1,
                pass: "unsafe",
                message: "`unsafe` is forbidden workspace-wide (no escape hatch)".to_owned(),
            });
        }
    }
    out
}

/// Pass 2: no `.unwrap()` / `.expect()` in library code.
///
/// Exempt: test/bench/bin/example targets, `#[cfg(test)]` items,
/// functions documented with a `# Panics` section, and explicitly
/// justified allow markers.
pub fn check_unwrap(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| f.role == Role::Lib) {
        for &(line, which) in &f.unwrap_lines {
            if f.in_test_span(line) || f.in_panics_fn(line) || f.allow_marker("unwrap", line) {
                continue;
            }
            out.push(Violation {
                file: f.rel_path.clone(),
                line: line + 1,
                pass: "unwrap",
                message: format!(
                    "`.{which}()` in library code: return a typed error, document \
                     `# Panics`, or add `// audit: allow(unwrap) — <reason>`"
                ),
            });
        }
    }
    out
}

/// Pass 3: no `as` numeric casts in kernel-crate library code.
///
/// `as` silently truncates and saturates; in the correlation kernels a
/// lossy index or value cast corrupts results instead of failing. Use
/// `From`/`TryFrom` (or the crate's cast helpers), or justify with
/// `// audit: allow(cast) — <reason>`.
pub fn check_casts(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| {
        f.role == Role::Lib && f.crate_name.as_deref().is_some_and(|c| KERNEL_CRATES.contains(&c))
    }) {
        for cast in &f.casts {
            if f.in_test_span(cast.line) || f.allow_marker("cast", cast.line) {
                continue;
            }
            out.push(Violation {
                file: f.rel_path.clone(),
                line: cast.line + 1,
                pass: "cast",
                message: format!(
                    "`as {}` in kernel crate: use From/TryFrom or add \
                     `// audit: allow(cast) — <reason>`",
                    cast.target
                ),
            });
        }
    }
    out
}

/// Pass 4: every top-level `pub fn` in the linalg crate is referenced
/// from at least one of its integration-test files (where the property
/// tests live), or carries an allow marker.
pub fn check_proptest_coverage(files: &[SourceFile]) -> Vec<Violation> {
    let test_code: Vec<&String> = files
        .iter()
        .filter(|f| f.crate_name.as_deref() == Some(PROPTEST_CRATE) && f.role == Role::Test)
        .flat_map(|f| f.scan.code_lines.iter())
        .collect();

    let mut out = Vec::new();
    for f in files
        .iter()
        .filter(|f| f.crate_name.as_deref() == Some(PROPTEST_CRATE) && f.role == Role::Lib)
    {
        for pf in &f.pub_fns {
            if f.allow_marker("proptest", pf.line) {
                continue;
            }
            let covered = test_code.iter().any(|line| contains_word(line, &pf.name));
            if !covered {
                out.push(Violation {
                    file: f.rel_path.clone(),
                    line: pf.line + 1,
                    pass: "proptest",
                    message: format!(
                        "pub fn `{}` is not exercised by any {PROPTEST_CRATE} \
                         integration test; add a property test or \
                         `// audit: allow(proptest) — <reason>`",
                        pf.name
                    ),
                });
            }
        }
    }
    out
}

/// Pass 5: every library/binary source file starts with `//!` docs.
pub fn check_module_docs(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| matches!(f.role, Role::Lib | Role::Bin)) {
        if !f.has_module_docs() {
            out.push(Violation {
                file: f.rel_path.clone(),
                line: 1,
                pass: "moddoc",
                message: "missing module-level `//!` documentation".to_owned(),
            });
        }
    }
    out
}

/// Word-boundary containment: `name` in `line` not flanked by ident chars.
fn contains_word(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(p) = line[from..].find(name) {
        let start = from + p;
        let end = start + name.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn lib_file(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(&format!("crates/{crate_name}/src/a.rs"), Some(crate_name), Role::Lib, src)
    }

    fn test_file(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(
            &format!("crates/{crate_name}/tests/t.rs"),
            Some(crate_name),
            Role::Test,
            src,
        )
    }

    #[test]
    fn unsafe_fires_everywhere_no_escape() {
        let f = SourceFile::new(
            "crates/x/tests/t.rs",
            Some("x"),
            Role::Test,
            "//! t\n// audit: allow(unsafe) — nice try\nunsafe fn f() {}\n",
        );
        let v = check_unsafe(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn unsafe_quiet_on_clean_file() {
        let f = lib_file("x", "//! m\nfn f() { let safety = \"unsafe\"; }\n");
        assert!(check_unsafe(&[f]).is_empty());
    }

    #[test]
    fn unwrap_fires_in_lib_code() {
        let f = lib_file("x", "//! m\nfn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n");
        let v = check_unwrap(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert_eq!(v[0].pass, "unwrap");
    }

    #[test]
    fn unwrap_quiet_in_tests_bins_and_cfg_test() {
        let t = test_file("x", "//! t\nfn f(o: Option<u8>) { o.unwrap(); }\n");
        let b = SourceFile::new(
            "crates/x/src/main.rs",
            Some("x"),
            Role::Bin,
            "//! b\nfn main() { Some(1).unwrap(); }\n",
        );
        let l = lib_file(
            "x",
            "//! m\n#[cfg(test)]\nmod tests {\n    fn f(o: Option<u8>) { o.unwrap(); }\n}\n",
        );
        assert!(check_unwrap(&[t, b, l]).is_empty());
    }

    #[test]
    fn unwrap_escaped_by_panics_docs_and_marker() {
        let docs = lib_file(
            "x",
            "//! m\n/// # Panics\n/// If empty.\npub fn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n",
        );
        let marker = lib_file(
            "x",
            "//! m\nfn f(o: Option<u8>) -> u8 {\n    // audit: allow(unwrap) — invariant: set in new()\n    o.unwrap()\n}\n",
        );
        assert!(check_unwrap(&[docs, marker]).is_empty());
    }

    #[test]
    fn unwrap_marker_without_reason_still_fires() {
        let f = lib_file(
            "x",
            "//! m\nfn f(o: Option<u8>) -> u8 {\n    // audit: allow(unwrap)\n    o.unwrap()\n}\n",
        );
        assert_eq!(check_unwrap(&[f]).len(), 1);
    }

    #[test]
    fn cast_fires_only_in_kernel_crates() {
        let kernel = lib_file("fcma-linalg", "//! m\nfn f(n: usize) -> f32 {\n    n as f32\n}\n");
        let other = lib_file("fcma-io", "//! m\nfn f(n: usize) -> f32 {\n    n as f32\n}\n");
        let v = check_casts(&[kernel, other]);
        assert_eq!(v.len(), 1);
        assert!(v[0].file.contains("fcma-linalg"));
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn cast_escaped_by_marker_and_cfg_test() {
        let marked = lib_file(
            "fcma-core",
            "//! m\nfn f(n: usize) -> f32 {\n    // audit: allow(cast) — n < 2^24, exact in f32\n    n as f32\n}\n",
        );
        let tested = lib_file(
            "fcma-core",
            "//! m\n#[cfg(test)]\nmod tests {\n    fn f(n: usize) -> f32 { n as f32 }\n}\n",
        );
        assert!(check_casts(&[marked, tested]).is_empty());
    }

    #[test]
    fn proptest_pass_fires_on_unreferenced_pub_fn() {
        let l = lib_file("fcma-linalg", "//! m\npub fn lonely_kernel() {}\n");
        let t = test_file("fcma-linalg", "//! t\nfn probe() { other(); }\n");
        let v = check_proptest_coverage(&[l, t]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("lonely_kernel"));
    }

    #[test]
    fn proptest_pass_quiet_when_referenced_or_marked() {
        let l = lib_file(
            "fcma-linalg",
            "//! m\npub fn covered_kernel() {}\n// audit: allow(proptest) — trivial accessor\npub fn marked_kernel() {}\n",
        );
        let t = test_file("fcma-linalg", "//! t\nfn probe() { covered_kernel(); }\n");
        assert!(check_proptest_coverage(&[l, t]).is_empty());
    }

    #[test]
    fn proptest_reference_needs_word_boundary() {
        let l = lib_file("fcma-linalg", "//! m\npub fn dot() {}\n");
        let t = test_file("fcma-linalg", "//! t\nfn probe() { syrk_dotty(); }\n");
        assert_eq!(check_proptest_coverage(&[l, t]).len(), 1);
    }

    #[test]
    fn moddoc_fires_on_missing_banner() {
        let f = lib_file("x", "fn f() {}\n");
        let v = check_module_docs(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].pass, "moddoc");
    }

    #[test]
    fn moddoc_quiet_with_banner_and_skips_tests() {
        let l = lib_file("x", "//! Documented.\nfn f() {}\n");
        let t = test_file("x", "fn f() {}\n");
        assert!(check_module_docs(&[l, t]).is_empty());
    }

    #[test]
    fn run_all_sorts_and_aggregates() {
        let f = lib_file("fcma-linalg", "fn f(o: Option<u8>) {\n    o.unwrap();\n}\n");
        let v = run_all(&[f]);
        let passes: Vec<&str> = v.iter().map(|x| x.pass).collect();
        assert!(passes.contains(&"unwrap"));
        assert!(passes.contains(&"moddoc"));
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
        assert_eq!(v, sorted);
    }
}
